//! Property-based tests of the buddy allocator: the invariants every
//! physical-memory allocator must uphold under arbitrary alloc/free
//! interleavings.

use memento_kernel::buddy::{BuddyAllocator, FrameUse};
use memento_simcore::physmem::Frame;
use proptest::prelude::*;
use std::collections::HashSet;

/// An abstract operation on the allocator.
#[derive(Clone, Debug)]
enum Op {
    Alloc(u8),
    /// Free the n-th oldest live block (modulo live count).
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No frame is ever handed out twice while live, every handed-out
    /// block stays within the managed range, and freeing everything
    /// restores full capacity.
    #[test]
    fn buddy_never_double_allocates(ops in ops()) {
        let start = 7u64;
        let frames = 512u64;
        let mut buddy = BuddyAllocator::new(
            Frame::from_number(start),
            Frame::from_number(start + frames),
        );
        let capacity = buddy.free_frames();
        let mut live: Vec<(Frame, u8)> = Vec::new();
        let mut owned: HashSet<u64> = HashSet::new();

        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Ok(f) = buddy.alloc_order(order, FrameUse::UserHeap) {
                        let pages = 1u64 << order;
                        prop_assert!(f.number() >= start);
                        prop_assert!(f.number() + pages <= start + frames);
                        for p in f.number()..f.number() + pages {
                            prop_assert!(
                                owned.insert(p),
                                "frame {p} handed out twice"
                            );
                        }
                        live.push((f, order));
                    }
                }
                Op::Free(idx) => {
                    if !live.is_empty() {
                        let (f, order) = live.remove(idx % live.len());
                        for p in f.number()..f.number() + (1u64 << order) {
                            owned.remove(&p);
                        }
                        buddy.free_order(f, order, FrameUse::UserHeap);
                    }
                }
            }
            prop_assert_eq!(
                buddy.free_frames() + owned.len() as u64,
                capacity,
                "conservation of frames"
            );
        }

        // Drain everything: capacity must be fully restored and a maximal
        // block must coalesce back.
        for (f, order) in live {
            buddy.free_order(f, order, FrameUse::UserHeap);
        }
        prop_assert_eq!(buddy.free_frames(), capacity);
    }

    /// Aggregate statistics are monotone and current never exceeds peak.
    #[test]
    fn buddy_stats_invariants(orders in proptest::collection::vec(0u8..3, 1..50)) {
        let mut buddy = BuddyAllocator::new(
            Frame::from_number(0),
            Frame::from_number(1024),
        );
        let mut live = Vec::new();
        let mut last_aggregate = 0;
        for (i, order) in orders.iter().enumerate() {
            if let Ok(f) = buddy.alloc_order(*order, FrameUse::PageTable) {
                live.push((f, *order));
            }
            if i % 3 == 2 {
                if let Some((f, o)) = live.pop() {
                    buddy.free_order(f, o, FrameUse::PageTable);
                }
            }
            let st = buddy.stats().get(FrameUse::PageTable);
            prop_assert!(st.aggregate >= last_aggregate, "aggregate monotone");
            prop_assert!(st.current <= st.peak, "current bounded by peak");
            prop_assert!(st.peak <= st.aggregate, "peak bounded by aggregate");
            last_aggregate = st.aggregate;
        }
    }
}
