//! The kernel proper: processes, syscalls, the page-fault handler.
//!
//! Timing contract: every operation returns the [`Cycles`] it spent; callers
//! charge them to [`CycleBucket::KernelMm`] (or `Setup` for platform
//! bring-up). Page-table writes and kernel-metadata touches issue real cache
//! accesses, so kernel work also produces memory traffic that Memento's
//! hardware page allocator later removes.

use crate::buddy::{BuddyAllocator, FrameStats, FrameUse, OutOfFrames};
use crate::costs::KernelCosts;
use crate::vma::{AddressSpace, VmaError};
use memento_cache::{AccessKind, MemSystem};
use memento_obs::Log2Hist;
use memento_simcore::addr::{PhysAddr, VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE};
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_vm::pagetable::PtePerms;
use memento_vm::tlb::Tlb;
use std::fmt;

/// A process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A simulated process.
#[derive(Debug)]
pub struct Process {
    /// Its identifier.
    pub pid: ProcessId,
    /// Its address space (VMAs + regular page table).
    pub addr_space: AddressSpace,
}

/// `mmap` flags relevant to the model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmapFlags {
    /// `MAP_POPULATE`: eagerly back every page (§6.6 sensitivity study).
    pub populate: bool,
}

/// Kernel activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// mmap syscalls served.
    pub mmaps: u64,
    /// munmap syscalls served.
    pub munmaps: u64,
    /// Page faults handled.
    pub page_faults: u64,
    /// Pages eagerly populated by `MAP_POPULATE`.
    pub populated_pages: u64,
    /// `madvise(MADV_FREE)` syscalls served.
    pub madvises: u64,
    /// Lazily-freed pages the host's background reclaim actually took.
    pub lazy_reclaimed_pages: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Frames handed to the Memento hardware page pool.
    pub pool_frames_granted: u64,
    /// Frames the Memento pool handed back (overflow return / detach).
    pub pool_frames_returned: u64,
}

impl KernelStats {
    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: KernelStats) -> KernelStats {
        KernelStats {
            mmaps: self.mmaps - earlier.mmaps,
            munmaps: self.munmaps - earlier.munmaps,
            page_faults: self.page_faults - earlier.page_faults,
            populated_pages: self.populated_pages - earlier.populated_pages,
            madvises: self.madvises - earlier.madvises,
            lazy_reclaimed_pages: self.lazy_reclaimed_pages - earlier.lazy_reclaimed_pages,
            context_switches: self.context_switches - earlier.context_switches,
            pool_frames_granted: self.pool_frames_granted - earlier.pool_frames_granted,
            pool_frames_returned: self.pool_frames_returned - earlier.pool_frames_returned,
        }
    }
}

/// Errors surfaced to the simulated application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// Access to an unmapped address with no covering VMA.
    Segfault(VirtAddr),
    /// Physical memory exhausted.
    OutOfMemory,
    /// Bad munmap range.
    BadMunmap,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Segfault(va) => write!(f, "segmentation fault at {va}"),
            KernelError::OutOfMemory => f.write_str("out of physical memory"),
            KernelError::BadMunmap => f.write_str("munmap range does not match a mapping"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<OutOfFrames> for KernelError {
    fn from(_: OutOfFrames) -> Self {
        KernelError::OutOfMemory
    }
}

impl From<VmaError> for KernelError {
    fn from(_: VmaError) -> Self {
        KernelError::BadMunmap
    }
}

/// Outcome of an `mmap` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmapOutcome {
    /// Start of the new mapping.
    pub addr: VirtAddr,
    /// Cycles spent in the kernel.
    pub cycles: Cycles,
}

/// Outcome of a `munmap` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MunmapOutcome {
    /// Cycles spent in the kernel.
    pub cycles: Cycles,
    /// Pages that had physical backing and were released.
    pub released_pages: u64,
}

/// Outcome of a `madvise(MADV_FREE)` call (with background reclaim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MadviseOutcome {
    /// Cycles spent in the kernel.
    pub cycles: Cycles,
    /// Resident pages marked lazily freeable.
    pub marked_pages: u64,
    /// Marked pages the host's reclaim actually took (these demand-fault
    /// on the next touch).
    pub reclaimed_pages: u64,
}

/// Outcome of a handled page fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The freshly mapped frame.
    pub frame: Frame,
    /// Cycles spent in the handler (including buddy and PTE work).
    pub cycles: Cycles,
}

/// The kernel model.
pub struct Kernel {
    /// The physical page allocator.
    pub buddy: BuddyAllocator,
    costs: KernelCosts,
    stats: KernelStats,
    next_pid: u32,
    kmeta_base: PhysAddr,
    kmeta_lines: u64,
    kmeta_cursor: u64,
    /// VMA-metadata slab accounting: one KernelMeta frame per
    /// `VMAS_PER_SLAB` mappings (vm_area_structs, rmap, accounting).
    vma_slab_objects: u64,
    /// Frames the Memento pool returned and the kernel may re-grant
    /// without counting them as fresh aggregate demand (warm reuse).
    pool_return_credit: u64,
    fault_lat: Log2Hist,
}

impl Kernel {
    /// Number of boot frames reserved for kernel metadata scratch.
    const KMETA_FRAMES: u64 = 32;

    /// Boots a kernel over the remaining physical memory of `mem` (above
    /// the boot watermark) with the given cost model.
    ///
    /// # Panics
    ///
    /// Panics if `mem` is too small to hold kernel metadata plus a managed
    /// frame range.
    pub fn boot(mem: &mut PhysMem, costs: KernelCosts) -> Self {
        let kmeta = mem
            .alloc_frames(Self::KMETA_FRAMES)
            .expect("boot memory for kernel metadata");
        let start = Frame::from_number(mem.boot_watermark());
        let end = Frame::from_number(mem.total_frames());
        Kernel {
            buddy: BuddyAllocator::new(start, end),
            costs,
            stats: KernelStats::default(),
            next_pid: 1,
            kmeta_base: kmeta.base_addr(),
            kmeta_lines: Self::KMETA_FRAMES * (PAGE_SIZE / CACHE_LINE_SIZE) as u64,
            kmeta_cursor: 0,
            vma_slab_objects: 0,
            pool_return_credit: 0,
            fault_lat: Log2Hist::default(),
        }
    }

    /// Distribution of page-fault handler latencies (cycles per fault).
    pub fn fault_latency(&self) -> &Log2Hist {
        &self.fault_lat
    }

    /// vm_area_structs (and companion rmap/accounting objects) per slab
    /// page of kernel metadata.
    const VMAS_PER_SLAB: u64 = 8;

    /// The cost model in force.
    pub fn costs(&self) -> &KernelCosts {
        &self.costs
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Frame accounting (drives Fig. 11).
    pub fn frame_stats(&self) -> &FrameStats {
        self.buddy.stats()
    }

    /// Restarts the resident-peak window at the current level (see
    /// [`FrameStats::window_peak`]).
    pub fn reset_frame_window(&mut self) {
        self.buddy.stats_mut().reset_window_peak();
    }

    /// Creates a process with an empty address space; the page-table root
    /// comes from the buddy allocator (boot memory is already owned by it).
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted.
    pub fn create_process(&mut self, mem: &mut PhysMem) -> Process {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        let root = self
            .buddy
            .alloc(FrameUse::PageTable)
            .expect("frame for page-table root");
        mem.zero_frame(root);
        Process {
            pid,
            addr_space: AddressSpace::with_page_table(memento_vm::pagetable::PageTable::with_root(
                root,
            )),
        }
    }

    /// Touches `n` kernel-metadata cache lines (task structs, VMA slabs,
    /// accounting), modeling the kernel's data working set.
    fn touch_kmeta(&mut self, mem_sys: &mut MemSystem, core: usize, n: u64) -> Cycles {
        let mut cycles = Cycles::ZERO;
        for _ in 0..n {
            let line = self.kmeta_cursor % self.kmeta_lines;
            self.kmeta_cursor += 1;
            let addr = self.kmeta_base.add(line * CACHE_LINE_SIZE as u64);
            cycles += mem_sys.access(core, AccessKind::Write, addr).cycles;
        }
        cycles
    }

    fn map_page(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        core: usize,
        proc: &mut Process,
        va: VirtAddr,
        frame: Frame,
    ) -> Result<Cycles, KernelError> {
        let before_tables = proc.addr_space.page_table.table_pages();
        let buddy = &mut self.buddy;
        proc.addr_space
            .page_table
            .map(mem, va, frame, PtePerms::rw(), &mut |_m| {
                buddy.alloc(FrameUse::PageTable).ok()
            })
            .map_err(|_| KernelError::OutOfMemory)?;
        let created = proc.addr_space.page_table.table_pages() - before_tables;
        // Charge one PTE write per created table entry plus the leaf write.
        let mut cycles = Cycles::new(created * self.costs.buddy_alloc);
        for level in (0..=created.min(3) as u8).rev() {
            if let Some(entry) = proc.addr_space.page_table.entry_addr(mem, va, level) {
                cycles += mem_sys.access(core, AccessKind::Write, entry).cycles;
            }
        }
        Ok(cycles)
    }

    /// Serves `mmap(len, flags)`: reserves a VA range lazily; with
    /// `MAP_POPULATE` also backs every page immediately.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfMemory`] when populate cannot back the range.
    #[allow(clippy::too_many_arguments)]
    pub fn mmap(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        tlb: &mut Tlb,
        core: usize,
        proc: &mut Process,
        len: u64,
        flags: MmapFlags,
    ) -> Result<MmapOutcome, KernelError> {
        self.stats.mmaps += 1;
        // Every mapping consumes slab-allocated kernel metadata; a fresh
        // slab page is taken from the buddy when the previous one fills.
        // This is the "kernel metadata needed to manage memory regions"
        // that dominates the paper's Fig. 11 kernel bars.
        if self.vma_slab_objects.is_multiple_of(Self::VMAS_PER_SLAB) {
            let _ = self.buddy.alloc(FrameUse::KernelMeta);
        }
        self.vma_slab_objects += 1;
        let mut cycles = Cycles::new(self.costs.syscall_overhead + self.costs.mmap_work);
        cycles += self.touch_kmeta(mem_sys, core, 6);
        let vma = proc.addr_space.reserve(len, flags.populate);
        if flags.populate {
            let mut va = vma.start;
            while va < vma.end {
                let frame = self.buddy.alloc(FrameUse::UserHeap)?;
                cycles += Cycles::new(self.costs.buddy_alloc + self.costs.populate_per_page);
                cycles += self.map_page(mem, mem_sys, core, proc, va, frame)?;
                tlb.insert(va, frame);
                self.stats.populated_pages += 1;
                va = va.add(PAGE_SIZE as u64);
            }
        }
        Ok(MmapOutcome {
            addr: vma.start,
            cycles,
        })
    }

    /// Serves `munmap(addr, len)`: removes the VMA, clears PTEs, returns
    /// frames and empty table pages to the buddy allocator, and shoots the
    /// pages out of the TLB.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadMunmap`] if the range is not an exact prior mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn munmap(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        tlb: &mut Tlb,
        core: usize,
        proc: &mut Process,
        addr: VirtAddr,
        len: u64,
    ) -> Result<MunmapOutcome, KernelError> {
        self.stats.munmaps += 1;
        // Linux semantics: the range may be a whole mapping, a prefix or
        // suffix (the VMA shrinks), or an interior window (the VMA splits).
        let vma = proc.addr_space.remove_range(addr, len)?;
        let mut cycles = Cycles::new(self.costs.syscall_overhead + self.costs.munmap_work);
        cycles += self.touch_kmeta(mem_sys, core, 6);
        let mut released = 0;
        let mut va = vma.start;
        while va < vma.end {
            if let Some(t) = proc.addr_space.page_table.translate(mem, va) {
                cycles += Cycles::new(self.costs.munmap_per_page + self.costs.buddy_free);
                cycles += mem_sys.access(core, AccessKind::Write, t.pte_addr).cycles;
                let res = proc.addr_space.page_table.unmap(mem, va);
                if let Some(frame) = res.leaf_frame {
                    mem.release_frame(frame);
                    self.buddy.free(frame, FrameUse::UserHeap);
                    released += 1;
                }
                for table in res.freed_tables {
                    self.buddy.free(table, FrameUse::PageTable);
                    cycles += Cycles::new(self.costs.buddy_free);
                }
                tlb.shootdown(va);
            }
            va = va.add(PAGE_SIZE as u64);
        }
        Ok(MunmapOutcome {
            cycles,
            released_pages: released,
        })
    }

    /// Fraction of lazily-freed pages the packed host's reclaim takes
    /// between invocations: one page in this many. Serverless hosts run
    /// memory-oversubscribed (the paper's premise), so a warm container's
    /// `MADV_FREE` donations are partially harvested before the next
    /// request arrives.
    pub const LAZY_RECLAIM_STRIDE: u64 = 2;

    /// Serves `madvise(addr, len, MADV_FREE)` plus the host's background
    /// reclaim. Every resident page in the range is marked lazily freeable
    /// (the cheap path: on the next write the mark clears and the frame is
    /// reused for free); memory pressure on a packed serverless host then
    /// immediately reclaims one in `reclaim_stride` of the marked pages —
    /// those lose their frame and demand-fault on the next touch. The VMA
    /// itself stays mapped throughout. `reclaim_stride == 0` marks without
    /// reclaiming.
    #[allow(clippy::too_many_arguments)]
    pub fn madvise_free(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        tlb: &mut Tlb,
        core: usize,
        proc: &mut Process,
        addr: VirtAddr,
        len: u64,
        reclaim_stride: u64,
    ) -> MadviseOutcome {
        self.stats.madvises += 1;
        let mut cycles = Cycles::new(self.costs.syscall_overhead + self.costs.madvise_work);
        cycles += self.touch_kmeta(mem_sys, core, 2);
        let mut marked = 0u64;
        let mut reclaimed = 0u64;
        let mut va = addr.page_base();
        let end = addr.add(len);
        while va < end {
            if let Some(t) = proc.addr_space.page_table.translate(mem, va) {
                cycles += Cycles::new(self.costs.madvise_per_page);
                marked += 1;
                if reclaim_stride > 0 && marked.is_multiple_of(reclaim_stride) {
                    cycles += Cycles::new(self.costs.munmap_per_page + self.costs.buddy_free);
                    cycles += mem_sys.access(core, AccessKind::Write, t.pte_addr).cycles;
                    let res = proc.addr_space.page_table.unmap(mem, va);
                    if let Some(frame) = res.leaf_frame {
                        mem.release_frame(frame);
                        self.buddy.free(frame, FrameUse::UserHeap);
                        reclaimed += 1;
                    }
                    for table in res.freed_tables {
                        self.buddy.free(table, FrameUse::PageTable);
                        cycles += Cycles::new(self.costs.buddy_free);
                    }
                    tlb.shootdown(va);
                }
            }
            va = va.add(PAGE_SIZE as u64);
        }
        self.stats.lazy_reclaimed_pages += reclaimed;
        MadviseOutcome {
            cycles,
            marked_pages: marked,
            reclaimed_pages: reclaimed,
        }
    }

    /// Handles a page fault at `va`: looks up the covering VMA, allocates a
    /// frame, installs the PTE, and fills the TLB.
    ///
    /// # Errors
    ///
    /// [`KernelError::Segfault`] when no VMA covers `va`;
    /// [`KernelError::OutOfMemory`] when the buddy allocator is empty.
    pub fn handle_page_fault(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        tlb: &mut Tlb,
        core: usize,
        proc: &mut Process,
        va: VirtAddr,
    ) -> Result<FaultOutcome, KernelError> {
        if proc.addr_space.find(va).is_none() {
            return Err(KernelError::Segfault(va));
        }
        self.stats.page_faults += 1;
        let mut cycles = Cycles::new(self.costs.fault_work + self.costs.buddy_alloc);
        cycles += self.touch_kmeta(mem_sys, core, 4);
        let frame = self.buddy.alloc(FrameUse::UserHeap)?;
        let page = va.page_base();
        cycles += self.map_page(mem, mem_sys, core, proc, page, frame)?;
        tlb.insert(page, frame);
        self.fault_lat.record(cycles.raw());
        Ok(FaultOutcome { frame, cycles })
    }

    /// Performs a context switch: flushes the TLB and charges scheduler
    /// cost.
    pub fn context_switch(&mut self, tlb: &mut Tlb) -> Cycles {
        self.stats.context_switches += 1;
        tlb.flush();
        Cycles::new(self.costs.context_switch)
    }

    /// Grants `n` frames to the Memento hardware page pool. Replenishment
    /// is batched and off the critical path; the (small) cost is returned
    /// for completeness.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfMemory`] when the buddy allocator is exhausted.
    pub fn grant_pool_frames(&mut self, n: u64) -> Result<(Vec<Frame>, Cycles), KernelError> {
        let mut frames = Vec::with_capacity(n as usize);
        for _ in 0..n {
            // Frames the pool previously returned count as warm reuse, not
            // fresh aggregate demand: the process already paid for that
            // physical page once (Fig. 11's metric must not double-count
            // every recycle round-trip).
            if self.pool_return_credit > 0 {
                self.pool_return_credit -= 1;
                frames.push(self.buddy.alloc_recycled(FrameUse::MementoPool)?);
            } else {
                frames.push(self.buddy.alloc(FrameUse::MementoPool)?);
            }
        }
        self.stats.pool_frames_granted += n;
        Ok((frames, Cycles::new(self.costs.buddy_alloc * n / 4)))
    }

    /// Accepts frames back from the Memento pool (high-water overflow
    /// return or process detach). The device has already released the
    /// frames' backing store; the kernel only restores buddy state and
    /// records a re-grant credit so warm reuse is attributed correctly.
    pub fn accept_pool_frames(&mut self, frames: &[Frame]) -> Cycles {
        for f in frames {
            self.buddy.free(*f, FrameUse::MementoPool);
        }
        self.pool_return_credit += frames.len() as u64;
        self.stats.pool_frames_returned += frames.len() as u64;
        Cycles::new(self.costs.buddy_free * frames.len() as u64 / 4)
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("stats", &self.stats)
            .field("frames", self.buddy.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_cache::MemSystemConfig;

    struct Rig {
        mem: PhysMem,
        sys: MemSystem,
        tlb: Tlb,
        kernel: Kernel,
        proc: Process,
    }

    fn rig() -> Rig {
        let mut mem = PhysMem::new(64 << 20);
        let mut kernel = Kernel::boot(&mut mem, KernelCosts::calibrated());
        let proc = kernel.create_process(&mut mem);
        Rig {
            mem,
            sys: MemSystem::new(MemSystemConfig::paper_default(1)),
            tlb: Tlb::default(),
            kernel,
            proc,
        }
    }

    #[test]
    fn mmap_is_lazy() {
        let mut r = rig();
        let out = r
            .kernel
            .mmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                256 * 1024,
                MmapFlags::default(),
            )
            .unwrap();
        assert!(out.cycles >= Cycles::new(2100), "syscall + mmap work");
        // No physical backing yet.
        assert!(r
            .proc
            .addr_space
            .page_table
            .translate(&r.mem, out.addr)
            .is_none());
        assert_eq!(r.kernel.frame_stats().get(FrameUse::UserHeap).aggregate, 0);
    }

    #[test]
    fn fault_backs_page_and_fills_tlb() {
        let mut r = rig();
        let out = r
            .kernel
            .mmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                4096,
                MmapFlags::default(),
            )
            .unwrap();
        let fault = r
            .kernel
            .handle_page_fault(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                out.addr.add(100),
            )
            .unwrap();
        assert!(fault.cycles >= Cycles::new(2000), "fault path is expensive");
        assert_eq!(
            r.proc
                .addr_space
                .page_table
                .translate(&r.mem, out.addr)
                .unwrap()
                .frame,
            fault.frame
        );
        assert_eq!(r.tlb.lookup(out.addr).frame, Some(fault.frame));
        assert_eq!(r.kernel.stats().page_faults, 1);
    }

    #[test]
    fn fault_outside_vma_segfaults() {
        let mut r = rig();
        let err = r
            .kernel
            .handle_page_fault(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                VirtAddr::new(0x1234_5000),
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::Segfault(_)));
    }

    #[test]
    fn populate_backs_everything_eagerly() {
        let mut r = rig();
        let pages = 8u64;
        let out = r
            .kernel
            .mmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                pages * PAGE_SIZE as u64,
                MmapFlags { populate: true },
            )
            .unwrap();
        for i in 0..pages {
            let va = out.addr.add(i * PAGE_SIZE as u64);
            assert!(r.proc.addr_space.page_table.translate(&r.mem, va).is_some());
        }
        assert_eq!(r.kernel.stats().populated_pages, pages);
        assert_eq!(
            r.kernel.frame_stats().get(FrameUse::UserHeap).aggregate,
            pages
        );
    }

    #[test]
    fn munmap_releases_frames_and_tables() {
        let mut r = rig();
        let len = 4 * PAGE_SIZE as u64;
        let out = r
            .kernel
            .mmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                len,
                MmapFlags { populate: true },
            )
            .unwrap();
        let free_before = r.kernel.buddy.free_frames();
        let um = r
            .kernel
            .munmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                out.addr,
                len,
            )
            .unwrap();
        assert_eq!(um.released_pages, 4);
        assert!(r.kernel.buddy.free_frames() > free_before);
        assert_eq!(r.tlb.lookup(out.addr).frame, None, "TLB shot down");
        assert_eq!(
            r.kernel.frame_stats().get(FrameUse::UserHeap).current,
            0,
            "all heap frames returned"
        );
    }

    #[test]
    fn partial_munmap_splits_the_mapping() {
        let mut r = rig();
        let len = 4 * PAGE_SIZE as u64;
        let out = r
            .kernel
            .mmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                len,
                MmapFlags { populate: true },
            )
            .unwrap();
        // Unmap the middle two pages only.
        let hole = out.addr.add(PAGE_SIZE as u64);
        let um = r
            .kernel
            .munmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                hole,
                2 * PAGE_SIZE as u64,
            )
            .unwrap();
        assert_eq!(um.released_pages, 2);
        // Edges still mapped, hole is gone.
        assert!(r
            .proc
            .addr_space
            .page_table
            .translate(&r.mem, out.addr)
            .is_some());
        assert!(r
            .proc
            .addr_space
            .page_table
            .translate(&r.mem, hole)
            .is_none());
        assert!(r
            .proc
            .addr_space
            .page_table
            .translate(&r.mem, out.addr.add(3 * PAGE_SIZE as u64))
            .is_some());
        assert_eq!(r.proc.addr_space.vma_count(), 2, "split into two VMAs");
    }

    #[test]
    fn munmap_of_unmapped_range_fails() {
        let mut r = rig();
        let err = r
            .kernel
            .munmap(
                &mut r.mem,
                &mut r.sys,
                &mut r.tlb,
                0,
                &mut r.proc,
                VirtAddr::new(0x5000),
                4096,
            )
            .unwrap_err();
        assert_eq!(err, KernelError::BadMunmap);
    }

    #[test]
    fn context_switch_flushes_tlb() {
        let mut r = rig();
        r.tlb.insert(VirtAddr::new(0x1000), Frame::from_number(1));
        let cycles = r.kernel.context_switch(&mut r.tlb);
        assert_eq!(cycles, Cycles::new(r.kernel.costs().context_switch));
        assert_eq!(r.tlb.lookup(VirtAddr::new(0x1000)).frame, None);
        assert_eq!(r.kernel.stats().context_switches, 1);
    }

    #[test]
    fn pool_grant_and_return() {
        let mut r = rig();
        let (frames, _c) = r.kernel.grant_pool_frames(16).unwrap();
        assert_eq!(frames.len(), 16);
        assert_eq!(
            r.kernel.frame_stats().get(FrameUse::MementoPool).current,
            16
        );
        r.kernel.accept_pool_frames(&frames);
        assert_eq!(r.kernel.frame_stats().get(FrameUse::MementoPool).current, 0);
        assert_eq!(
            r.kernel.frame_stats().get(FrameUse::MementoPool).aggregate,
            16
        );
        assert_eq!(r.kernel.stats().pool_frames_returned, 16);
    }

    #[test]
    fn regrant_of_returned_frames_counts_as_recycled() {
        let mut r = rig();
        let (frames, _c) = r.kernel.grant_pool_frames(16).unwrap();
        r.kernel.accept_pool_frames(&frames);
        // Warm re-grant: same physical demand, no new aggregate pages.
        let (again, _c) = r.kernel.grant_pool_frames(16).unwrap();
        assert_eq!(again.len(), 16);
        let pool = r.kernel.frame_stats().get(FrameUse::MementoPool);
        assert_eq!(pool.aggregate, 16, "aggregate counts fresh grants only");
        assert_eq!(pool.recycled, 16, "re-grant attributed to warm reuse");
        // A grant beyond the credit is fresh demand again.
        let (_more, _c) = r.kernel.grant_pool_frames(4).unwrap();
        assert_eq!(
            r.kernel.frame_stats().get(FrameUse::MementoPool).aggregate,
            20
        );
    }

    #[test]
    fn distinct_pids() {
        let mut r = rig();
        let p2 = r.kernel.create_process(&mut r.mem);
        assert_ne!(r.proc.pid, p2.pid);
    }
}
