//! Buddy allocator over physical frames, with frame-use attribution.
//!
//! This is the kernel's physical page allocator (Fig. 1, step 7 of the
//! paper). Every allocation is tagged with a [`FrameUse`] so experiments can
//! split memory consumption into user and kernel shares (Fig. 11). The
//! "aggregate memory usage" metric of the paper — total physical pages
//! allocated during simulated execution — is tracked per use as
//! `aggregate` counts.

use memento_simcore::physmem::Frame;
use std::collections::BTreeSet;
use std::fmt;

/// Maximum buddy order (2^10 pages = 4 MiB blocks), matching Linux.
pub const MAX_ORDER: u8 = 10;

/// What an allocated frame is used for; drives the Fig. 11 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameUse {
    /// Userspace heap pages (anonymous mmap backing).
    UserHeap,
    /// Page-table pages (regular process tables).
    PageTable,
    /// Kernel bookkeeping: VMA structs, accounting, handler state.
    KernelMeta,
    /// Pages handed to Memento's hardware page pool.
    MementoPool,
}

impl FrameUse {
    /// All uses, in reporting order.
    pub const ALL: [FrameUse; 4] = [
        FrameUse::UserHeap,
        FrameUse::PageTable,
        FrameUse::KernelMeta,
        FrameUse::MementoPool,
    ];

    /// True when the use counts toward *kernel* memory in the paper's
    /// user/kernel split. Memento-pool pages back user heap data, so they
    /// count as user memory.
    pub fn is_kernel(self) -> bool {
        matches!(self, FrameUse::PageTable | FrameUse::KernelMeta)
    }
}

/// Per-use frame statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UseStats {
    /// Frames currently allocated.
    pub current: u64,
    /// Peak concurrently-allocated frames.
    pub peak: u64,
    /// Total frames ever allocated fresh from the OS (aggregate usage,
    /// Fig. 11's metric). Excludes recycled re-grants.
    pub aggregate: u64,
    /// Frames re-granted after being returned by their consumer (warm pool
    /// reuse). Counted separately so `aggregate` tracks only fresh OS
    /// demand instead of double-counting every recycle round-trip.
    pub recycled: u64,
}

/// Snapshot of the allocator's frame accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrameStats {
    user_heap: UseStats,
    page_table: UseStats,
    kernel_meta: UseStats,
    memento_pool: UseStats,
    /// True concurrently-resident peak (all uses summed at each
    /// allocation) since the last window reset — unlike [`Self::peak_total`]
    /// this is not a per-use upper bound, so it can attribute one
    /// invocation's footprint.
    window_peak: u64,
    /// Same window, excluding Memento-pool frames: from the kernel's side
    /// a device pool grant is one opaque bucket covering both mapped data
    /// and the pool's free staging, so fleet accounting takes the mapped
    /// part from the device and only the non-pool uses from here.
    window_peak_nonpool: u64,
}

impl FrameStats {
    /// Stats for one use.
    pub fn get(&self, usage: FrameUse) -> UseStats {
        match usage {
            FrameUse::UserHeap => self.user_heap,
            FrameUse::PageTable => self.page_table,
            FrameUse::KernelMeta => self.kernel_meta,
            FrameUse::MementoPool => self.memento_pool,
        }
    }

    fn get_mut(&mut self, usage: FrameUse) -> &mut UseStats {
        match usage {
            FrameUse::UserHeap => &mut self.user_heap,
            FrameUse::PageTable => &mut self.page_table,
            FrameUse::KernelMeta => &mut self.kernel_meta,
            FrameUse::MementoPool => &mut self.memento_pool,
        }
    }

    /// Aggregate frames ever allocated for user-attributed memory
    /// (heap + Memento pool).
    pub fn aggregate_user(&self) -> u64 {
        self.user_heap.aggregate + self.memento_pool.aggregate
    }

    /// Aggregate frames ever allocated for kernel-attributed memory.
    pub fn aggregate_kernel(&self) -> u64 {
        self.page_table.aggregate + self.kernel_meta.aggregate
    }

    /// Aggregate over everything.
    pub fn aggregate_total(&self) -> u64 {
        self.aggregate_user() + self.aggregate_kernel()
    }

    /// Currently allocated frames over all uses.
    pub fn current_total(&self) -> u64 {
        FrameUse::ALL.iter().map(|u| self.get(*u).current).sum()
    }

    /// Peak concurrently-allocated frames summed per use (upper bound on
    /// true peak).
    pub fn peak_total(&self) -> u64 {
        FrameUse::ALL.iter().map(|u| self.get(*u).peak).sum()
    }

    /// Restarts the resident-peak window at the current level (start of a
    /// warm invocation's measurement window).
    pub fn reset_window_peak(&mut self) {
        self.window_peak = self.current_total();
        self.window_peak_nonpool = self.current_total() - self.memento_pool.current;
    }

    /// Peak concurrently-resident frames since the last window reset.
    pub fn window_peak(&self) -> u64 {
        self.window_peak
    }

    /// Peak concurrently-resident non-pool frames (user heap, page
    /// tables, kernel metadata) since the last window reset.
    pub fn window_peak_nonpool(&self) -> u64 {
        self.window_peak_nonpool
    }

    fn note_window(&mut self) {
        self.window_peak = self.window_peak.max(self.current_total());
        self.window_peak_nonpool = self
            .window_peak_nonpool
            .max(self.current_total() - self.memento_pool.current);
    }
}

impl UseStats {
    /// Aggregate allocations since `earlier`; `current`/`peak` keep their
    /// end-of-run values (they are levels, not counters).
    pub fn delta(&self, earlier: UseStats) -> UseStats {
        UseStats {
            current: self.current,
            peak: self.peak,
            aggregate: self.aggregate - earlier.aggregate,
            recycled: self.recycled - earlier.recycled,
        }
    }
}

impl FrameStats {
    /// Per-use aggregates accumulated since `earlier`.
    pub fn delta(&self, earlier: &FrameStats) -> FrameStats {
        FrameStats {
            user_heap: self.user_heap.delta(earlier.user_heap),
            page_table: self.page_table.delta(earlier.page_table),
            kernel_meta: self.kernel_meta.delta(earlier.kernel_meta),
            memento_pool: self.memento_pool.delta(earlier.memento_pool),
            window_peak: self.window_peak,
            window_peak_nonpool: self.window_peak_nonpool,
        }
    }
}

/// Error when physical memory is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfFrames;

impl fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("buddy allocator exhausted")
    }
}

impl std::error::Error for OutOfFrames {}

/// A binary buddy allocator over a contiguous frame range.
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    start: u64,
    end: u64,
    /// Free blocks per order, identified by their first frame number.
    free: Vec<BTreeSet<u64>>,
    stats: FrameStats,
}

impl BuddyAllocator {
    /// Builds an allocator over frames `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(start: Frame, end: Frame) -> Self {
        assert!(end.number() > start.number(), "empty frame range");
        let mut alloc = BuddyAllocator {
            start: start.number(),
            end: end.number(),
            free: vec![BTreeSet::new(); MAX_ORDER as usize + 1],
            stats: FrameStats::default(),
        };
        // Carve the range into maximal aligned blocks.
        let mut at = alloc.start;
        while at < alloc.end {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                let rel = at - alloc.start;
                if rel.is_multiple_of(size) && at + size <= alloc.end {
                    break;
                }
                order -= 1;
            }
            alloc.free[order as usize].insert(at);
            at += 1u64 << order;
        }
        alloc
    }

    /// Frames managed by the allocator.
    pub fn capacity(&self) -> u64 {
        self.end - self.start
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(order, set)| set.len() as u64 * (1u64 << order))
            .sum()
    }

    /// Mutable frame statistics (window-peak reset).
    pub(crate) fn stats_mut(&mut self) -> &mut FrameStats {
        &mut self.stats
    }

    /// Frame accounting snapshot.
    pub fn stats(&self) -> &FrameStats {
        &self.stats
    }

    fn buddy_of(&self, block: u64, order: u8) -> u64 {
        let rel = block - self.start;
        self.start + (rel ^ (1u64 << order))
    }

    /// Allocates a block of `2^order` frames for `usage`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when no block of sufficient order exists.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc_order(&mut self, order: u8, usage: FrameUse) -> Result<Frame, OutOfFrames> {
        self.alloc_order_tagged(order, usage, false)
    }

    fn alloc_order_tagged(
        &mut self,
        order: u8,
        usage: FrameUse,
        recycled: bool,
    ) -> Result<Frame, OutOfFrames> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest order with a free block.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&block) = self.free[o as usize].iter().next() {
                found = Some((o, block));
                break;
            }
        }
        let (mut o, block) = found.ok_or(OutOfFrames)?;
        self.free[o as usize].remove(&block);
        // Split down to the requested order.
        while o > order {
            o -= 1;
            let upper_half = block + (1u64 << o);
            self.free[o as usize].insert(upper_half);
        }
        let pages = 1u64 << order;
        let st = self.stats.get_mut(usage);
        st.current += pages;
        st.peak = st.peak.max(st.current);
        if recycled {
            st.recycled += pages;
        } else {
            st.aggregate += pages;
        }
        self.stats.note_window();
        Ok(Frame::from_number(block))
    }

    /// Allocates a single frame for `usage`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when memory is exhausted.
    pub fn alloc(&mut self, usage: FrameUse) -> Result<Frame, OutOfFrames> {
        self.alloc_order(0, usage)
    }

    /// Allocates a single frame for `usage`, attributing it to warm reuse
    /// of previously returned frames (`recycled`) instead of fresh
    /// aggregate demand. Used when re-granting pool frames the consumer
    /// already returned: the physical page was acquired once, so Fig. 11's
    /// aggregate metric must not count it again.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when memory is exhausted.
    pub fn alloc_recycled(&mut self, usage: FrameUse) -> Result<Frame, OutOfFrames> {
        self.alloc_order_tagged(0, usage, true)
    }

    /// Frees a block of `2^order` frames previously allocated for `usage`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on double free of the same block.
    pub fn free_order(&mut self, frame: Frame, order: u8, usage: FrameUse) {
        let mut block = frame.number();
        let mut order = order;
        debug_assert!(
            block >= self.start && block + (1u64 << order) <= self.end,
            "free outside managed range"
        );
        let pages = 1u64 << order;
        let st = self.stats.get_mut(usage);
        debug_assert!(st.current >= pages, "freeing more than allocated");
        st.current -= pages;
        // Coalesce with the buddy while possible.
        while order < MAX_ORDER {
            let buddy = self.buddy_of(block, order);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            block = block.min(buddy);
            order += 1;
        }
        let inserted = self.free[order as usize].insert(block);
        debug_assert!(inserted, "double free of block {block}");
    }

    /// Frees a single frame.
    pub fn free(&mut self, frame: Frame, usage: FrameUse) {
        self.free_order(frame, 0, usage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buddy(frames: u64) -> BuddyAllocator {
        BuddyAllocator::new(Frame::from_number(16), Frame::from_number(16 + frames))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut b = buddy(64);
        assert_eq!(b.free_frames(), 64);
        let f = b.alloc(FrameUse::UserHeap).unwrap();
        assert_eq!(b.free_frames(), 63);
        b.free(f, FrameUse::UserHeap);
        assert_eq!(b.free_frames(), 64);
    }

    #[test]
    fn split_and_coalesce() {
        let mut b = buddy(16);
        let frames: Vec<Frame> = (0..16)
            .map(|_| b.alloc(FrameUse::UserHeap).unwrap())
            .collect();
        assert_eq!(b.free_frames(), 0);
        assert!(b.alloc(FrameUse::UserHeap).is_err());
        for f in frames {
            b.free(f, FrameUse::UserHeap);
        }
        assert_eq!(b.free_frames(), 16);
        // Everything coalesced back: a 16-page block is allocatable again.
        let big = b.alloc_order(4, FrameUse::UserHeap).unwrap();
        assert_eq!(big.number(), 16);
    }

    #[test]
    fn distinct_frames_until_exhaustion() {
        let mut b = buddy(32);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let f = b.alloc(FrameUse::UserHeap).unwrap();
            assert!(seen.insert(f.number()), "duplicate frame {f}");
        }
    }

    #[test]
    fn order_allocation_alignment() {
        let mut b = buddy(64);
        let f = b.alloc_order(3, FrameUse::PageTable).unwrap();
        assert_eq!((f.number() - 16) % 8, 0, "order-3 block is 8-aligned");
        assert_eq!(b.free_frames(), 56);
        b.free_order(f, 3, FrameUse::PageTable);
        assert_eq!(b.free_frames(), 64);
    }

    #[test]
    fn stats_attribution() {
        let mut b = buddy(64);
        let f1 = b.alloc(FrameUse::UserHeap).unwrap();
        let _f2 = b.alloc(FrameUse::PageTable).unwrap();
        let _f3 = b.alloc(FrameUse::MementoPool).unwrap();
        b.free(f1, FrameUse::UserHeap);
        let s = b.stats();
        assert_eq!(s.get(FrameUse::UserHeap).current, 0);
        assert_eq!(s.get(FrameUse::UserHeap).aggregate, 1);
        assert_eq!(s.get(FrameUse::UserHeap).peak, 1);
        assert_eq!(s.aggregate_user(), 2, "heap + memento pool");
        assert_eq!(s.aggregate_kernel(), 1, "page table");
        assert_eq!(s.aggregate_total(), 3);
        assert_eq!(s.current_total(), 2);
    }

    #[test]
    fn recycled_allocations_do_not_inflate_aggregate() {
        let mut b = buddy(64);
        let f = b.alloc(FrameUse::MementoPool).unwrap();
        b.free(f, FrameUse::MementoPool);
        let r = b.alloc_recycled(FrameUse::MementoPool).unwrap();
        b.free(r, FrameUse::MementoPool);
        let s = b.stats().get(FrameUse::MementoPool);
        assert_eq!(s.aggregate, 1, "fresh grant counted once");
        assert_eq!(s.recycled, 1, "re-grant attributed to reuse");
        assert_eq!(s.current, 0);
        assert_eq!(s.peak, 1, "levels unaffected by attribution");
    }

    #[test]
    fn kernel_attribution_flags() {
        assert!(FrameUse::PageTable.is_kernel());
        assert!(FrameUse::KernelMeta.is_kernel());
        assert!(!FrameUse::UserHeap.is_kernel());
        assert!(!FrameUse::MementoPool.is_kernel());
    }

    #[test]
    fn unaligned_range_is_fully_usable() {
        // Range of 100 frames starting at 16: carved into 64+32+4.
        let mut b = buddy(100);
        assert_eq!(b.free_frames(), 100);
        let mut count = 0;
        while b.alloc(FrameUse::UserHeap).is_ok() {
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn interleaved_alloc_free_coalesces() {
        let mut b = buddy(8);
        let a = b.alloc(FrameUse::UserHeap).unwrap();
        let c = b.alloc(FrameUse::UserHeap).unwrap();
        b.free(a, FrameUse::UserHeap);
        let d = b.alloc(FrameUse::UserHeap).unwrap();
        assert_eq!(d, a, "lowest free frame reused");
        b.free(c, FrameUse::UserHeap);
        b.free(d, FrameUse::UserHeap);
        assert!(
            b.alloc_order(3, FrameUse::UserHeap).is_ok(),
            "full coalesce"
        );
    }
}
