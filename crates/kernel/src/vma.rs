//! Virtual-memory areas and per-process address-space layout.

use memento_simcore::addr::{VirtAddr, PAGE_SIZE};
use memento_simcore::physmem::PhysMem;
use memento_vm::pagetable::PageTable;
use std::collections::BTreeMap;
use std::fmt;

/// Base of the anonymous-mmap region (grows upward).
pub const MMAP_BASE: u64 = 0x7f00_0000_0000;

/// One virtual-memory area: a contiguous, page-aligned `[start, end)` range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Vma {
    /// Inclusive start (page-aligned).
    pub start: VirtAddr,
    /// Exclusive end (page-aligned).
    pub end: VirtAddr,
    /// Whether the area was created with `MAP_POPULATE`.
    pub populated: bool,
}

impl Vma {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end.offset_from(self.start)
    }

    /// True when zero-length (never constructed by `mmap`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of pages spanned.
    pub fn pages(&self) -> u64 {
        self.len() / PAGE_SIZE as u64
    }

    /// Whether `va` falls inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vma[{}..{})", self.start, self.end)
    }
}

/// Errors from address-space operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmaError {
    /// `munmap` range does not exactly match an existing VMA (returned by
    /// the strict [`AddressSpace::remove`]; [`AddressSpace::remove_range`]
    /// splits instead).
    NoExactMatch,
    /// The range does not lie inside any mapping.
    NotMapped,
}

impl fmt::Display for VmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmaError::NoExactMatch => f.write_str("munmap range does not match a mapping"),
            VmaError::NotMapped => f.write_str("munmap range is not mapped"),
        }
    }
}

impl std::error::Error for VmaError {}

/// A process address space: VMAs plus the regular page table (CR3).
#[derive(Debug)]
pub struct AddressSpace {
    /// The process's regular page table.
    pub page_table: PageTable,
    vmas: BTreeMap<u64, Vma>,
    mmap_cursor: u64,
}

impl AddressSpace {
    /// Creates an address space with a fresh page-table root taken from
    /// boot memory. Only safe *before* a frame allocator takes ownership of
    /// the remaining frames — the kernel uses
    /// [`AddressSpace::with_page_table`] instead.
    ///
    /// # Panics
    ///
    /// Panics if boot memory for the root is exhausted.
    pub fn new(mem: &mut PhysMem) -> Self {
        Self::with_page_table(PageTable::new(mem).expect("boot memory for page-table root"))
    }

    /// Creates an address space around an existing (zeroed) page table.
    pub fn with_page_table(page_table: PageTable) -> Self {
        AddressSpace {
            page_table,
            vmas: BTreeMap::new(),
            mmap_cursor: MMAP_BASE,
        }
    }

    /// Reserves a fresh page-aligned region of `len` bytes (rounded up) and
    /// records the VMA. This is the VA-assignment half of `mmap`.
    pub fn reserve(&mut self, len: u64, populated: bool) -> Vma {
        let len = VirtAddr::new(len)
            .page_align_up()
            .raw()
            .max(PAGE_SIZE as u64);
        let start = VirtAddr::new(self.mmap_cursor);
        let end = start.add(len);
        self.mmap_cursor = end.raw();
        let vma = Vma {
            start,
            end,
            populated,
        };
        self.vmas.insert(start.raw(), vma);
        vma
    }

    /// Removes the VMA exactly covering `[start, start + len)`.
    ///
    /// # Errors
    ///
    /// [`VmaError::NoExactMatch`] when no such mapping exists.
    pub fn remove(&mut self, start: VirtAddr, len: u64) -> Result<Vma, VmaError> {
        let len = VirtAddr::new(len)
            .page_align_up()
            .raw()
            .max(PAGE_SIZE as u64);
        match self.vmas.get(&start.raw()) {
            Some(vma) if vma.len() == len => {
                Ok(self.vmas.remove(&start.raw()).expect("checked present"))
            }
            _ => Err(VmaError::NoExactMatch),
        }
    }

    /// Removes `[start, start + len)` like Linux `munmap`: the range may
    /// cover a whole VMA, a prefix/suffix (the VMA shrinks), or an interior
    /// window (the VMA splits in two). The range must lie within a single
    /// mapping.
    ///
    /// # Errors
    ///
    /// [`VmaError::NotMapped`] when no single VMA covers the whole range.
    pub fn remove_range(&mut self, start: VirtAddr, len: u64) -> Result<Vma, VmaError> {
        let len = VirtAddr::new(len)
            .page_align_up()
            .raw()
            .max(PAGE_SIZE as u64);
        let start = start.page_base();
        let end = start.add(len);
        let vma = *self.find(start).ok_or(VmaError::NotMapped)?;
        if end > vma.end {
            return Err(VmaError::NotMapped);
        }
        self.vmas.remove(&vma.start.raw());
        if vma.start < start {
            // Keep the left remainder.
            self.vmas.insert(
                vma.start.raw(),
                Vma {
                    start: vma.start,
                    end: start,
                    populated: vma.populated,
                },
            );
        }
        if end < vma.end {
            // Keep the right remainder.
            self.vmas.insert(
                end.raw(),
                Vma {
                    start: end,
                    end: vma.end,
                    populated: vma.populated,
                },
            );
        }
        Ok(Vma {
            start,
            end,
            populated: vma.populated,
        })
    }

    /// Finds the VMA containing `va`.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.raw())
            .next_back()
            .map(|(_, vma)| vma)
            .filter(|vma| vma.contains(va))
    }

    /// Number of live VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Iterates over live VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (PhysMem, AddressSpace) {
        let mut mem = PhysMem::new(1 << 20);
        let asp = AddressSpace::new(&mut mem);
        (mem, asp)
    }

    #[test]
    fn reserve_is_page_aligned_and_disjoint() {
        let (_mem, mut asp) = space();
        let a = asp.reserve(100, false);
        let b = asp.reserve(8192, false);
        assert!(a.start.is_page_aligned());
        assert_eq!(a.len(), PAGE_SIZE as u64, "rounded up to one page");
        assert_eq!(b.len(), 8192);
        assert!(a.end <= b.start, "regions do not overlap");
        assert_eq!(asp.vma_count(), 2);
    }

    #[test]
    fn find_hits_interior_addresses() {
        let (_mem, mut asp) = space();
        let vma = asp.reserve(3 * PAGE_SIZE as u64, false);
        assert_eq!(asp.find(vma.start), Some(&vma));
        assert_eq!(asp.find(vma.start.add(5000)), Some(&vma));
        assert_eq!(asp.find(vma.end), None, "end is exclusive");
        assert_eq!(asp.find(VirtAddr::new(0x1000)), None);
    }

    #[test]
    fn remove_requires_exact_range() {
        let (_mem, mut asp) = space();
        let vma = asp.reserve(2 * PAGE_SIZE as u64, false);
        assert_eq!(
            asp.remove(vma.start, PAGE_SIZE as u64),
            Err(VmaError::NoExactMatch)
        );
        assert_eq!(
            asp.remove(vma.start.add(64), vma.len()),
            Err(VmaError::NoExactMatch)
        );
        assert_eq!(asp.remove(vma.start, vma.len()), Ok(vma));
        assert_eq!(asp.vma_count(), 0);
    }

    #[test]
    fn vma_geometry() {
        let vma = Vma {
            start: VirtAddr::new(0x1000),
            end: VirtAddr::new(0x4000),
            populated: true,
        };
        assert_eq!(vma.pages(), 3);
        assert!(!vma.is_empty());
        assert_eq!(format!("{vma}"), "vma[0x1000..0x4000)");
    }

    #[test]
    fn remove_range_splits_interior() {
        let (_mem, mut asp) = space();
        let vma = asp.reserve(8 * PAGE_SIZE as u64, false);
        // Punch out pages 2..4.
        let hole_start = vma.start.add(2 * PAGE_SIZE as u64);
        let removed = asp.remove_range(hole_start, 2 * PAGE_SIZE as u64).unwrap();
        assert_eq!(removed.start, hole_start);
        assert_eq!(removed.pages(), 2);
        assert_eq!(asp.vma_count(), 2, "split into left and right remainders");
        assert!(asp.find(vma.start).is_some());
        assert!(asp.find(hole_start).is_none(), "hole unmapped");
        assert!(asp.find(vma.start.add(5 * PAGE_SIZE as u64)).is_some());
    }

    #[test]
    fn remove_range_trims_prefix_and_suffix() {
        let (_mem, mut asp) = space();
        let vma = asp.reserve(4 * PAGE_SIZE as u64, false);
        asp.remove_range(vma.start, PAGE_SIZE as u64).unwrap();
        assert!(asp.find(vma.start).is_none());
        let rest = *asp
            .find(vma.start.add(PAGE_SIZE as u64))
            .expect("suffix kept");
        assert_eq!(rest.pages(), 3);
        let last_page = vma.start.add(3 * PAGE_SIZE as u64);
        asp.remove_range(last_page, PAGE_SIZE as u64).unwrap();
        let mid = *asp
            .find(vma.start.add(PAGE_SIZE as u64))
            .expect("middle kept");
        assert_eq!(mid.pages(), 2);
    }

    #[test]
    fn remove_range_whole_vma() {
        let (_mem, mut asp) = space();
        let vma = asp.reserve(2 * PAGE_SIZE as u64, true);
        let removed = asp.remove_range(vma.start, vma.len()).unwrap();
        assert_eq!(removed, vma);
        assert_eq!(asp.vma_count(), 0);
    }

    #[test]
    fn remove_range_rejects_cross_vma() {
        let (_mem, mut asp) = space();
        let a = asp.reserve(2 * PAGE_SIZE as u64, false);
        let _b = asp.reserve(2 * PAGE_SIZE as u64, false);
        assert_eq!(
            asp.remove_range(a.start, 3 * PAGE_SIZE as u64),
            Err(VmaError::NotMapped),
            "range spanning two VMAs is rejected (single-mapping model)"
        );
        assert_eq!(
            asp.remove_range(VirtAddr::new(0x1000), PAGE_SIZE as u64),
            Err(VmaError::NotMapped)
        );
    }

    #[test]
    fn populated_flag_preserved() {
        let (_mem, mut asp) = space();
        let vma = asp.reserve(PAGE_SIZE as u64, true);
        assert!(asp.find(vma.start).unwrap().populated);
    }
}
