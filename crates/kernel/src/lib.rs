//! OS kernel model for the Memento simulator.
//!
//! Models the slice of Linux that matters to memory management on the
//! function critical path (paper §2.1):
//!
//! - a **buddy allocator** over physical frames ([`buddy`]), with frame-use
//!   attribution (user heap vs. page tables vs. kernel metadata vs. the
//!   Memento page pool) feeding the paper's Fig. 11 memory-usage breakdown;
//! - **virtual-memory areas** and lazy `mmap`/`munmap` ([`vma`], [`kernel`]),
//!   including `MAP_POPULATE` for the §6.6 sensitivity study;
//! - the **page-fault handler** that allocates a frame and installs a PTE on
//!   first touch — the dominant kernel cost that Memento's hardware page
//!   allocator eliminates;
//! - **syscall and context-switch overheads** ([`costs`]).
//!
//! All costs are charged in cycles returned to the caller; page-table writes
//! and kernel-metadata touches issue real accesses through the cache
//! hierarchy so kernel work also shows up as memory traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod buddy;
pub mod costs;
pub mod kernel;
pub mod vma;

pub use access::{demand_access, DemandAccess};
pub use buddy::{BuddyAllocator, FrameStats, FrameUse};
pub use costs::KernelCosts;
pub use kernel::{Kernel, KernelStats, MmapFlags, Process, ProcessId};
pub use vma::{AddressSpace, Vma};
