//! The baseline demand-access path: TLB lookup → hardware page walk →
//! (page fault → handler) → cache access.
//!
//! This is the path every load/store takes in the baseline system; it is
//! exactly the machinery whose cost Memento's hardware page allocator
//! removes for heap memory. Both the software-allocator models (for their
//! metadata touches) and the machine's workload execution use it.

use crate::kernel::{Kernel, KernelError, Process};
use memento_cache::{AccessKind, MemSystem};
use memento_simcore::addr::VirtAddr;
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::PhysMem;
use memento_vm::tlb::Tlb;
use memento_vm::walker::{PageWalker, WalkOutcome};

/// Outcome of a demand access, split for cycle attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandAccess {
    /// Cycles on the user side: TLB, page walk, cache/DRAM access.
    pub user_cycles: Cycles,
    /// Of `user_cycles`, the final cache/DRAM data access itself (callers
    /// modeling out-of-order overlap may discount this portion).
    pub access_cycles: Cycles,
    /// Cycles in the kernel: page-fault handling (zero when no fault).
    pub kernel_cycles: Cycles,
    /// Whether a page fault was taken.
    pub faulted: bool,
}

/// Performs a demand access at `va` through the full baseline path.
///
/// # Errors
///
/// Propagates [`KernelError::Segfault`] / [`KernelError::OutOfMemory`] from
/// the fault handler.
#[allow(clippy::too_many_arguments)]
pub fn demand_access(
    kernel: &mut Kernel,
    walker: &mut PageWalker,
    mem: &mut PhysMem,
    mem_sys: &mut MemSystem,
    tlb: &mut Tlb,
    core: usize,
    proc: &mut Process,
    va: VirtAddr,
    kind: AccessKind,
) -> Result<DemandAccess, KernelError> {
    let mut user_cycles = Cycles::ZERO;
    let mut kernel_cycles = Cycles::ZERO;
    let mut faulted = false;

    let lookup = tlb.lookup(va);
    user_cycles += lookup.cycles;
    #[cfg(debug_assertions)]
    if let Some(f) = lookup.frame {
        let t = proc.addr_space.page_table.translate(mem, va);
        assert_eq!(
            t.map(|t| t.frame),
            Some(f),
            "stale TLB at {va}: tlb={f:?} pt={t:?}"
        );
    }
    let frame = match lookup.frame {
        Some(f) => f,
        None => {
            let root = proc.addr_space.page_table.root();
            let walk = walker.walk(mem_sys, mem, core, root, va);
            user_cycles += walk.cycles;
            match walk.outcome {
                WalkOutcome::Mapped(f) => {
                    tlb.insert(va, f);
                    f
                }
                WalkOutcome::NotPresent { .. } => {
                    faulted = true;
                    let fault = kernel.handle_page_fault(mem, mem_sys, tlb, core, proc, va)?;
                    kernel_cycles += fault.cycles;
                    fault.frame
                }
            }
        }
    };

    let pa = frame.base_addr().add(va.page_offset());
    let access_cycles = mem_sys.access(core, kind, pa).cycles;
    user_cycles += access_cycles;
    Ok(DemandAccess {
        user_cycles,
        access_cycles,
        kernel_cycles,
        faulted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::KernelCosts;
    use crate::kernel::MmapFlags;
    use memento_cache::MemSystemConfig;

    #[test]
    fn first_touch_faults_then_hits() {
        let mut mem = PhysMem::new(64 << 20);
        let mut kernel = Kernel::boot(&mut mem, KernelCosts::calibrated());
        let mut proc = kernel.create_process(&mut mem);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlb = Tlb::default();
        let mut walker = PageWalker::new();

        let m = kernel
            .mmap(
                &mut mem,
                &mut sys,
                &mut tlb,
                0,
                &mut proc,
                8192,
                MmapFlags::default(),
            )
            .unwrap();

        let first = demand_access(
            &mut kernel,
            &mut walker,
            &mut mem,
            &mut sys,
            &mut tlb,
            0,
            &mut proc,
            m.addr,
            AccessKind::Write,
        )
        .unwrap();
        assert!(first.faulted);
        assert!(first.kernel_cycles > Cycles::new(2000));

        let second = demand_access(
            &mut kernel,
            &mut walker,
            &mut mem,
            &mut sys,
            &mut tlb,
            0,
            &mut proc,
            m.addr.add(8),
            AccessKind::Read,
        )
        .unwrap();
        assert!(!second.faulted);
        assert_eq!(second.kernel_cycles, Cycles::ZERO);
        assert!(second.user_cycles < first.user_cycles + first.kernel_cycles);
    }

    #[test]
    fn unmapped_address_segfaults() {
        let mut mem = PhysMem::new(64 << 20);
        let mut kernel = Kernel::boot(&mut mem, KernelCosts::calibrated());
        let mut proc = kernel.create_process(&mut mem);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlb = Tlb::default();
        let mut walker = PageWalker::new();

        let err = demand_access(
            &mut kernel,
            &mut walker,
            &mut mem,
            &mut sys,
            &mut tlb,
            0,
            &mut proc,
            VirtAddr::new(0x0dea_dbee_f000),
            AccessKind::Read,
        )
        .unwrap_err();
        assert!(matches!(err, KernelError::Segfault(_)));
    }

    #[test]
    fn tlb_hit_skips_walk() {
        let mut mem = PhysMem::new(64 << 20);
        let mut kernel = Kernel::boot(&mut mem, KernelCosts::calibrated());
        let mut proc = kernel.create_process(&mut mem);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlb = Tlb::default();
        let mut walker = PageWalker::new();
        let m = kernel
            .mmap(
                &mut mem,
                &mut sys,
                &mut tlb,
                0,
                &mut proc,
                4096,
                MmapFlags { populate: true },
            )
            .unwrap();
        let walks_before = walker.stats().walks.total();
        let acc = demand_access(
            &mut kernel,
            &mut walker,
            &mut mem,
            &mut sys,
            &mut tlb,
            0,
            &mut proc,
            m.addr,
            AccessKind::Read,
        )
        .unwrap();
        assert!(!acc.faulted);
        assert_eq!(
            walker.stats().walks.total(),
            walks_before,
            "no walk on TLB hit"
        );
    }
}
