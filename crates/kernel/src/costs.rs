//! Kernel cost model.
//!
//! Fixed cycle charges for the instruction-execution portion of kernel
//! paths; the memory-access portion (PTE writes, metadata touches) is
//! charged separately through the cache hierarchy at simulation time. The
//! defaults are calibrated so the baseline reproduces the paper's Table 2
//! user/kernel memory-management splits; each constant is in core cycles at
//! 3 GHz.

/// Cycle costs of kernel operations (excluding their memory accesses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelCosts {
    /// Mode switch in and out of the kernel (syscall instruction, register
    /// save/restore, return): charged once per syscall.
    pub syscall_overhead: u64,
    /// `mmap` work proper: VA search, VMA creation, accounting.
    pub mmap_work: u64,
    /// `munmap` base work: VMA lookup and teardown.
    pub munmap_work: u64,
    /// Extra `munmap` work per mapped page: PTE clear, frame return.
    pub munmap_per_page: u64,
    /// `madvise` base work: VMA lookup, flag bookkeeping.
    pub madvise_work: u64,
    /// Per-resident-page `madvise(MADV_FREE)` marking cost.
    pub madvise_per_page: u64,
    /// Page-fault handler work excluding the walk and PTE write: exception
    /// entry, VMA lookup, fault bookkeeping, return & retry.
    pub fault_work: u64,
    /// Buddy-allocator path per frame allocation.
    pub buddy_alloc: u64,
    /// Buddy-allocator path per frame free.
    pub buddy_free: u64,
    /// Per-page work when `MAP_POPULATE` eagerly backs a mapping.
    pub populate_per_page: u64,
    /// Process context-switch cost (register state, scheduler).
    pub context_switch: u64,
}

impl KernelCosts {
    /// Defaults calibrated against the paper's Table 2 breakdowns.
    pub fn calibrated() -> Self {
        KernelCosts {
            syscall_overhead: 700,
            mmap_work: 1400,
            munmap_work: 1100,
            munmap_per_page: 90,
            madvise_work: 500,
            madvise_per_page: 15,
            fault_work: 1900,
            buddy_alloc: 260,
            buddy_free: 180,
            populate_per_page: 450,
            context_switch: 3600,
        }
    }
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_calibrated() {
        assert_eq!(KernelCosts::default(), KernelCosts::calibrated());
    }

    #[test]
    fn fault_path_dwarfs_fast_userspace_path() {
        // Sanity: a page fault (handler + buddy) costs thousands of cycles,
        // the premise of the paper's kernel-overhead argument.
        let c = KernelCosts::calibrated();
        assert!(c.fault_work + c.buddy_alloc > 2000);
        assert!(c.syscall_overhead + c.mmap_work > 2000);
    }
}
