//! Self-profiling of the *simulator's own* hot loops, in wall-clock time.
//!
//! Everything else in this crate measures the simulated machine on the
//! simulated clock. This module points the instrumentation at ourselves:
//! how much real time does the cluster event loop, calibration, or shard
//! merge take? The bench harness (`memento-bench`) enables it around the
//! pinned workload set and writes per-span totals into `BENCH_*.json`, so
//! perf regressions name the hot loop that regressed instead of just the
//! end-to-end wall time.
//!
//! # Determinism
//!
//! Wall-clock reads are banned in simulator code because they leak into
//! result tables. Self-profiling is the sanctioned exception, kept safe by
//! construction rather than by discipline:
//!
//! - **Off by default, globally.** Until [`enable`] is called, [`span`]
//!   returns a no-op guard after one relaxed atomic load — no `Instant`
//!   is ever read, so ordinary runs stay lint-clean in behaviour as well
//!   as in text.
//! - **Write-only with respect to the simulation.** Spans accumulate into
//!   a process-global table that nothing in any simulator crate reads
//!   back; results can't depend on timing because timing is unobservable
//!   from inside the run.
//! - **Reported next to, never inside, result tables** — the same rule
//!   the experiments runner follows ([`take_report`] is called by the
//!   harness after the deterministic output is complete).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
// Wall-clock reads are sanctioned per call site below (each carries its
// own waiver): self-profiling measures the simulator itself; it is
// disabled by default and its output never enters result tables.
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<BTreeMap<String, SpanStats>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, SpanStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Accumulated wall-clock statistics for one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u128,
}

/// Turns self-profiling on process-wide. Call from a harness, never from
/// simulator code.
pub fn enable() {
    // lint:allow(atomic-ordering-audit): standalone flag, no data published with it
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns self-profiling off again (guards already open still record).
pub fn disable() {
    // lint:allow(atomic-ordering-audit): standalone flag, no data published with it
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when spans are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a named span. The returned guard records elapsed wall time into
/// the global table when dropped; when profiling is disabled this is one
/// atomic load and no clock read.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if ENABLED.load(Ordering::Relaxed) {
        SpanGuard {
            name,
            // lint:allow(wall-clock): see module docs — harness-gated.
            started: Some(Instant::now()),
        }
    } else {
        SpanGuard {
            name,
            started: None,
        }
    }
}

/// Drop guard for one [`span`] entry.
#[must_use = "a span guard records on drop; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let elapsed = started.elapsed().as_nanos();
        let mut t = table().lock().expect("selfprof table lock");
        let stats = t.entry(self.name.to_owned()).or_default();
        stats.calls += 1;
        stats.total_ns += elapsed;
    }
}

/// Drains and returns the accumulated span table (name → stats), leaving
/// it empty for the next measurement window.
pub fn take_report() -> BTreeMap<String, SpanStats> {
    let mut t = table().lock().expect("selfprof table lock");
    std::mem::take(&mut *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The table and the enabled flag are process-global, so the tests
    // below run as one serialized scenario to avoid cross-test bleed.
    #[test]
    fn disabled_spans_record_nothing_and_enabled_spans_accumulate() {
        disable();
        let _ = take_report();
        {
            let _g = span("selfprof.test.off");
        }
        assert!(
            take_report().is_empty(),
            "disabled spans must not touch the table"
        );

        enable();
        assert!(is_enabled());
        {
            let _g = span("selfprof.test.on");
            let _h = span("selfprof.test.on"); // nested same-name call
        }
        {
            let _g = span("selfprof.test.other");
        }
        disable();
        let report = take_report();
        assert_eq!(report["selfprof.test.on"].calls, 2);
        assert_eq!(report["selfprof.test.other"].calls, 1);
        // take_report drained the table.
        assert!(take_report().is_empty());
    }
}
