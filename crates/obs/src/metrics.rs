//! Typed counters and log2-bucketed histograms.
//!
//! The registry replaces scattered one-off statistics fields as the
//! *reporting* surface: layers keep their cheap native counters, and the
//! machine ingests them here under stable names so `experiments::report`
//! can render one "metrics appendix" per run. Everything iterates in
//! `BTreeMap` order, so rendered output is deterministic.

use memento_simcore::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram with power-of-two buckets.
///
/// Bucket `0` holds the value `0`; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b - 1]`. Buckets grow lazily, so a histogram that only ever
/// saw small values carries a short bucket vector — merging therefore
/// extends the destination to the source's length *before* adding (a
/// zip-style merge would silently drop the longer side's tail; see
/// [`Log2Hist::merge`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

/// The bucket index for `v`: 0 for 0, otherwise `floor(log2(v)) + 1`.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v` at once (bulk ingest of a counter).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += n;
        self.count += n;
        self.sum += v * n;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied bucket vector (index = `bucket_of(value)`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive value range covered by bucket `b`.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            (1u64 << (b - 1), (1u64 << b) - 1)
        }
    }

    /// Estimates the `q`-quantile of the recorded distribution.
    ///
    /// **This is an approximation.** It uses the same nearest-rank
    /// convention as [`crate::percentile::nearest_rank_sorted`] (rank
    /// `ceil(q * count)`, clamped to `[1, count]`) — but the histogram
    /// only knows which log2 bucket the rank's sample fell in, so the
    /// sample is reconstructed by linear interpolation across the
    /// bucket's value range. Distributions whose mass falls on bucket
    /// boundaries (0, 1, powers of two minus one) come back exact; inside
    /// a wide bucket `[2^(b-1), 2^b - 1]` the answer can be off by up to
    /// the bucket span (a factor of 2 in the worst case), degrading
    /// gracefully instead of snapping to a power-of-two edge. When the
    /// full sample vector is retained, prefer the exact helper; use this
    /// for merged shards and layer histograms where only buckets survive.
    /// Deterministic, integer-only. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_range(b);
                // Position of the rank within this bucket, 1..=n, mapped
                // linearly over the bucket's span of `hi - lo + 1` values.
                let within = rank - seen; // 1..=n
                let span = hi - lo; // 0 for the 0- and 1-buckets
                return lo + (span * within) / *n;
            }
            seen += n;
        }
        // Unreachable while count equals the bucket sum; be safe anyway.
        Self::bucket_range(self.buckets.len().saturating_sub(1)).1
    }

    /// The (p50, p95, p99) triple — the tail-latency summary the cluster
    /// report tabulates.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Adds `other` into `self`, preserving every bucket of both sides.
    ///
    /// Shards of uneven size produce bucket vectors of *different lengths*
    /// (a tail shard that saw only small values has a short vector). The
    /// destination is extended to cover the source before adding; a
    /// `zip`-based merge would truncate to the shorter vector and silently
    /// drop the longer side's high buckets.
    pub fn merge(&mut self, other: &Log2Hist) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A named registry of monotonic counters and [`Log2Hist`] histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Log2Hist>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Sets counter `name` to an absolute value (for ingesting a layer's
    /// own cumulative counter — idempotent across repeated ingests).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_owned()).or_default().record(v);
    }

    /// Replaces histogram `name` with a layer's own cumulative histogram
    /// (idempotent across repeated ingests).
    pub fn set_hist(&mut self, name: &str, hist: Log2Hist) {
        self.hists.insert(name.to_owned(), hist);
    }

    /// The current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, when present.
    pub fn hist(&self, name: &str) -> Option<&Log2Hist> {
        self.hists.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Log2Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`: counters add, histograms merge
    /// bucket-preservingly (see [`Log2Hist::merge`]).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the registry as a plain-text "metrics appendix": a counter
    /// table followed by one bar chart per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v:>14}");
            }
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist {name}  (count {}, sum {}, mean {:.1})",
                h.count(),
                h.sum(),
                h.mean()
            );
            let peak = h.buckets().iter().copied().max().unwrap_or(0).max(1);
            for (b, n) in h.buckets().iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                let (lo, hi) = Log2Hist::bucket_range(b);
                let bar = "#".repeat((n * 40).div_ceil(peak) as usize);
                let _ = writeln!(out, "  [{lo:>10}..{hi:>10}]  {n:>12}  {bar}");
            }
        }
        out
    }

    /// The registry as a JSON document (counters object + histograms with
    /// explicit bucket bounds).
    pub fn to_json(&self) -> Value {
        let mut counters = Value::object();
        for (name, v) in &self.counters {
            counters.set(name, *v as f64);
        }
        let mut hists = Value::object();
        for (name, h) in &self.hists {
            let mut doc = Value::object();
            doc.set("count", h.count() as f64)
                .set("sum", h.sum() as f64)
                .set(
                    "buckets",
                    Value::Array(
                        h.buckets()
                            .iter()
                            .enumerate()
                            .filter(|(_, n)| **n > 0)
                            .map(|(b, n)| {
                                let (lo, hi) = Log2Hist::bucket_range(b);
                                let mut row = Value::object();
                                row.set("lo", lo as f64)
                                    .set("hi", hi as f64)
                                    .set("n", *n as f64);
                                row
                            })
                            .collect(),
                    ),
                );
            hists.set(name, doc);
        }
        let mut out = Value::object();
        out.set("counters", counters).set("histograms", hists);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        for b in 1..20 {
            let (lo, hi) = Log2Hist::bucket_range(b);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
            assert_eq!(bucket_of(hi + 1), b + 1);
        }
    }

    #[test]
    fn record_and_mean() {
        let mut h = Log2Hist::new();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record_n(4, 2);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        assert!((h.mean() - 3.2).abs() < 1e-12);
        assert_eq!(h.buckets(), &[1, 1, 0, 3]);
    }

    /// The tail-shard regression: when a sweep's event count is not
    /// divisible by the job count, the tail shard sees fewer (and often
    /// only small) values, so its bucket vector is *shorter* than the main
    /// shards'. The old zip-style merge iterated the shorter vector and
    /// silently dropped the longer side's high buckets. This test fails on
    /// that implementation: merging a long histogram into a short one must
    /// preserve every sample.
    #[test]
    fn merge_preserves_tail_shard_buckets() {
        // Shard A (tail, 1 event): one tiny value -> 2 buckets.
        let mut tail = Log2Hist::new();
        tail.record(1);
        // Shard B (main, 4 events): values up to 5000 -> 14 buckets.
        let mut main = Log2Hist::new();
        for v in [3, 40, 500, 5000] {
            main.record(v);
        }
        assert!(tail.buckets().len() < main.buckets().len());

        // Merge the longer into the shorter — the direction that truncated.
        let mut merged = tail.clone();
        merged.merge(&main);
        assert_eq!(merged.count(), 5, "no sample may be dropped");
        assert_eq!(merged.sum(), 1 + 3 + 40 + 500 + 5000);
        assert_eq!(merged.buckets()[bucket_of(5000)], 1, "high bucket kept");

        // And the merge is symmetric up to bucket order.
        let mut other_way = main.clone();
        other_way.merge(&tail);
        assert_eq!(merged, other_way);
    }

    #[test]
    fn quantile_is_exact_on_bucket_boundary_distributions() {
        // Each value sits alone at its bucket's upper edge (2^k - 1), so
        // interpolation has no slack: quantiles are exact order statistics.
        let mut h = Log2Hist::new();
        for v in [0u64, 1, 3, 7, 15, 31, 63, 127, 255, 511] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0, "q=0 clamps to the first sample");
        assert_eq!(h.quantile(0.10), 0);
        assert_eq!(h.quantile(0.20), 1);
        assert_eq!(h.quantile(0.50), 15);
        assert_eq!(h.quantile(0.90), 255);
        assert_eq!(h.quantile(1.0), 511);
        let (p50, p95, p99) = h.percentiles();
        assert_eq!((p50, p95, p99), (15, 511, 511));
    }

    #[test]
    fn quantile_interpolates_within_wide_buckets() {
        // 100 samples of value 600 land in bucket [512, 1023]; every
        // quantile must stay inside that bucket and grow monotonically.
        let mut h = Log2Hist::new();
        h.record_n(600, 100);
        let (lo, hi) = Log2Hist::bucket_range(bucket_of(600));
        let mut prev = 0;
        for q in [0.01, 0.25, 0.50, 0.75, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((lo..=hi).contains(&v), "q={q}: {v} outside [{lo},{hi}]");
            assert!(v >= prev, "quantiles must be monotone in q");
            prev = v;
        }
        assert_eq!(h.quantile(1.0), hi, "last rank maps to the bucket top");
    }

    #[test]
    fn quantile_tail_dominates_p99() {
        // A bimodal latency shape: 990 fast requests, 10 slow ones. p50
        // stays in the fast bucket; p99 must land in the slow mode.
        let mut h = Log2Hist::new();
        h.record_n(100, 990);
        h.record_n(100_000, 10);
        assert!(h.quantile(0.50) <= 127, "p50 in the fast mode");
        assert!(h.quantile(0.99) <= 127, "rank 990 is still fast");
        assert!(h.quantile(0.995) >= 65_536, "tail rank reaches slow mode");
        assert_eq!(h.quantile(1.0), h.quantile(0.9999));
    }

    #[test]
    fn quantile_empty_and_merge_consistency() {
        let empty = Log2Hist::new();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.percentiles(), (0, 0, 0));
        // Quantiles of a merged histogram match recording the union.
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        let mut union = Log2Hist::new();
        for v in [1u64, 3, 3, 7] {
            a.record(v);
            union.record(v);
        }
        for v in [15u64, 31, 31, 63] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), union.quantile(q), "q={q}");
        }
    }

    #[test]
    fn registry_counters_and_hists() {
        let mut r = MetricsRegistry::new();
        r.add("bypass_fills", 3);
        r.add("bypass_fills", 2);
        r.set("dram_row_hits", 100);
        r.set("dram_row_hits", 120); // absolute: overwrites
        r.observe("walk_depth", 4);
        r.observe("walk_depth", 4);
        assert_eq!(r.counter("bypass_fills"), 5);
        assert_eq!(r.counter("dram_row_hits"), 120);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.hist("walk_depth").map(|h| h.count()), Some(2));
        let text = r.render();
        assert!(text.contains("bypass_fills"));
        assert!(text.contains("hist walk_depth"));
    }

    #[test]
    fn registry_merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.observe("h", 1);
        let mut b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 5);
        b.observe("h", 4096);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        let h = a.hist("h").expect("merged hist");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4097);
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let mut r = MetricsRegistry::new();
        r.add("c", 7);
        r.observe("h", 9);
        let doc = r.to_json();
        let parsed =
            memento_simcore::json::parse(&doc.to_pretty()).expect("registry JSON parses back");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("c")),
            Some(&Value::Num(7.0))
        );
    }
}
