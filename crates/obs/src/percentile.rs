//! The exact nearest-rank quantile over fully-retained sample sets.
//!
//! Two quantile paths exist in the workspace and they are *not* the same
//! estimator:
//!
//! - **Exact** — when a result keeps every sample (the cluster
//!   simulator's sorted latency vector), quantiles are order statistics:
//!   the nearest-rank sample at rank `ceil(q * n)`, clamped to `[1, n]`.
//!   That is [`nearest_rank_sorted`], the single shared implementation.
//! - **Approximate** — when only a [`crate::metrics::Log2Hist`] survives
//!   (merged shards, layer histograms), [`crate::metrics::Log2Hist::quantile`]
//!   locates the same nearest rank in its log2 bucket and linearly
//!   interpolates across the bucket's value span. Exact on
//!   bucket-boundary masses, approximate inside wide buckets.
//!
//! Both paths use the identical rank convention, so they agree wherever
//! the histogram has per-value resolution; the differential test in
//! `crates/obs/tests` pins that agreement (and the approximation's error
//! bound) on shared sample sets.

/// The exact `q`-quantile of an **ascending-sorted** sample slice by the
/// nearest-rank method: rank `ceil(q * n)` clamped to `[1, n]`, returning
/// the sample at that rank (1-indexed). Returns 0 on an empty slice.
///
/// This is the rank convention every exact percentile in the workspace
/// uses; keep callers delegating here rather than re-deriving it (a
/// second copy with a different convention is how p99s silently disagree
/// between tables).
pub fn nearest_rank_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// The (p50, p95, p99) triple over an ascending-sorted sample slice.
pub fn percentiles_sorted(sorted: &[u64]) -> (u64, u64, u64) {
    (
        nearest_rank_sorted(sorted, 0.50),
        nearest_rank_sorted(sorted, 0.95),
        nearest_rank_sorted(sorted, 0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(nearest_rank_sorted(&[], 0.5), 0);
        assert_eq!(percentiles_sorted(&[]), (0, 0, 0));
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(nearest_rank_sorted(&[42], q), 42, "q={q}");
        }
    }

    #[test]
    fn nearest_rank_picks_order_statistics() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(nearest_rank_sorted(&v, 0.0), 10, "q=0 clamps to rank 1");
        assert_eq!(nearest_rank_sorted(&v, 0.10), 10);
        assert_eq!(nearest_rank_sorted(&v, 0.11), 20, "ceil moves to rank 2");
        assert_eq!(nearest_rank_sorted(&v, 0.50), 50);
        assert_eq!(nearest_rank_sorted(&v, 0.95), 100);
        assert_eq!(nearest_rank_sorted(&v, 1.0), 100);
        assert_eq!(percentiles_sorted(&v), (50, 100, 100));
    }

    #[test]
    fn out_of_range_q_clamps() {
        let v = [1u64, 2, 3];
        assert_eq!(nearest_rank_sorted(&v, -1.0), 1);
        assert_eq!(nearest_rank_sorted(&v, 2.0), 3);
        assert_eq!(nearest_rank_sorted(&v, f64::NAN), 1, "NaN clamps low");
    }
}
