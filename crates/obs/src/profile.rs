//! Periodic heap-profile samples taken against the simulated clock.
//!
//! The machine snapshots one [`ProfileSample`] per core every N simulated
//! cycles (N = the sampling interval in the trace config). Samples capture
//! the three quantities the paper's capacity arguments turn on: live-heap
//! bytes (what the function actually holds), Memento pool occupancy (what
//! the device has committed), and HOT residency (how much of the arena
//! working set the on-chip table covers).

use std::fmt::Write as _;

/// One heap-profile snapshot on one core at a simulated instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileSample {
    /// Core the sample was taken on.
    pub core: usize,
    /// Simulated cycle count on that core's trace clock.
    pub cycles: u64,
    /// Bytes in objects allocated and not yet freed on this core's run.
    pub live_bytes: u64,
    /// Frames currently committed to the Memento device pool (machine-wide).
    pub pool_frames: u64,
    /// Valid HOT entries on this core (resident arena headers).
    pub hot_resident: u64,
}

/// Renders samples as a fixed-width table with a live-bytes trend bar.
pub fn render_samples(samples: &[ProfileSample]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>14} {:>12} {:>11} {:>12}",
        "core", "cycles", "live_bytes", "pool_frames", "hot_resident"
    );
    let max_live = samples
        .iter()
        .map(|s| s.live_bytes)
        .max()
        .unwrap_or(0)
        .max(1);
    for s in samples {
        let bar = "#".repeat(((s.live_bytes as f64 / max_live as f64) * 24.0).ceil() as usize);
        let _ = writeln!(
            out,
            "{:>4} {:>14} {:>12} {:>11} {:>12}  {bar}",
            s.core, s.cycles, s.live_bytes, s.pool_frames, s.hot_resident
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_sample_with_scaled_bars() {
        let samples = vec![
            ProfileSample {
                core: 0,
                cycles: 1000,
                live_bytes: 4096,
                pool_frames: 8,
                hot_resident: 3,
            },
            ProfileSample {
                core: 0,
                cycles: 2000,
                live_bytes: 8192,
                pool_frames: 8,
                hot_resident: 5,
            },
        ];
        let table = render_samples(&samples);
        assert_eq!(table.lines().count(), 3, "header + one row per sample");
        assert!(table.contains("8192"));
        let bars: Vec<usize> = table
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert_eq!(bars[1], 24, "max sample gets the full bar");
        assert_eq!(bars[0], 12, "half the bytes, half the bar");
    }

    #[test]
    fn render_handles_empty_and_zero() {
        assert_eq!(render_samples(&[]).lines().count(), 1);
        let z = [ProfileSample::default()];
        assert!(render_samples(&z).lines().count() == 2);
    }
}
