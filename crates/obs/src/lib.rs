//! Observability for the simulated machine: cycle-attributed tracing,
//! typed metrics, and heap-profile sampling.
//!
//! The paper's claims are *attribution* claims — Figs. 7–10 split server
//! time into user vs. memory-management cycles and break Memento's residual
//! cost into HOT misses, page-walk extensions, and bypass effects. This
//! crate gives the simulator a first-class way to answer "where did the
//! cycles go" without ad-hoc printlns:
//!
//! - [`trace`] — a [`Tracer`] recording scoped spans against the *simulated*
//!   clock (one track per core), exported as Chrome/Perfetto `trace_event`
//!   JSON via [`memento_simcore::json`] so a run opens in `ui.perfetto.dev`.
//! - [`metrics`] — a [`MetricsRegistry`] of monotonic counters and
//!   log2-bucketed histograms ([`Log2Hist`]), rendered as a per-run
//!   "metrics appendix".
//! - [`percentile`] — the one shared exact nearest-rank quantile over
//!   fully-retained sample sets; `Log2Hist::quantile` is the bucketed
//!   approximation of the same rank convention.
//! - [`profile`] — [`ProfileSample`] snapshots (live-heap bytes, pool
//!   occupancy, HOT residency) taken every N simulated cycles.
//! - [`selfprof`] — wall-clock spans over the *simulator's own* hot loops
//!   (event engine, calibration, shard merge), harness-gated and off by
//!   default; the bench harness reports them next to `BENCH_*.json`.
//!
//! # Invariants
//!
//! Like the sanitizer, the whole layer is **untimed and cycle-invisible**
//! with one sanctioned exception: nothing here reads a wall clock on the
//! simulation's behalf (every trace/metric timestamp is a simulated cycle
//! count, so the determinism lint holds) and nothing feeds back into the
//! simulation — a traced run produces byte-identical statistics to an
//! untraced one. Every span must be closed by run end; a dangling span is
//! a bug in the instrumentation and panics with the open-span stack.
//! [`selfprof`] does read the wall clock, but only when a harness enables
//! it, and its output is write-only from the simulator's point of view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod percentile;
pub mod profile;
pub mod selfprof;
pub mod trace;

pub use metrics::{Log2Hist, MetricsRegistry};
pub use percentile::nearest_rank_sorted;
pub use profile::ProfileSample;
pub use trace::Tracer;
