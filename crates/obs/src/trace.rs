//! Cycle-attributed span tracing with Chrome/Perfetto `trace_event` export.
//!
//! The tracer keeps one simulated clock per core. Every *charge span*
//! advances its core's clock by exactly the cycles charged to the run's
//! [`memento_simcore::cycles::CycleAccount`], so the trace reconciles with
//! the reported cycle totals by construction. *Phase spans* (`begin`/`end`)
//! overlay coarse scopes (e.g. `gc`) without advancing the clock; they nest
//! above the charge spans in the Perfetto flame view.
//!
//! Time unit: the exported `ts`/`dur` fields are **simulated cycles**, not
//! microseconds — Perfetto will label them "µs", so read 1 µs as 1 cycle
//! (at the simulated 3 GHz, 3000 displayed µs = 1 real µs).

use crate::metrics::Log2Hist;
use memento_simcore::cycles::Cycles;
use memento_simcore::json::Value;
use std::collections::BTreeMap;

/// A completed charge span (leaf attribution; clock-advancing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ChargeSpan {
    name: &'static str,
    core: usize,
    start: u64,
    dur: u64,
}

/// A completed phase span (scoped overlay; non-advancing).
#[derive(Clone, Debug, PartialEq, Eq)]
struct PhaseSpan {
    name: String,
    core: usize,
    start: u64,
    dur: u64,
}

/// A still-open phase span.
#[derive(Clone, Debug, PartialEq, Eq)]
struct OpenSpan {
    name: String,
    core: usize,
    start: u64,
}

/// A Perfetto counter-track sample (`ph: "C"`).
#[derive(Clone, Debug, PartialEq, Eq)]
struct CounterSample {
    name: &'static str,
    core: usize,
    at: u64,
    value: u64,
}

/// Records spans against the simulated clock and exports Perfetto JSON.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    clocks: Vec<u64>,
    charges: Vec<ChargeSpan>,
    /// Index of the last charge span per core (for coalescing).
    last_charge: Vec<Option<usize>>,
    phases: Vec<PhaseSpan>,
    open: Vec<OpenSpan>,
    counters: Vec<CounterSample>,
}

impl Tracer {
    /// A tracer with one track per core.
    pub fn new(cores: usize) -> Self {
        Tracer {
            clocks: vec![0; cores],
            last_charge: vec![None; cores],
            ..Self::default()
        }
    }

    /// The simulated now on `core` (total cycles charged on that track).
    pub fn now(&self, core: usize) -> u64 {
        self.clocks[core]
    }

    /// Records a charge span of `cycles` on `core`, advancing its clock.
    /// Zero-cycle charges are dropped; adjacent same-name spans coalesce
    /// into one (attribution totals are unchanged either way).
    pub fn span(&mut self, core: usize, name: &'static str, cycles: Cycles) {
        let dur = cycles.raw();
        if dur == 0 {
            return;
        }
        let start = self.clocks[core];
        self.clocks[core] = start + dur;
        if let Some(i) = self.last_charge[core] {
            let prev = &mut self.charges[i];
            if prev.name == name && prev.start + prev.dur == start {
                prev.dur += dur;
                return;
            }
        }
        self.last_charge[core] = Some(self.charges.len());
        self.charges.push(ChargeSpan {
            name,
            core,
            start,
            dur,
        });
    }

    /// Opens a scoped phase span on `core` at the current simulated time.
    pub fn begin(&mut self, core: usize, name: impl Into<String>) {
        self.open.push(OpenSpan {
            name: name.into(),
            core,
            start: self.clocks[core],
        });
    }

    /// Closes the innermost open phase span on `core`.
    ///
    /// # Panics
    ///
    /// Panics when no phase span is open on `core` (unbalanced `end`).
    pub fn end(&mut self, core: usize) {
        let idx = self
            .open
            .iter()
            .rposition(|s| s.core == core)
            // lint:allow(panic-in-lib): unmatched end() is an instrumentation bug worth a loud stop
            .unwrap_or_else(|| panic!("tracer: end() on core {core} with no open span"));
        let span = self.open.remove(idx);
        self.phases.push(PhaseSpan {
            dur: self.clocks[core] - span.start,
            name: span.name,
            core: span.core,
            start: span.start,
        });
    }

    /// Records a counter-track sample at the current simulated time.
    pub fn sample(&mut self, core: usize, name: &'static str, value: u64) {
        self.counters.push(CounterSample {
            name,
            core,
            at: self.clocks[core],
            value,
        });
    }

    /// Names of the currently open phase spans, outermost first.
    pub fn open_spans(&self) -> Vec<String> {
        self.open.iter().map(|s| s.name.clone()).collect()
    }

    /// Asserts that every phase span was closed.
    ///
    /// # Panics
    ///
    /// Panics with the open-span stack in the message when a span was left
    /// open at run end — a dangling span means some phase's cycles would be
    /// silently unattributed.
    pub fn assert_closed(&self) {
        if !self.open.is_empty() {
            // lint:allow(panic-in-lib): documented contract check; a dangling span hides cycles
            panic!(
                "tracer: span(s) left open at run end: [{}]",
                self.open_spans().join(" > ")
            );
        }
    }

    /// Total cycles recorded in charge spans per label — reconciles exactly
    /// with the cycle account the instrumented machine maintains.
    pub fn charge_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for c in &self.charges {
            *totals.entry(c.name).or_insert(0) += c.dur;
        }
        totals
    }

    /// Total cycles recorded across all charge spans and cores.
    pub fn total_charged(&self) -> u64 {
        self.charges.iter().map(|c| c.dur).sum()
    }

    /// Distribution of charge-span durations per label (for the appendix).
    pub fn span_hist(&self) -> BTreeMap<&'static str, Log2Hist> {
        let mut hists: BTreeMap<&'static str, Log2Hist> = BTreeMap::new();
        for c in &self.charges {
            hists.entry(c.name).or_default().record(c.dur);
        }
        hists
    }

    /// A flame-style breakdown table: per-label cycle totals with share
    /// bars, sorted by descending total.
    pub fn flame_table(&self) -> String {
        use std::fmt::Write as _;
        let totals = self.charge_totals();
        let all: u64 = totals.values().sum::<u64>().max(1);
        let mut rows: Vec<(&str, u64)> = totals.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>14} {:>7}", "phase", "cycles", "share");
        for (name, cycles) in rows {
            let share = cycles as f64 / all as f64;
            let bar = "#".repeat((share * 40.0).ceil() as usize);
            let _ = writeln!(
                out,
                "{name:<12} {cycles:>14} {:>6.1}%  {bar}",
                share * 100.0
            );
        }
        out
    }

    /// Exports the trace as a Chrome/Perfetto `trace_event` JSON document
    /// (object form: `{"traceEvents": [...]}`), loadable in
    /// `ui.perfetto.dev`. One thread track per core; `ts`/`dur` are
    /// simulated cycles.
    pub fn to_json(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        let meta = |name: &str, tid: usize, label: String| {
            let mut e = Value::object();
            let mut args = Value::object();
            args.set("name", label.as_str());
            e.set("ph", "M")
                .set("name", name)
                .set("pid", 0.0)
                .set("tid", tid as f64)
                .set("args", args);
            e
        };
        events.push(meta("process_name", 0, "memento-sim".to_owned()));
        for core in 0..self.clocks.len() {
            events.push(meta("thread_name", core, format!("core {core}")));
        }
        for p in &self.phases {
            let mut e = Value::object();
            e.set("ph", "X")
                .set("cat", "phase")
                .set("name", p.name.as_str())
                .set("pid", 0.0)
                .set("tid", p.core as f64)
                .set("ts", p.start as f64)
                .set("dur", p.dur as f64);
            events.push(e);
        }
        for c in &self.charges {
            let mut e = Value::object();
            e.set("ph", "X")
                .set("cat", "charge")
                .set("name", c.name)
                .set("pid", 0.0)
                .set("tid", c.core as f64)
                .set("ts", c.start as f64)
                .set("dur", c.dur as f64);
            events.push(e);
        }
        for s in &self.counters {
            let mut args = Value::object();
            args.set("value", s.value as f64);
            let mut e = Value::object();
            e.set("ph", "C")
                .set("name", s.name)
                .set("pid", 0.0)
                .set("tid", s.core as f64)
                .set("ts", s.at as f64)
                .set("args", args);
            events.push(e);
        }
        let mut doc = Value::object();
        doc.set("traceEvents", Value::Array(events))
            .set("displayTimeUnit", "ns");
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_advance_the_simulated_clock() {
        let mut t = Tracer::new(2);
        t.span(0, "user", Cycles::new(100));
        t.span(1, "mm", Cycles::new(30));
        t.span(0, "kernel", Cycles::new(50));
        assert_eq!(t.now(0), 150);
        assert_eq!(t.now(1), 30);
        assert_eq!(t.total_charged(), 180);
        let totals = t.charge_totals();
        assert_eq!(totals.get("user"), Some(&100));
        assert_eq!(totals.get("kernel"), Some(&50));
        assert_eq!(totals.get("mm"), Some(&30));
    }

    #[test]
    fn adjacent_same_label_spans_coalesce() {
        let mut t = Tracer::new(1);
        for _ in 0..1000 {
            t.span(0, "user", Cycles::new(3));
        }
        assert_eq!(t.charges.len(), 1, "contiguous same-label spans merge");
        assert_eq!(t.total_charged(), 3000);
        t.span(0, "mm", Cycles::new(1));
        t.span(0, "user", Cycles::new(2));
        assert_eq!(t.charges.len(), 3, "label change breaks the merge run");
        assert_eq!(t.total_charged(), 3003);
    }

    #[test]
    fn zero_cycle_charges_are_dropped() {
        let mut t = Tracer::new(1);
        t.span(0, "walk", Cycles::ZERO);
        assert_eq!(t.now(0), 0);
        assert!(t.charges.is_empty());
    }

    #[test]
    fn phase_spans_nest_and_balance() {
        let mut t = Tracer::new(1);
        t.begin(0, "gc");
        t.span(0, "mm", Cycles::new(40));
        t.begin(0, "sweep");
        t.span(0, "hot_miss", Cycles::new(10));
        t.end(0);
        t.end(0);
        t.assert_closed();
        assert_eq!(t.phases.len(), 2);
        // Inner closed first, covering only its own window.
        assert_eq!(t.phases[0].name, "sweep");
        assert_eq!(t.phases[0].start, 40);
        assert_eq!(t.phases[0].dur, 10);
        assert_eq!(t.phases[1].name, "gc");
        assert_eq!(t.phases[1].dur, 50);
    }

    #[test]
    #[should_panic(expected = "span(s) left open at run end: [gc > sweep]")]
    fn open_span_at_end_panics_with_stack() {
        let mut t = Tracer::new(1);
        t.begin(0, "gc");
        t.begin(0, "sweep");
        t.assert_closed();
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unbalanced_end_panics() {
        let mut t = Tracer::new(1);
        t.end(0);
    }

    #[test]
    fn json_is_valid_and_carries_tracks() {
        let mut t = Tracer::new(2);
        t.span(0, "user", Cycles::new(5));
        t.begin(1, "gc");
        t.span(1, "mm", Cycles::new(7));
        t.end(1);
        t.sample(0, "live_bytes", 4096);
        let doc = t.to_json();
        let text = doc.to_pretty();
        let parsed = memento_simcore::json::parse(&text).expect("trace JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 1 process meta + 2 thread metas + 1 phase + 2 charges... actually
        // 1 charge per core here, 1 counter.
        assert!(events.len() >= 6);
        let phases: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("phase"))
            .collect();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("tid").and_then(|v| v.as_u64()), Some(1));
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 1);
    }

    #[test]
    fn flame_table_sorts_by_share() {
        let mut t = Tracer::new(1);
        t.span(0, "user", Cycles::new(900));
        t.span(0, "mm", Cycles::new(100));
        let table = t.flame_table();
        let user_at = table.find("user").expect("user row");
        let mm_at = table.find("mm").expect("mm row");
        assert!(user_at < mm_at, "larger share first:\n{table}");
        assert!(table.contains("90.0%"));
    }
}
