//! Differential test: the exact nearest-rank helper and the log2-bucketed
//! histogram estimate the *same* rank convention, so on any shared sample
//! set the histogram's answer must land in the same log2 bucket as the
//! exact order statistic — and must be exactly equal wherever the
//! histogram has per-value resolution (values 0 and 1, bucket edges).
//!
//! This is the regression net for the bug this suite fixed: the cluster
//! simulator and the histogram used to carry two independently-derived
//! rank conventions, so their p99s could silently disagree by a whole
//! rank even on boundary-mass distributions.

use memento_obs::metrics::Log2Hist;
use memento_obs::percentile::{nearest_rank_sorted, percentiles_sorted};

const QS: [f64; 7] = [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0];

/// Bucket index of `v` under the histogram's log2 rule.
fn bucket_of(v: u64) -> u32 {
    u64::BITS - v.leading_zeros()
}

/// Asserts the two estimators agree bucket-for-bucket (and exactly where
/// the bucket is a single value) on `samples`.
fn assert_agreement(mut samples: Vec<u64>) {
    let mut hist = Log2Hist::new();
    for &s in &samples {
        hist.record(s);
    }
    samples.sort_unstable();
    for q in QS {
        let exact = nearest_rank_sorted(&samples, q);
        let approx = hist.quantile(q);
        assert_eq!(
            bucket_of(exact),
            bucket_of(approx),
            "q={q}: exact {exact} and histogram {approx} disagree on the log2 bucket"
        );
        if exact <= 1 {
            assert_eq!(approx, exact, "q={q}: single-value buckets must be exact");
        }
    }
}

#[test]
fn boundary_mass_distributions_agree_exactly() {
    // Every sample sits alone at a bucket's upper edge, so interpolation
    // has no slack: the histogram must reproduce the order statistic.
    let samples: Vec<u64> = vec![0, 1, 3, 7, 15, 31, 63, 127, 255, 511];
    let mut hist = Log2Hist::new();
    for &s in &samples {
        hist.record(s);
    }
    for q in QS {
        assert_eq!(
            hist.quantile(q),
            nearest_rank_sorted(&samples, q),
            "q={q}: boundary-mass distributions leave no interpolation slack"
        );
    }
    assert_eq!(percentiles_sorted(&samples), hist.percentiles());
}

#[test]
fn seeded_latency_shapes_agree_per_bucket() {
    // Deterministic pseudo-random sample sets spanning the shapes the
    // cluster reports: short uniform-ish, heavy-tailed, bimodal.
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let uniform: Vec<u64> = (0..5_000).map(|_| next() % 10_000).collect();
    let heavy: Vec<u64> = (0..5_000)
        .map(|_| {
            let v = next();
            (v % 1_000) << (v % 12)
        })
        .collect();
    let bimodal: Vec<u64> = (0..5_000)
        .map(|i| if i % 100 == 0 { 1 << 20 } else { 100 + i % 28 })
        .collect();
    for samples in [uniform, heavy, bimodal] {
        assert_agreement(samples);
    }
}

#[test]
fn cluster_rank_convention_matches_shared_helper() {
    // The exact convention the cluster's latency table relies on: rank
    // ceil(q*n) clamped to [1, n]. A off-by-one in either direction
    // changes rank 990 vs 991 on a 1000-sample p99.
    let samples: Vec<u64> = (1..=1000).collect();
    assert_eq!(nearest_rank_sorted(&samples, 0.99), 990);
    assert_eq!(nearest_rank_sorted(&samples, 0.9901), 991);
    assert_eq!(nearest_rank_sorted(&samples, 0.0), 1);
    assert_eq!(nearest_rank_sorted(&samples, 1.0), 1000);
}
