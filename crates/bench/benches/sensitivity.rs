//! Regenerates the §6.6 sensitivity studies (`MAP_POPULATE`,
//! multi-process HOT flushing, fragmentation, cold starts, allocator
//! tuning) and benchmarks them.

use criterion::{criterion_group, criterion_main, Criterion};
use memento_experiments::{sensitivity, EvalContext};
use std::time::Duration;

fn bench_sensitivity(c: &mut Criterion) {
    let mut ctx = EvalContext::new();
    let specs = ctx.workloads();

    let pop = sensitivity::populate_for(&mut ctx, &specs);
    eprintln!("\n=== sens-populate (regenerated) ===\n{pop}\n");
    let frag = sensitivity::fragmentation_for(&mut ctx, &specs);
    eprintln!("=== sens-fragmentation (regenerated) ===\n{frag}\n");
    let multi = sensitivity::multiprocess(&ctx);
    eprintln!("=== sens-multiproc (regenerated) ===\n{multi}\n");
    // Cold-start and tuning are heavier (fresh machines per row): run on
    // representative subsets for the printed output.
    let cold_specs = vec![
        ctx.workload("html"),
        ctx.workload("US"),
        ctx.workload("bfs-go"),
    ];
    let cold = sensitivity::coldstart_for(&mut ctx, &cold_specs);
    eprintln!("=== sens-coldstart (regenerated) ===\n{cold}\n");
    let tune_specs = vec![ctx.workload("html"), ctx.workload("mk")];
    let tuning = sensitivity::tuning_for(&mut ctx, &tune_specs);
    eprintln!("=== sens-tuning (regenerated) ===\n{tuning}\n");

    let mut group = c.benchmark_group("sensitivity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("sens_populate", |b| {
        b.iter(|| sensitivity::populate_for(&mut ctx, &specs))
    });
    group.bench_function("sens_fragmentation", |b| {
        b.iter(|| sensitivity::fragmentation_for(&mut ctx, &specs))
    });
    let quick = EvalContext::quick();
    group.bench_function("sens_multiproc", |b| {
        b.iter(|| sensitivity::multiprocess_for(&quick, &["aes", "jl"], 2000))
    });
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
