//! Regenerates the main evaluation figures (Fig. 8 speedup, Fig. 9 gain
//! breakdown, Fig. 10 bandwidth, Fig. 11 memory usage, Fig. 12 HOT hit
//! rates, Fig. 13 arena-list frequency, Fig. 14 pricing) and benchmarks
//! both the simulations and the figure assembly.
//!
//! The first call populates the memoized run cache (that is the actual
//! full-system simulation sweep: 23 workloads × 3 configurations); the
//! printed output contains the reproduced series.

use criterion::{criterion_group, criterion_main, Criterion};
use memento_experiments::{
    arena_list, bandwidth, breakdown, hot, memusage, pricing, speedup, EvalContext,
};
use memento_system::{Machine, SystemConfig};
use memento_workloads::suite;
use std::time::Duration;

fn bench_evaluation(c: &mut Criterion) {
    let mut ctx = EvalContext::new();
    let specs = ctx.workloads();

    eprintln!("\npopulating run cache (23 workloads x baseline/memento/no-bypass)...");
    let fig8 = speedup::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig8 (regenerated) ===\n{fig8}");
    let fig9 = breakdown::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig9 (regenerated) ===\n{fig9}");
    let fig10 = bandwidth::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig10 (regenerated) ===\n{fig10}");
    let fig11 = memusage::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig11 (regenerated) ===\n{fig11}");
    let fig12 = hot::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig12 (regenerated) ===\n{fig12}");
    let fig13 = arena_list::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig13 (regenerated) ===\n{fig13}");
    let fig14 = pricing::run_for(&mut ctx, &specs);
    eprintln!("\n=== fig14 (regenerated) ===\n{fig14}\n");

    let mut group = c.benchmark_group("evaluation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    // The real workhorse: one end-to-end function simulation per design.
    let aes = ctx.workload("aes");
    group.bench_function("fig8_single_run_baseline", |b| {
        b.iter(|| Machine::new(SystemConfig::baseline()).run(&aes))
    });
    group.bench_function("fig8_single_run_memento", |b| {
        b.iter(|| Machine::new(SystemConfig::memento()).run(&aes))
    });

    // Figure assembly over the memoized sweep.
    group.bench_function("fig8_speedup", |b| {
        b.iter(|| speedup::run_for(&mut ctx, &specs))
    });
    group.bench_function("fig9_breakdown", |b| {
        b.iter(|| breakdown::run_for(&mut ctx, &specs))
    });
    group.bench_function("fig10_bandwidth", |b| {
        b.iter(|| bandwidth::run_for(&mut ctx, &specs))
    });
    group.bench_function("fig11_memusage", |b| {
        b.iter(|| memusage::run_for(&mut ctx, &specs))
    });
    group.bench_function("fig12_hot_hit", |b| {
        b.iter(|| hot::run_for(&mut ctx, &specs))
    });
    group.bench_function("fig13_arena_list", |b| {
        b.iter(|| arena_list::run_for(&mut ctx, &specs))
    });
    group.bench_function("fig14_pricing", |b| {
        b.iter(|| pricing::run_for(&mut ctx, &specs))
    });
    group.finish();
}

criterion_group!(benches, bench_evaluation);
criterion_main!(benches);

#[allow(dead_code)]
fn keep_suite_linked() {
    let _ = suite::all_workloads();
}
