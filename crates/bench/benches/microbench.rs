//! Microbenchmarks of the simulator's building blocks: raw `obj-alloc` /
//! `obj-free` device operations, cache-hierarchy accesses, page walks, and
//! trace generation. These measure *simulator* throughput (host-side), the
//! practical metric for anyone extending the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use memento_cache::{AccessKind, MemSystem, MemSystemConfig};
use memento_core::device::{MementoConfig, MementoDevice};
use memento_core::page_alloc::PoolBackend;
use memento_core::region::MementoRegion;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_simcore::PhysAddr;
use memento_vm::tlb::Tlb;
use memento_workloads::{generator, suite};
use std::time::Duration;

struct BumpOs(u64);

impl PoolBackend for BumpOs {
    fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
        let start = self.0;
        self.0 += n;
        (start..start + n).map(Frame::from_number).collect()
    }
    fn accept_frames(&mut self, _frames: &[Frame]) {}
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("microbench");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    // Device obj-alloc/obj-free at steady state (HOT hits).
    {
        let mut mem = PhysMem::new(1 << 30);
        let scratch = mem.alloc_frame().unwrap().base_addr();
        let mut dev = MementoDevice::new(MementoConfig::paper_default(), 1, scratch);
        let mut os = BumpOs(1024);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlbs = vec![Tlb::default()];
        let mut proc = dev
            .attach_process(&mut mem, &mut os, MementoRegion::standard())
            .expect("attach with live backend");
        group.bench_function("obj_alloc_obj_free_hit_pair", |b| {
            b.iter(|| {
                let a = dev
                    .obj_alloc(&mut mem, &mut sys, &mut os, 0, &mut proc, 48)
                    .expect("alloc");
                dev.obj_free(&mut mem, &mut sys, &mut os, &mut tlbs, 0, &mut proc, a.addr)
                    .expect("free");
            })
        });
    }

    // Cache hierarchy warm access.
    {
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let addr = PhysAddr::new(0x100000);
        sys.access(0, AccessKind::Read, addr);
        group.bench_function("mem_system_l1_hit", |b| {
            b.iter(|| sys.access(0, AccessKind::Read, addr))
        });
    }

    // Trace generation for the heaviest workload.
    {
        let spec = suite::by_name("ir").expect("ir");
        group.bench_function("trace_generation_ir", |b| {
            b.iter(|| generator::generate(&spec))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
