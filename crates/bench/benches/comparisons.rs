//! Regenerates the §6.1 iso-storage and §6.7 idealized-Mallacc
//! comparisons and benchmarks them.

use criterion::{criterion_group, criterion_main, Criterion};
use memento_experiments::{comparisons, EvalContext};
use std::time::Duration;

fn bench_comparisons(c: &mut Criterion) {
    let mut ctx = EvalContext::new();

    let iso = comparisons::iso_storage(&mut ctx);
    eprintln!("\n=== iso-storage (regenerated) ===\n{iso}\n");
    let mallacc = comparisons::mallacc(&mut ctx);
    eprintln!("=== mallacc (regenerated) ===\n{mallacc}\n");

    let mut group = c.benchmark_group("comparisons");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("iso_storage", |b| {
        b.iter(|| comparisons::iso_storage(&mut ctx))
    });
    group.bench_function("mallacc_compare", |b| {
        b.iter(|| comparisons::mallacc(&mut ctx))
    });
    group.finish();
}

criterion_group!(benches, bench_comparisons);
criterion_main!(benches);
