//! Regenerates Figs. 2–3 and Tables 1–3 (paper §2.2 + §5) and benchmarks
//! the characterization pipeline.
//!
//! The reproduced rows are printed once before timing starts, so
//! `cargo bench` output contains the paper-shaped series.

use criterion::{criterion_group, criterion_main, Criterion};
use memento_experiments::{characterization, config_table, EvalContext};
use memento_workloads::suite;
use std::time::Duration;

fn bench_characterization(c: &mut Criterion) {
    let specs = suite::all_workloads();

    // Print the regenerated artifacts once.
    let result = characterization::run_for(&specs);
    eprintln!("\n=== fig2 / fig3 / table1 (regenerated) ===\n{result}\n");
    eprintln!("=== table3 (regenerated) ===\n{}\n", config_table::run());

    let mut ctx = EvalContext::new();
    let t2 = characterization::mm_breakdown_for(&mut ctx, &specs);
    eprintln!("=== table2 (regenerated) ===\n{t2}\n");

    let mut group = c.benchmark_group("characterization");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    group.bench_function("fig2_fig3_table1_all_workloads", |b| {
        b.iter(|| characterization::run_for(&specs))
    });
    group.bench_function("table2_user_kernel_memoized", |b| {
        b.iter(|| characterization::mm_breakdown_for(&mut ctx, &specs))
    });
    group.bench_function("table3_config", |b| b.iter(config_table::run));
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
