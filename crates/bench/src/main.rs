//! `memento-bench` — the pinned performance harness.
//!
//! Runs a fixed workload set and writes a JSON report:
//!
//! ```text
//! cargo run --release -p memento-bench -- --out BENCH_2026-08-08.json
//! ```
//!
//! Workloads (all fixed-seed, so run-to-run variance is wall-clock
//! noise, never simulated-work drift):
//!
//! - `cluster_smoke` — the default cluster evaluation at CI scale
//!   (scale 8, 3 000 invocations per run, six fleet runs).
//! - `warm_steady_state` — the Fig. 11 steady-state memory experiment
//!   over four representative workloads (full machine simulation).
//! - `cluster_full_eval` — the headline: the full-evaluation-scale
//!   cluster sweep (scale 64, 500 000 invocations per run, three load
//!   levels x two fleets). `wall_ms` covers only the six simulation
//!   calls; calibration and arrival generation are reported separately
//!   as `setup_ms` so the invocations/sec figure measures the event
//!   engine itself.
//! - `region_scale` — the region engine with every dynamic feature on
//!   (flash-crowd trace, autoscaler, snapshot restores, squeeze
//!   reclamation, size-aware keep-alive) at 200 000 invocations per
//!   fleet, baseline and Memento.
//! - `region_pm` — the persistent-memory keep-alive path: the Azure
//!   day-curve trace over an autoscaled Memento fleet parking idle
//!   containers to PM (200 000 invocations).
//!
//! Each workload runs `--reps` times (default 3) and reports the
//! fastest repetition: the simulated work is deterministic, so the
//! minimum is the measurement least polluted by scheduler noise, and
//! it is what keeps a 15 % gate meaningful on shared runners.
//!
//! With `--baseline FILE` the run is additionally gated: any workload
//! whose wall time regresses more than `--threshold` percent (default
//! 15) fails the process with exit code 1. A missing baseline file is
//! a skip-with-notice, not a failure, so the gate can be enabled in CI
//! before the first baseline is blessed.

use memento_bench::gate;
use memento_cluster::{
    calibrate, generate_arrivals, generate_trace, simulate, ArrivalConfig, Autoscaler,
    AutoscalerConfig, ClusterConfig, ColdStart, DiurnalTrace, EmpiricalTrace, Engine, FlashCrowd,
    KeepAlive, Placement, ProfileTable, Reclamation, WorkloadMix,
};
use memento_experiments::cluster::{run_for_jobs, ClusterParams};
use memento_experiments::context::STEADY_INVOCATIONS;
use memento_experiments::{memusage, multicore, EvalContext};
use memento_simcore::json::{self, Value};
use memento_system::SystemConfig;
use memento_workloads::spec::Category;
use std::process::ExitCode;
use std::time::Instant;

/// One measured workload, ready to serialize.
struct Measurement {
    name: &'static str,
    wall_ms: f64,
    /// Setup cost excluded from `wall_ms` (0 when setup is part of the
    /// measured work).
    setup_ms: f64,
    invocations: u64,
    spans: Vec<(String, u64, f64)>,
}

impl Measurement {
    fn to_json(&self) -> Value {
        let mut w = Value::object();
        w.set("name", self.name);
        w.set("wall_ms", round1(self.wall_ms));
        w.set("setup_ms", round1(self.setup_ms));
        w.set("invocations", self.invocations as f64);
        let secs = self.wall_ms / 1e3;
        let inv_per_sec = if secs > 0.0 {
            self.invocations as f64 / secs
        } else {
            0.0
        };
        w.set("inv_per_sec", inv_per_sec.round());
        let mut spans = Value::object();
        for (name, calls, total_ms) in &self.spans {
            let mut s = Value::object();
            s.set("calls", *calls as f64);
            s.set("total_ms", round1(*total_ms));
            spans.set(name, s);
        }
        w.set("spans", spans);
        w
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Drains the self-profiler into `(span, calls, total_ms)` rows.
fn drain_spans() -> Vec<(String, u64, f64)> {
    memento_obs::selfprof::take_report()
        .into_iter()
        .map(|(name, s)| (name, s.calls, s.total_ns as f64 / 1e6))
        .collect()
}

/// The default cluster evaluation at CI scale: catches regressions on
/// the exact path `examples/cluster.rs` and the CI smoke job exercise.
fn bench_cluster_smoke() -> Measurement {
    memento_obs::selfprof::enable();
    let t = Instant::now();
    let report = run_for_jobs(
        &["aes", "html", "Redis", "US"],
        8,
        1,
        ClusterParams::default(),
    )
    .expect("pinned workloads exist");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    memento_obs::selfprof::disable();
    let invocations = report
        .rows
        .iter()
        .map(|r| r.baseline.completed + r.memento.completed)
        .sum();
    Measurement {
        name: "cluster_smoke",
        wall_ms,
        setup_ms: 0.0,
        invocations,
        spans: drain_spans(),
    }
}

/// The Fig. 11 warm steady-state experiment over four representative
/// workloads: full per-machine simulation, so this guards the
/// single-node pipeline rather than the fleet engine. `invocations`
/// counts the invocations actually simulated: per (workload, config),
/// functions run cold once while the long-running categories serve a
/// [`STEADY_INVOCATIONS`]-deep warm window.
fn bench_warm_steady_state() -> Measurement {
    let mut ctx = EvalContext::scaled(8);
    let specs: Vec<_> = ["Redis", "Silo", "SQLite3", "html"]
        .iter()
        .map(|n| ctx.try_workload(n).expect("pinned workloads exist"))
        .collect();
    let invocations: u64 = 2 * specs
        .iter()
        .map(|s| {
            if s.category == Category::Function {
                1
            } else {
                STEADY_INVOCATIONS as u64
            }
        })
        .sum::<u64>();
    memento_obs::selfprof::enable();
    let t = Instant::now();
    let result = memusage::run_for(&mut ctx, &specs);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    memento_obs::selfprof::disable();
    assert!(result.skipped.is_empty(), "pinned workloads must measure");
    Measurement {
        name: "warm_steady_state",
        wall_ms,
        setup_ms: 0.0,
        invocations,
        spans: drain_spans(),
    }
}

/// The headline run: the cluster experiment at full evaluation scale.
/// Mirrors `experiments::cluster::run_specs` shapes (scale 64, eight
/// workloads, LeastLoaded, fixed keep-alive at 20x mean warm service)
/// but times only the six `simulate` calls.
fn bench_cluster_full_eval() -> Measurement {
    const NAMES: [&str; 8] = ["html", "US", "CM", "MI", "Redis", "Silo", "SQLite3", "up"];
    const LOADS: [f64; 3] = [0.5, 0.9, 1.15];
    const INVOCATIONS: u64 = 500_000;

    let setup = Instant::now();
    let ctx = EvalContext::scaled(64);
    let specs: Vec<_> = NAMES
        .iter()
        .map(|n| ctx.try_workload(n).expect("pinned workloads exist"))
        .collect();
    let mix = WorkloadMix::uniform(specs.clone()).expect("non-empty mix");
    let base: Vec<_> = specs
        .iter()
        .map(|s| calibrate(&SystemConfig::baseline(), s, 3))
        .collect();
    let mem: Vec<_> = specs
        .iter()
        .map(|s| calibrate(&SystemConfig::memento(), s, 3))
        .collect();
    let mean_service: f64 =
        base.iter().map(|p| p.warm_cycles as f64).sum::<f64>() / base.len() as f64;
    let keep_alive = KeepAlive::Fixed((mean_service * 20.0) as u64);
    let base_table = ProfileTable::from_profiles(base);
    let mem_table = ProfileTable::from_profiles(mem);
    let cfg = ClusterConfig {
        nodes: 8,
        queue_capacity: 32,
        cores_per_node: 1,
        placement: Placement::LeastLoaded,
        keep_alive,
        cold_start: ColdStart::Boot,
        reclamation: Reclamation::None,
        autoscaler: Autoscaler::None,
        record_timeline: false,
    };
    let arrival_sets: Vec<_> = LOADS
        .iter()
        .map(|util| {
            let arrival = ArrivalConfig {
                seed: 7,
                count: INVOCATIONS,
                mean_interarrival_cycles: mean_service / (cfg.nodes as f64 * util),
            };
            generate_arrivals(&arrival, &mix).expect("positive arrival rate")
        })
        .collect();
    let setup_ms = setup.elapsed().as_secs_f64() * 1e3;

    memento_obs::selfprof::enable();
    let mut invocations = 0u64;
    let t = Instant::now();
    for arrivals in &arrival_sets {
        for table in [&base_table, &mem_table] {
            let r = simulate(Engine::Profiled(table.clone()), &cfg, &mix, arrivals)
                .expect("validated config");
            invocations += r.completed;
        }
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    memento_obs::selfprof::disable();
    Measurement {
        name: "cluster_full_eval",
        wall_ms,
        setup_ms,
        invocations,
        spans: drain_spans(),
    }
}

/// The region engine under its full feature set: a flash-crowd-on-
/// diurnal trace drives an autoscaled fleet with snapshot restores,
/// pressure-driven squeezes, and size-aware keep-alive, for baseline
/// and Memento profile tables. This is the event-engine path none of
/// the fixed-fleet benches touch (tick/boot event sources, drain
/// bookkeeping, squeeze passes), measured the same way as
/// `cluster_full_eval`: `wall_ms` covers only the two `simulate`
/// calls.
fn bench_region_scale() -> Measurement {
    const NAMES: [&str; 4] = ["html", "US", "Redis", "SQLite3"];
    const INVOCATIONS: u64 = 200_000;

    let setup = Instant::now();
    let ctx = EvalContext::scaled(64);
    let specs: Vec<_> = NAMES
        .iter()
        .map(|n| ctx.try_workload(n).expect("pinned workloads exist"))
        .collect();
    let mix = WorkloadMix::uniform(specs.clone()).expect("non-empty mix");
    let base: Vec<_> = specs
        .iter()
        .map(|s| calibrate(&SystemConfig::baseline(), s, 3))
        .collect();
    let mem: Vec<_> = specs
        .iter()
        .map(|s| calibrate(&SystemConfig::memento(), s, 3))
        .collect();
    let mean_service: f64 =
        base.iter().map(|p| p.warm_cycles as f64).sum::<f64>() / base.len() as f64;
    let idle_sum: u64 = base.iter().map(|p| p.idle_frames).sum();
    let max_cold = base.iter().map(|p| p.cold_cycles).max().unwrap_or(1);
    let base_table = ProfileTable::from_profiles(base);
    let mem_table = ProfileTable::from_profiles(mem);
    let cfg = ClusterConfig {
        nodes: 4,
        queue_capacity: 32,
        cores_per_node: 1,
        placement: Placement::LeastLoaded,
        keep_alive: KeepAlive::SizeAware {
            budget_frame_cycles: (mean_service * 20.0) as u64 * (idle_sum / NAMES.len() as u64),
            min_cycles: (mean_service * 2.0) as u64,
            max_cycles: (mean_service * 160.0) as u64,
        },
        cold_start: ColdStart::Snapshot,
        reclamation: Reclamation::Squeeze {
            watermark_frames: 8 * idle_sum,
        },
        autoscaler: Autoscaler::TargetUtilization(AutoscalerConfig {
            interval_cycles: (mean_service * 4.0) as u64,
            target_load_pct: 70,
            min_nodes: 2,
            max_nodes: 16,
            spinup_cycles: 8 * max_cold,
        }),
        record_timeline: false,
    };
    let trace = FlashCrowd {
        base: DiurnalTrace {
            day_cycles: (mean_service * 4_000.0) as u64,
            trough_ppm: 250_000,
            peak_ppm: 1_000_000,
        },
        period_cycles: (mean_service * 400.0) as u64,
        burst_cycles: (mean_service * 40.0) as u64,
        multiplier: 4,
    };
    let arrival = ArrivalConfig {
        seed: 7,
        count: INVOCATIONS,
        mean_interarrival_cycles: mean_service / (cfg.nodes as f64 * 0.9),
    };
    let arrivals = generate_trace(&arrival, &mix, &trace).expect("valid trace");
    let setup_ms = setup.elapsed().as_secs_f64() * 1e3;

    memento_obs::selfprof::enable();
    let mut invocations = 0u64;
    let t = Instant::now();
    for table in [&base_table, &mem_table] {
        let r = simulate(Engine::Profiled(table.clone()), &cfg, &mix, &arrivals)
            .expect("validated config");
        assert!(r.is_clean(), "region bench audits must pass");
        invocations += r.completed;
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    memento_obs::selfprof::disable();
    Measurement {
        name: "region_scale",
        wall_ms,
        setup_ms,
        invocations,
        spans: drain_spans(),
    }
}

/// The persistent-memory keep-alive path at region scale: the checked-in
/// Azure-style day curve (with flash crowds layered on top) drives an
/// autoscaled Memento fleet whose idle containers park to PM instead of
/// holding DRAM. Exercises the park/restore event path, the PM retention
/// scan, and the empirical-trace interpolation that `region_scale` never
/// touches. `wall_ms` covers only the `simulate` call.
fn bench_region_pm() -> Measurement {
    const NAMES: [&str; 4] = ["html", "US", "Redis", "SQLite3"];
    const INVOCATIONS: u64 = 200_000;

    let setup = Instant::now();
    let ctx = EvalContext::scaled(64);
    let specs: Vec<_> = NAMES
        .iter()
        .map(|n| ctx.try_workload(n).expect("pinned workloads exist"))
        .collect();
    let mix = WorkloadMix::uniform(specs.clone()).expect("non-empty mix");
    let mem: Vec<_> = specs
        .iter()
        .map(|s| calibrate(&SystemConfig::memento(), s, 3))
        .collect();
    let mean_service: f64 =
        mem.iter().map(|p| p.warm_cycles as f64).sum::<f64>() / mem.len() as f64;
    let max_cold = mem.iter().map(|p| p.cold_cycles).max().unwrap_or(1);
    let mem_table = ProfileTable::from_profiles(mem);
    let cfg = ClusterConfig {
        nodes: 4,
        queue_capacity: 32,
        cores_per_node: 1,
        placement: Placement::LeastLoaded,
        keep_alive: KeepAlive::ParkToPM {
            ttl_cycles: (mean_service * 160.0) as u64,
        },
        cold_start: ColdStart::Snapshot,
        reclamation: Reclamation::None,
        autoscaler: Autoscaler::TargetUtilization(AutoscalerConfig {
            interval_cycles: (mean_service * 4.0) as u64,
            target_load_pct: 70,
            min_nodes: 2,
            max_nodes: 16,
            spinup_cycles: 8 * max_cold,
        }),
        record_timeline: false,
    };
    let trace = FlashCrowd {
        base: EmpiricalTrace::azure_day((mean_service * 4_000.0) as u64),
        period_cycles: (mean_service * 400.0) as u64,
        burst_cycles: (mean_service * 40.0) as u64,
        multiplier: 4,
    };
    let arrival = ArrivalConfig {
        seed: 7,
        count: INVOCATIONS,
        mean_interarrival_cycles: mean_service / (cfg.nodes as f64 * 0.9),
    };
    let arrivals = generate_trace(&arrival, &mix, &trace).expect("valid trace");
    let setup_ms = setup.elapsed().as_secs_f64() * 1e3;

    memento_obs::selfprof::enable();
    let t = Instant::now();
    let r = simulate(Engine::Profiled(mem_table), &cfg, &mix, &arrivals).expect("validated config");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    memento_obs::selfprof::disable();
    assert!(r.is_clean(), "region PM bench audits must pass");
    assert!(
        r.pm_parks > 0,
        "PM keep-alive must actually park containers"
    );
    Measurement {
        name: "region_pm",
        wall_ms,
        setup_ms,
        invocations: r.completed,
        spans: drain_spans(),
    }
}

/// The multicore contention study at smoke scale: four invocations
/// work-stealing-scheduled over two cores sharing an LLC and a memory
/// controller, baseline and Memento trials plus the per-spec solo runs.
/// Guards the scheduled-machine path (fair-share LLC partitioning, DRAM
/// queueing, steal bookkeeping) that the fleet benches never touch.
fn bench_multicore_scale() -> Measurement {
    memento_obs::selfprof::enable();
    let t = Instant::now();
    let result =
        multicore::run_for_jobs(&["aes", "jl", "aes", "jl"], 8, 1).expect("pinned workloads exist");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    memento_obs::selfprof::disable();
    assert_eq!(result.cores, 2, "four invocations contend on two cores");
    Measurement {
        name: "multicore_scale",
        wall_ms,
        setup_ms: 0.0,
        invocations: 4 * result.rows.len() as u64,
        spans: drain_spans(),
    }
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`),
/// when the platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs a measurement `reps` times and keeps the fastest repetition.
/// Every repetition simulates identical work (fixed seeds), so the
/// minimum wall time is the least noise-polluted sample.
fn best_of(reps: u32, f: impl Fn() -> Measurement) -> Measurement {
    (0..reps.max(1))
        .map(|_| f())
        .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
        .expect("at least one repetition")
}

struct Args {
    out: Option<String>,
    baseline: Option<String>,
    threshold_pct: f64,
    reps: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        baseline: None,
        threshold_pct: 15.0,
        reps: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--threshold" => {
                args.threshold_pct = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: memento-bench [--out FILE] [--baseline FILE] \
                     [--threshold PCT] [--reps N]"
                    .into())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let measurements = [
        best_of(args.reps, bench_cluster_smoke),
        best_of(args.reps, bench_warm_steady_state),
        best_of(args.reps, bench_cluster_full_eval),
        best_of(args.reps, bench_region_scale),
        best_of(args.reps, bench_region_pm),
        best_of(args.reps, bench_multicore_scale),
    ];

    let mut report = Value::object();
    report.set("schema", "memento-bench/v1");
    let workloads: Vec<Value> = measurements.iter().map(Measurement::to_json).collect();
    report.set("workloads", Value::Array(workloads));
    match peak_rss_kb() {
        Some(kb) => report.set("peak_rss_kb", kb as f64),
        None => report.set("peak_rss_kb", Value::Null),
    };

    for m in &measurements {
        let secs = m.wall_ms / 1e3;
        let rate = if secs > 0.0 {
            m.invocations as f64 / secs
        } else {
            0.0
        };
        println!(
            "{}: {:.1} ms wall (+{:.1} ms setup), {} invocations, {:.0} inv/s",
            m.name, m.wall_ms, m.setup_ms, m.invocations, rate
        );
    }
    if let Some(kb) = peak_rss_kb() {
        println!("peak RSS: {} kB", kb);
    }

    let rendered = format!("{}\n", report.to_pretty());
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if let Some(path) = &args.baseline {
        let baseline_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => {
                // Skip-with-notice: the gate arms itself once a
                // baseline is blessed into the tree.
                println!("bench gate: no baseline at {path} — skipping regression gate");
                return ExitCode::SUCCESS;
            }
        };
        let baseline = match json::parse(&baseline_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench gate: baseline {path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = gate::compare(&report, &baseline, args.threshold_pct);
        println!(
            "bench gate vs {path} (threshold {:.0}%):",
            args.threshold_pct
        );
        for line in &outcome.lines {
            println!("  {line}");
        }
        if !outcome.passed() {
            for failure in &outcome.failures {
                eprintln!("bench gate FAILED: {failure}");
            }
            return ExitCode::FAILURE;
        }
        println!("bench gate: pass");
    }

    ExitCode::SUCCESS
}
