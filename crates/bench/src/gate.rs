//! The CI regression gate over two `BENCH_*.json` reports.
//!
//! The gate compares per-workload wall time: a workload regresses when
//! its new wall time exceeds the baseline's by more than the threshold
//! percentage. A workload present in the baseline but missing from the
//! new report also fails (a silently dropped measurement would make
//! every later comparison vacuous); workloads only in the new report
//! are noted but allowed, so the pinned set can grow without
//! re-blessing the baseline in the same change.

use memento_simcore::json::Value;

/// The outcome of comparing a fresh report against a baseline.
#[derive(Debug)]
pub struct GateReport {
    /// One human-readable line per compared workload.
    pub lines: Vec<String>,
    /// Failures: regressions past the threshold, missing workloads, or
    /// malformed reports. Empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the new report is within the regression budget.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Extracts `(name, wall_ms)` pairs from a report's `workloads` array.
fn workload_walls(report: &Value) -> Option<Vec<(String, f64)>> {
    let items = report.get("workloads")?.as_array()?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let name = item.get("name")?.as_str()?.to_owned();
        let wall = item.get("wall_ms")?.as_f64()?;
        out.push((name, wall));
    }
    Some(out)
}

/// Compares `new` against `baseline`, failing any workload whose wall
/// time grew by more than `threshold_pct` percent.
pub fn compare(new: &Value, baseline: &Value, threshold_pct: f64) -> GateReport {
    let mut lines = Vec::new();
    let mut failures = Vec::new();

    let (Some(new_walls), Some(base_walls)) = (workload_walls(new), workload_walls(baseline))
    else {
        failures.push(
            "malformed bench report: expected a `workloads` array of \
             {name, wall_ms} objects in both reports"
                .to_owned(),
        );
        return GateReport { lines, failures };
    };

    for (name, base_ms) in &base_walls {
        match new_walls.iter().find(|(n, _)| n == name) {
            Some((_, new_ms)) => {
                let delta_pct = if *base_ms > 0.0 {
                    (new_ms - base_ms) / base_ms * 100.0
                } else {
                    0.0
                };
                let verdict = if delta_pct > threshold_pct {
                    "REGRESSED"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{name}: {base_ms:.1} ms -> {new_ms:.1} ms ({delta_pct:+.1}%) {verdict}"
                ));
                if delta_pct > threshold_pct {
                    failures.push(format!(
                        "{name} regressed {delta_pct:+.1}% (budget {threshold_pct:.0}%)"
                    ));
                }
            }
            None => {
                failures.push(format!(
                    "{name} present in baseline but missing from new report"
                ));
            }
        }
    }
    for (name, _) in &new_walls {
        if !base_walls.iter().any(|(n, _)| n == name) {
            lines.push(format!("{name}: new workload, no baseline (not gated)"));
        }
    }

    GateReport { lines, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_simcore::json;

    /// Checked-in fixture reports exercising the CI gate end to end.
    const BASELINE: &str = include_str!("../fixtures/gate_baseline.json");
    const WITHIN_BUDGET: &str = include_str!("../fixtures/gate_within_budget.json");
    const REGRESSED: &str = include_str!("../fixtures/gate_regressed.json");

    fn parse(s: &str) -> Value {
        json::parse(s).expect("fixture parses")
    }

    #[test]
    fn fixture_within_budget_passes() {
        let report = compare(&parse(WITHIN_BUDGET), &parse(BASELINE), 15.0);
        assert!(report.passed(), "failures: {:?}", report.failures);
        // Every baseline workload was compared, and the extra workload
        // in the new report is noted but not gated.
        assert_eq!(report.lines.len(), 3);
        assert!(report.lines.iter().any(|l| l.contains("not gated")));
    }

    #[test]
    fn fixture_regression_fails_only_the_slow_workload() {
        let report = compare(&parse(REGRESSED), &parse(BASELINE), 15.0);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("cluster_full_eval"));
        assert!(report.failures[0].contains("+50.0%"));
    }

    #[test]
    fn tighter_threshold_flags_the_borderline_workload() {
        // cluster_smoke drifts +10% in the within-budget fixture:
        // inside a 15% budget, outside a 5% one.
        let report = compare(&parse(WITHIN_BUDGET), &parse(BASELINE), 5.0);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("cluster_smoke"));
    }

    #[test]
    fn missing_workload_fails() {
        let new = parse(r#"{"workloads": [{"name": "cluster_smoke", "wall_ms": 100.0}]}"#);
        let report = compare(&new, &parse(BASELINE), 15.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("missing from new report")));
    }

    #[test]
    fn malformed_report_fails_closed() {
        let report = compare(&parse(r#"{"schema": "nope"}"#), &parse(BASELINE), 15.0);
        assert!(!report.passed());
        assert!(report.failures[0].contains("malformed"));
    }

    #[test]
    fn zero_baseline_wall_never_divides_by_zero() {
        let base = parse(r#"{"workloads": [{"name": "w", "wall_ms": 0.0}]}"#);
        let new = parse(r#"{"workloads": [{"name": "w", "wall_ms": 3.0}]}"#);
        assert!(compare(&new, &base, 15.0).passed());
    }
}
