//! Benchmark crate: the `memento-bench` harness binary plus the
//! Criterion groups in `benches/`.
//!
//! The binary (`cargo run --release -p memento-bench -- --out FILE`)
//! runs a pinned workload set — cluster smoke, warm steady-state, and
//! the full-evaluation-scale cluster throughput run — and writes a
//! `BENCH_*.json` report with per-workload wall time, invocations per
//! second, a self-profiling span breakdown, and peak RSS. Passing
//! `--baseline FILE` additionally gates the run against a checked-in
//! report (see [`gate`]); CI fails the job when any workload's wall
//! time regresses past the threshold.
//!
//! The Criterion groups are unchanged, one per paper artifact:
//!
//! - `characterization` — Figs. 2–3, Tables 1–3
//! - `evaluation` — Figs. 8–14 (prints every regenerated series)
//! - `comparisons` — §6.1 iso-storage, §6.7 idealized Mallacc
//! - `sensitivity` — the §6.6 studies
//! - `microbench` — raw simulator-throughput measurements
//!
//! Run with `cargo bench --workspace`; each group prints the reproduced
//! paper-shaped rows before timing begins.

#![forbid(unsafe_code)]

pub mod gate;
