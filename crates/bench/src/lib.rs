//! Benchmark-only crate: the Criterion harness lives in `benches/`.
//!
//! One bench group per paper artifact:
//!
//! - `characterization` — Figs. 2–3, Tables 1–3
//! - `evaluation` — Figs. 8–14 (prints every regenerated series)
//! - `comparisons` — §6.1 iso-storage, §6.7 idealized Mallacc
//! - `sensitivity` — the §6.6 studies
//! - `microbench` — raw simulator-throughput measurements
//!
//! Run with `cargo bench --workspace`; each group prints the reproduced
//! paper-shaped rows before timing begins.

#![forbid(unsafe_code)]
