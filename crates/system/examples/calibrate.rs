//! Iteratively tunes per-workload MallocPKI (and touch intensity at the
//! PKI floor) so Memento speedups land on the paper's Fig. 8 values.
use memento_system::{stats, Machine, SystemConfig};
use memento_workloads::spec::Category;
use memento_workloads::suite;

const TARGETS: &[(&str, f64)] = &[
    ("html", 1.28),
    ("ir", 1.10),
    ("bfs", 1.17),
    ("dna", 1.12),
    ("aes", 1.15),
    ("fr", 1.13),
    ("jl", 1.14),
    ("jd", 1.12),
    ("mk", 1.18),
    ("US", 1.16),
    ("UM", 1.17),
    ("CM", 1.14),
    ("MI", 1.12),
    ("html-go", 1.20),
    ("bfs-go", 1.15),
    ("aes-go", 1.10),
    ("Redis", 1.11),
    ("Memcached", 1.065),
    ("Silo", 1.075),
    ("SQLite3", 1.05),
    ("up", 1.05),
    ("deploy", 1.06),
    ("invoke", 1.07),
];

fn measure(spec: &memento_workloads::spec::WorkloadSpec) -> f64 {
    let steady = spec.category != Category::Function;
    let (b, m) = if steady {
        (
            Machine::new(SystemConfig::baseline()).run_steady(spec, 0.4),
            Machine::new(SystemConfig::memento()).run_steady(spec, 0.4),
        )
    } else {
        (
            Machine::new(SystemConfig::baseline()).run(spec),
            Machine::new(SystemConfig::memento()).run(spec),
        )
    };
    stats::speedup(&b, &m)
}

fn main() {
    for (name, target) in TARGETS {
        let mut spec = suite::by_name(name).unwrap();
        let target_gain = target - 1.0;
        let mut best = (f64::MAX, spec.malloc_pki, spec.touch_intensity);
        for _iter in 0..8 {
            let s = measure(&spec);
            let gain = s - 1.0;
            let err = (gain - target_gain).abs() / target_gain;
            if err < best.0 {
                best = (err, spec.malloc_pki, spec.touch_intensity);
            }
            if err < 0.08 {
                break;
            }
            let ratio = (target_gain / gain.max(0.001)).powf(1.4);
            let new_pki = (spec.malloc_pki * ratio).clamp(0.5, 30.0);
            if (new_pki - spec.malloc_pki).abs() < 1e-9 && new_pki <= 0.5 + 1e-9 {
                // PKI floor: shrink re-touch intensity instead.
                spec.touch_intensity = (spec.touch_intensity * 0.7).max(0.2);
            }
            spec.malloc_pki = new_pki;
        }
        let final_s = {
            spec.malloc_pki = best.1;
            spec.touch_intensity = best.2;
            measure(&spec)
        };
        println!(
            "{:<10} pki {:>6.2} touch {:>4.2} -> speedup {:.3} (target {:.3})",
            name, best.1, best.2, final_s, target
        );
    }
}
