use memento_system::{stats, Machine, SystemConfig};
use memento_workloads::suite;

fn main() {
    println!(
        "{:<12} {:>7} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "name", "speedup", "mm%", "u/k", "bwred", "hotA", "hotF", "memuse", "faults"
    );
    let mut speedups = Vec::new();
    for spec in suite::all_workloads() {
        let steady = spec.category != memento_workloads::spec::Category::Function;
        let (base, mem) = if steady {
            (
                Machine::new(SystemConfig::baseline()).run_steady(&spec, 0.4),
                Machine::new(SystemConfig::memento()).run_steady(&spec, 0.4),
            )
        } else {
            (
                Machine::new(SystemConfig::baseline()).run(&spec),
                Machine::new(SystemConfig::memento()).run(&spec),
            )
        };
        let s = stats::speedup(&base, &mem);
        let bw = stats::bandwidth_reduction(&base, &mem);
        let hot = mem.hot.unwrap();
        let usage = (mem.user_pages_agg + mem.kernel_pages_agg) as f64
            / (base.user_pages_agg + base.kernel_pages_agg).max(1) as f64;
        println!(
            "{:<12} {:>7.3} {:>6.1} {:>3.0}/{:<3.0} {:>7.3} {:>7.4} {:>7.4} {:>7.3} {:>6}",
            spec.name,
            s,
            base.mm_fraction() * 100.0,
            base.user_mm_share() * 100.0,
            base.kernel_mm_share() * 100.0,
            bw,
            hot.alloc.hit_rate(),
            hot.free.hit_rate(),
            usage,
            base.kernel.page_faults
        );
        if spec.category == memento_workloads::spec::Category::Function {
            speedups.push(s);
        }
    }
    println!("func geomean speedup: {:.3}", stats::geomean(&speedups));
}
