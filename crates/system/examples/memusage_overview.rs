use memento_system::{Machine, SystemConfig};
use memento_workloads::{spec::Category, suite};
fn main() {
    for spec in suite::all_workloads() {
        let steady = spec.category != Category::Function;
        let (b, m) = if steady {
            (
                Machine::new(SystemConfig::baseline()).run_steady(&spec, 0.4),
                Machine::new(SystemConfig::memento()).run_steady(&spec, 0.4),
            )
        } else {
            (
                Machine::new(SystemConfig::baseline()).run(&spec),
                Machine::new(SystemConfig::memento()).run(&spec),
            )
        };
        println!(
            "{:<12} user {:>5}/{:<5} kernel {:>4}/{:<4} mmaps {:>4}/{:<4}",
            spec.name,
            m.user_pages_agg,
            b.user_pages_agg,
            m.kernel_pages_agg,
            b.kernel_pages_agg,
            m.kernel.mmaps,
            b.kernel.mmaps
        );
    }
}
