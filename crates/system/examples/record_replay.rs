//! Record/replay: generate a workload trace once, persist it to JSON, and
//! replay the identical trace under both system designs — the workflow for
//! comparing design variants on frozen inputs.
//!
//! ```sh
//! cargo run --release -p memento-system --example record_replay
//! ```

use memento_system::{stats, Machine, SystemConfig};
use memento_workloads::event::Trace;
use memento_workloads::{generator, suite};

fn main() -> std::io::Result<()> {
    let mut spec = suite::by_name("html").expect("html workload");
    spec.total_instructions = 1_000_000;

    // Record.
    let trace = generator::generate(&spec);
    let path = std::env::temp_dir().join("memento-html.trace.json");
    trace.save(&path)?;
    println!(
        "recorded {} events ({} allocs) to {}",
        trace.events.len(),
        trace.alloc_count(),
        path.display()
    );

    // Replay under both designs.
    let replayed = Trace::load(&path)?;
    assert_eq!(replayed.events, trace.events, "lossless persistence");
    let base = Machine::new(SystemConfig::baseline()).run_trace(&spec, &replayed);
    let mem = Machine::new(SystemConfig::memento()).run_trace(&spec, &replayed);
    println!(
        "replayed: baseline {} cy, memento {} cy, speedup {:.3}",
        base.total_cycles().raw(),
        mem.total_cycles().raw(),
        stats::speedup(&base, &mem)
    );
    std::fs::remove_file(path).ok();
    Ok(())
}
