//! Property-based tests of the full machine: for arbitrary (small) specs
//! the simulation terminates, is deterministic, conserves frames, and
//! Memento never loses to the baseline by more than measurement noise.

use memento_sanitizer::SanitizerConfig;
use memento_system::{Machine, SystemConfig};
use memento_workloads::spec::{Category, Language, LifetimeProfile, SizeProfile, WorkloadSpec};
use memento_workloads::suite;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop_oneof![
            Just(Language::Python),
            Just(Language::Cpp),
            Just(Language::Golang)
        ],
        50_000u64..400_000,
        0.5f64..8.0,
        0.85f64..1.0,
        24.0f64..96.0,
        0.2f64..0.95,
        0.0f64..2.0,
        any::<u64>(),
    )
        .prop_map(
            |(language, insts, pki, small_frac, small_mean, short_frac, touch, seed)| {
                WorkloadSpec {
                    name: format!("prop-{seed}"),
                    language,
                    category: Category::Function,
                    allocator: WorkloadSpec::default_allocator(language, Category::Function),
                    total_instructions: insts,
                    malloc_pki: pki,
                    size: SizeProfile::typical(small_frac, small_mean),
                    lifetime: LifetimeProfile {
                        short_fraction: short_frac,
                        ..LifetimeProfile::for_language(language)
                    },
                    touch_intensity: touch,
                    hot_set: 32,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Both designs execute any in-space spec to completion with sane,
    /// deterministic statistics, and Memento does not lose.
    #[test]
    fn machine_executes_arbitrary_specs(spec in arb_spec()) {
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let base2 = Machine::new(SystemConfig::baseline()).run(&spec);
        prop_assert_eq!(base.total_cycles(), base2.total_cycles(), "determinism");

        let mem = Machine::new(SystemConfig::memento()).run(&spec);
        prop_assert!(mem.total_cycles().raw() > 0);
        prop_assert!(
            mem.total_cycles() <= base.total_cycles(),
            "memento must not lose: {} vs {}",
            mem.total_cycles(),
            base.total_cycles()
        );

        // HOT accounting is self-consistent.
        let hot = mem.hot.expect("hot stats");
        let obj = mem.obj.expect("obj stats");
        prop_assert_eq!(hot.alloc.total(), obj.allocs);
        prop_assert!(obj.alloc_list_ops <= obj.allocs);
        prop_assert!(obj.free_list_ops <= obj.frees * 2);

        // Memory-management buckets can't exceed the total.
        prop_assert!(base.mm_fraction() <= 1.0);
        prop_assert!(mem.mm_fraction() <= 1.0);
    }

    /// All heap frames return to the OS at exit: a second run on the same
    /// machine starts from a clean frame pool (no leak accumulates).
    #[test]
    fn frames_do_not_leak_across_runs(spec in arb_spec()) {
        let mut machine = Machine::new(SystemConfig::memento());
        let first = machine.run(&spec);
        let second = machine.run(&spec);
        // The second run executes identically-shaped work; if frames leaked
        // the buddy would drift toward exhaustion and costs would shift.
        let ratio = second.total_cycles().raw() as f64
            / first.total_cycles().raw().max(1) as f64;
        prop_assert!(
            (0.8..1.2).contains(&ratio),
            "second-run cycle drift {ratio}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Physical-page lifecycle conservation across a warm multi-invocation
    /// run: at every sanitizer audit point (and after teardown) the frames
    /// the OS granted minus the frames returned equal the frames idle in
    /// the pool plus the frames mapped — recycling through the pool never
    /// leaks or double-counts a frame.
    #[test]
    fn warm_run_conserves_pool_frames(spec in arb_spec()) {
        let mut cfg = SystemConfig::memento();
        cfg.sanitizer = Some(SanitizerConfig::default());
        let mut machine = Machine::new(cfg);
        let warm = machine.run_invocations(&spec, 3);
        prop_assert_eq!(warm.invocations.len(), 3);
        let report = machine.sanitizer_report().expect("sanitizer enabled");
        prop_assert!(report.audits > 0, "audits must have run");
        prop_assert!(report.is_clean(), "sanitizer (incl. pool audit): {report}");
        let audit = machine.pool_audit().expect("memento device");
        prop_assert!(audit.conserved(), "after teardown: {audit:?}");
        prop_assert_eq!(audit.mapped, 0, "teardown returned every frame: {:?}", audit);
    }
}

/// Warm steady state reaches a fixed point: replaying an identical trace,
/// the per-invocation OS refill count stops changing from invocation 2 on
/// (the pool recycles the previous invocation's frames instead of asking
/// the OS again). This is the regression net for the Fig. 11 steady-state
/// direction.
#[test]
fn steady_state_pool_refills_are_flat() {
    let mut spec = suite::by_name("Redis").expect("suite workload");
    spec.total_instructions = 400_000;
    let mut machine = Machine::new(SystemConfig::memento());
    let warm = machine.run_invocations(&spec, 5);
    let refills: Vec<u64> = warm
        .invocations
        .iter()
        .map(|inv| inv.page.expect("memento run").pool_refills)
        .collect();
    for (i, &r) in refills.iter().enumerate().skip(2) {
        assert_eq!(
            r, refills[2],
            "invocation {i} refill delta drifted: {refills:?}"
        );
    }
    let steady = warm.steady.page.expect("memento run");
    assert!(
        steady.frames_recycled > 0,
        "steady state must recycle frames: {steady:?}"
    );
}
