//! Property-based tests of the full machine: for arbitrary (small) specs
//! the simulation terminates, is deterministic, conserves frames, and
//! Memento never loses to the baseline by more than measurement noise.

use memento_system::{Machine, SystemConfig};
use memento_workloads::spec::{Category, Language, LifetimeProfile, SizeProfile, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop_oneof![
            Just(Language::Python),
            Just(Language::Cpp),
            Just(Language::Golang)
        ],
        50_000u64..400_000,
        0.5f64..8.0,
        0.85f64..1.0,
        24.0f64..96.0,
        0.2f64..0.95,
        0.0f64..2.0,
        any::<u64>(),
    )
        .prop_map(
            |(language, insts, pki, small_frac, small_mean, short_frac, touch, seed)| {
                WorkloadSpec {
                    name: format!("prop-{seed}"),
                    language,
                    category: Category::Function,
                    allocator: WorkloadSpec::default_allocator(language, Category::Function),
                    total_instructions: insts,
                    malloc_pki: pki,
                    size: SizeProfile::typical(small_frac, small_mean),
                    lifetime: LifetimeProfile {
                        short_fraction: short_frac,
                        ..LifetimeProfile::for_language(language)
                    },
                    touch_intensity: touch,
                    hot_set: 32,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Both designs execute any in-space spec to completion with sane,
    /// deterministic statistics, and Memento does not lose.
    #[test]
    fn machine_executes_arbitrary_specs(spec in arb_spec()) {
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let base2 = Machine::new(SystemConfig::baseline()).run(&spec);
        prop_assert_eq!(base.total_cycles(), base2.total_cycles(), "determinism");

        let mem = Machine::new(SystemConfig::memento()).run(&spec);
        prop_assert!(mem.total_cycles().raw() > 0);
        prop_assert!(
            mem.total_cycles() <= base.total_cycles(),
            "memento must not lose: {} vs {}",
            mem.total_cycles(),
            base.total_cycles()
        );

        // HOT accounting is self-consistent.
        let hot = mem.hot.expect("hot stats");
        let obj = mem.obj.expect("obj stats");
        prop_assert_eq!(hot.alloc.total(), obj.allocs);
        prop_assert!(obj.alloc_list_ops <= obj.allocs);
        prop_assert!(obj.free_list_ops <= obj.frees * 2);

        // Memory-management buckets can't exceed the total.
        prop_assert!(base.mm_fraction() <= 1.0);
        prop_assert!(mem.mm_fraction() <= 1.0);
    }

    /// All heap frames return to the OS at exit: a second run on the same
    /// machine starts from a clean frame pool (no leak accumulates).
    #[test]
    fn frames_do_not_leak_across_runs(spec in arb_spec()) {
        let mut machine = Machine::new(SystemConfig::memento());
        let first = machine.run(&spec);
        let second = machine.run(&spec);
        // The second run executes identically-shaped work; if frames leaked
        // the buddy would drift toward exhaustion and costs would shift.
        let ratio = second.total_cycles().raw() as f64
            / first.total_cycles().raw().max(1) as f64;
        prop_assert!(
            (0.8..1.2).contains(&ratio),
            "second-run cycle drift {ratio}"
        );
    }
}
