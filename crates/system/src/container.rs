//! Warm-container lifecycle for the cluster layer: one process, one
//! allocator, one Memento attachment serving request after request.
//!
//! [`crate::Machine::run_invocations`] drives a fixed number of
//! back-to-back invocations for the §6.3 steady-state figures; a cluster
//! node needs the same mechanics under *external* control — a scheduler
//! decides when the next request lands on this container, whether the
//! container stays warm in the keep-alive pool, and when it is evicted.
//! [`WarmContainer`] exposes that lifecycle as three moves:
//!
//! 1. [`WarmContainer::cold_start`] — boot the machine, create the
//!    process/allocator/device state, and serve the first (cold)
//!    invocation. Its statistics include container bring-up.
//! 2. [`WarmContainer::invoke`] — serve one warm invocation: replay the
//!    request body, then quiesce at the boundary (object sweep, GC,
//!    `end_invocation_trim` arena recycling, allocator decay) exactly as
//!    the warm window of `run_invocations` does.
//! 3. [`WarmContainer::finish`] — container teardown: batch-return the
//!    small-object heap to the OS pool and unmap what remains.
//!
//! Between invocations the container idles warm: the pool and Memento
//! page table keep their recycled frames, which is what
//! [`WarmContainer::resident_pages`] reports to the fleet accountant.

use crate::config::SystemConfig;
use crate::machine::{FunctionRun, Machine};
use crate::stats::RunStats;
use memento_pmem::{PmEpoch, PmPool};
use memento_workloads::event::{Event, Trace};
use memento_workloads::generator::generate;
use memento_workloads::spec::WorkloadSpec;

/// A warm serverless container: a booted [`Machine`] plus the live process
/// state of one function, serving invocations on demand.
pub struct WarmContainer {
    machine: Machine,
    run: FunctionRun,
    spec: WorkloadSpec,
    trace: Trace,
    body_len: usize,
    invocations: u64,
    serving_peak_pages: u64,
    /// The container's persistent checkpoint pool, created on the first
    /// [`WarmContainer::park_to_pm`] and reused for every later park (the
    /// two-slot protocol alternates areas, so successive epochs never
    /// overwrite each other in place).
    pm: Option<PmPool>,
    pm_parked: bool,
}

impl WarmContainer {
    /// Boots a container for `spec` under `cfg` and serves the first —
    /// cold — invocation. The returned statistics cover everything from
    /// machine bring-up through the first request's boundary quiesce, so
    /// they are the cold-start service time a scheduler should charge.
    pub fn cold_start(cfg: SystemConfig, spec: &WorkloadSpec) -> (Self, RunStats) {
        let trace = generate(spec);
        // The trace's trailing Exit is container teardown; while the
        // container lives, only the body replays (same convention as
        // `Machine::run_invocations`).
        let body_len = match trace.events.last() {
            Some(Event::Exit) => trace.events.len() - 1,
            _ => trace.events.len(),
        };
        let mut machine = Machine::new(cfg);
        let run = machine.start(spec);
        let mut container = WarmContainer {
            machine,
            run,
            spec: spec.clone(),
            trace,
            body_len,
            invocations: 0,
            serving_peak_pages: 0,
            pm: None,
            pm_parked: false,
        };
        let cold = container.serve();
        (container, cold)
    }

    /// Boots a container from a REAP-style snapshot and serves the first
    /// invocation. The machine state is built the same way as
    /// [`WarmContainer::cold_start`] (snapshots capture exactly the booted
    /// state), but the *charged* service time replaces instruction replay
    /// with a warm invocation plus the calibrated working-set prefetch
    /// ([`Machine::snapshot_restore_cycles`]), clamped strictly between
    /// the warm and cold costs. Returns the container and the restore
    /// service time in cycles.
    pub fn restore_start(cfg: SystemConfig, spec: &WorkloadSpec) -> (Self, u64) {
        let (mut container, cold) = WarmContainer::cold_start(cfg, spec);
        container.park();
        let prefetch = container.machine.snapshot_restore_cycles();
        let warm = container.invoke();
        let warm_cycles = warm.total_cycles().raw().max(1);
        let cold_cycles = cold.total_cycles().raw().max(1);
        let restore =
            (warm_cycles + prefetch).clamp(warm_cycles + 1, (cold_cycles - 1).max(warm_cycles + 1));
        (container, restore)
    }

    /// Serves one warm invocation and returns its statistics (the warm
    /// service time). The container stays alive: frames recycled at the
    /// boundary serve the next request without fresh OS grants. After the
    /// call, [`WarmContainer::window_peak_pages`] reports the footprint
    /// this invocation pinned.
    pub fn invoke(&mut self) -> RunStats {
        self.machine.begin_measurement(&mut self.run);
        self.machine.reset_frame_window();
        self.serve()
    }

    fn serve(&mut self) -> RunStats {
        for i in 0..self.body_len {
            let event = self.trace.events[i];
            self.machine.step(&mut self.run, &event);
        }
        // Peak unreclaimable footprint while the request body executed:
        // mapped data + tables, with the pool's recycle staging (free
        // frames in flight between arena frees and the next grant)
        // excluded — staging is reclaimable at any instant, like the OS
        // free list.
        self.serving_peak_pages = self.machine.window_peak_unreclaimable();
        self.machine.end_invocation(&mut self.run, 0);
        self.invocations += 1;
        self.machine.collect_inner(&self.run)
    }

    /// Tears the container down (keep-alive expiry or scheduler eviction):
    /// Memento detach with batch pool return, then OS unmap of what
    /// remains. Returns the teardown-window statistics.
    pub fn finish(self) -> RunStats {
        self.finish_with_report().0
    }

    /// [`WarmContainer::finish`], but also hands back the machine's final
    /// sanitizer report (None when the sanitizer is off) — teardown runs
    /// the last audit, so the report is only complete after it.
    pub fn finish_with_report(mut self) -> (RunStats, Option<memento_sanitizer::SanitizerReport>) {
        self.machine.begin_measurement(&mut self.run);
        self.machine.finish_run(&mut self.run, 0);
        let stats = self.machine.collect_inner(&self.run);
        let report = self.machine.sanitizer_report().cloned();
        (stats, report)
    }

    /// Invocations served so far (cold start included).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The workload this container serves.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Frames currently resident on this container's machine — its live
    /// contribution to the fleet memory footprint (idle-warm containers
    /// keep their recycled pool and page tables resident; that residency
    /// is the price of keep-alive).
    pub fn resident_pages(&self) -> u64 {
        self.machine.resident_pages()
    }

    /// Peak concurrently-resident frames over the container's lifetime —
    /// the footprint it pins while actively serving a request.
    pub fn peak_resident_pages(&self) -> u64 {
        self.machine.peak_resident_pages()
    }

    /// The machine this container runs on (frame accounting, pool audits).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Keep-alive park: sheds the hardware pool's idle reserve back to the
    /// OS while the container waits warm (see [`Machine::park`]). Returns
    /// frames shed; 0 on baseline containers.
    pub fn park(&mut self) -> u64 {
        self.machine.park()
    }

    /// Parks this container to persistent memory: captures a
    /// crash-consistent checkpoint of its Memento state (arena bitmaps,
    /// AAC bump pointers, HOT-resident headers, Memento page table) into
    /// the container's [`PmPool`], then sheds the DRAM pool's idle
    /// reserve exactly like [`WarmContainer::park`]. When the sanitizer
    /// is on, the checkpoint is first put through the crash-injected
    /// recovery audit at a `audit_seed`-selected injection point.
    ///
    /// Returns the cycles the persist costs — checkpoint record flushes
    /// plus the working-set writeback — paid off the latency path: the
    /// container is idle when it parks, so schedulers account this as
    /// background work, not service time. Baseline containers persist an
    /// empty image (no device state exists); their restore degenerates to
    /// demand-refaulting, which is the cost edge the fleet experiment
    /// measures.
    pub fn park_to_pm(&mut self, audit_seed: u64) -> u64 {
        let records = self.machine.pm_records(&self.run);
        if self.pm.is_none() {
            self.pm = Some(PmPool::new(self.machine.pm_costs()));
        }
        // Audit against the pool *before* the new checkpoint: pre-seal
        // crashes must recover the previous epoch, never a torn image.
        let pool = self.pm.as_ref().expect("pool just ensured");
        self.machine.audit_pm_recovery(pool, &records, audit_seed);
        let pool = self.pm.as_mut().expect("pool just ensured");
        let (epoch, checkpoint_cycles) = pool.checkpoint(&records);
        self.machine
            .note_pm_parked(&self.run, epoch.raw(), records.len() as u64);
        self.machine.park();
        self.pm_parked = true;
        checkpoint_cycles + self.machine.pm_persist_data_cycles()
    }

    /// Brings a parked-to-PM container back to serving: runs PM recovery
    /// (picking the newest sealed epoch, scrubbing any in-flight one) and
    /// replays the sealed image. Returns the extra cycles the next warm
    /// invocation must be charged on top of its warm service time (see
    /// [`Machine::pm_restore_cycles`]); frames shed at park re-enter
    /// through the normal low-water pool refill, whose cost lands in that
    /// invocation's own ledger. Returns 0 if the container is not parked.
    pub fn restore_from_pm(&mut self) -> u64 {
        if !self.pm_parked {
            return 0;
        }
        let pool = self.pm.as_mut().expect("parked implies pool");
        pool.recover();
        let image = pool.sealed_image().expect("park always seals an epoch");
        let extra = self.machine.pm_restore_cycles(&image);
        self.machine.note_pm_restored(&self.run, image.epoch());
        self.pm_parked = false;
        extra
    }

    /// Whether the container currently sits parked in PM.
    pub fn is_pm_parked(&self) -> bool {
        self.pm_parked
    }

    /// The newest sealed checkpoint epoch, if the container ever parked.
    pub fn pm_sealed_epoch(&self) -> Option<PmEpoch> {
        self.pm.as_ref().and_then(|p| p.sealed_epoch())
    }

    /// The container's checkpoint pool (diagnostics and tests).
    pub fn pm_pool(&self) -> Option<&PmPool> {
        self.pm.as_ref()
    }

    /// Peak unreclaimable frames while the most recent request body
    /// executed (cold start included for the first invocation) — what
    /// this container pins while actively serving, free pool staging
    /// excluded.
    pub fn serving_peak_pages(&self) -> u64 {
        self.serving_peak_pages
    }

    /// Currently-unreclaimable frames: resident minus the pool's free
    /// staging — this container's idle-warm contribution to the fleet
    /// footprint.
    pub fn unreclaimable_pages(&self) -> u64 {
        self.machine.unreclaimable_pages()
    }

    /// Cycles a REAP-style snapshot restore of this container would pay
    /// (see [`Machine::snapshot_restore_cycles`]).
    pub fn snapshot_restore_cycles(&self) -> u64 {
        self.machine.snapshot_restore_cycles()
    }

    /// The frames a pressure squeeze cannot reclaim from this container
    /// (see [`Machine::squeeze_floor_pages`]).
    pub fn squeeze_floor_pages(&self) -> u64 {
        self.machine.squeeze_floor_pages()
    }

    /// Per-frame cost of re-faulting squeezed frames on the next warm
    /// start (see [`Machine::squeeze_refault_unit_cycles`]).
    pub fn squeeze_refault_unit_cycles(&self) -> u64 {
        self.machine.squeeze_refault_unit_cycles()
    }
}

// The cluster layer moves containers across the experiment harness's
// worker threads during profile calibration.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<WarmContainer>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use memento_workloads::suite;

    fn small_spec(name: &str) -> WorkloadSpec {
        let mut s = suite::by_name(name).expect("workload exists");
        s.total_instructions = 300_000;
        s
    }

    #[test]
    fn warm_invocations_cost_less_than_cold() {
        let spec = small_spec("aes");
        let (mut c, cold) = WarmContainer::cold_start(SystemConfig::memento(), &spec);
        let warm = c.invoke();
        assert!(cold.total_cycles() > warm.total_cycles(), "cold start paid");
        assert_eq!(c.invocations(), 2);
        let teardown = c.finish();
        assert!(teardown.kernel.munmaps > 0 || teardown.kernel.context_switches > 0);
    }

    #[test]
    fn matches_run_invocations_warm_window() {
        // The externally-driven container must reproduce the monolithic
        // warm driver invocation for invocation: same machine, same
        // boundary semantics, same cycle ledgers.
        let spec = small_spec("html");
        let n = 3;
        let reference = Machine::new(SystemConfig::memento()).run_invocations(&spec, n);
        let (mut c, cold) = WarmContainer::cold_start(SystemConfig::memento(), &spec);
        let mut warm = Vec::new();
        for _ in 1..n {
            warm.push(c.invoke());
        }
        assert_eq!(
            cold.total_cycles(),
            reference.invocations[0].total_cycles(),
            "cold invocation diverged from run_invocations"
        );
        for (i, w) in warm.iter().enumerate() {
            assert_eq!(
                w.total_cycles(),
                reference.invocations[i + 1].total_cycles(),
                "warm invocation {} diverged from run_invocations",
                i + 1
            );
        }
    }

    #[test]
    fn idle_footprint_stays_flat_across_warm_invocations() {
        // Keep-alive economics: after the boundary trim, an idle container
        // must not grow its resident footprint request over request
        // (otherwise the warm pool leaks the fleet's memory).
        let spec = small_spec("US");
        let (mut c, _) = WarmContainer::cold_start(SystemConfig::memento(), &spec);
        c.invoke();
        let after_second = c.resident_pages();
        for _ in 0..3 {
            c.invoke();
        }
        let after_fifth = c.resident_pages();
        assert!(
            after_fifth <= after_second + after_second / 8,
            "idle footprint grew: {after_second} -> {after_fifth} frames"
        );
        assert!(c.peak_resident_pages() >= after_fifth);
    }

    #[test]
    fn park_to_pm_round_trip_restores_between_warm_and_snapshot() {
        let spec = small_spec("aes");
        let (mut c, _) = WarmContainer::cold_start(SystemConfig::memento(), &spec);
        let warm = c.invoke().total_cycles().raw();
        let snapshot = c.snapshot_restore_cycles();
        let persist = c.park_to_pm(3);
        assert!(persist > 0, "persist work was charged");
        assert!(c.is_pm_parked());
        let epoch = c.pm_sealed_epoch().expect("epoch sealed");
        assert_eq!(epoch.raw(), 1);
        let restore = c.restore_from_pm();
        assert!(!c.is_pm_parked());
        assert!(
            restore > 0 && restore < warm + snapshot,
            "PM restore ({restore}) must undercut snapshot-restore-plus-warm ({warm}+{snapshot})"
        );
        // The container still serves after the round trip.
        let again = c.invoke();
        assert!(again.total_cycles().raw() > 0);
        // A second park seals a strictly newer epoch.
        c.park_to_pm(5);
        assert_eq!(c.pm_sealed_epoch().expect("resealed").raw(), 2);
    }

    #[test]
    fn pm_checkpoint_survives_sanitizer_recovery_audit() {
        // With the sanitizer on, every park runs the crash-injected
        // recovery audit; the machine's real state must pass at several
        // seeded injection points and the lifecycle events must balance.
        let spec = small_spec("html");
        let mut cfg = SystemConfig::memento();
        cfg.sanitizer = Some(memento_sanitizer::SanitizerConfig::default());
        let (mut c, _) = WarmContainer::cold_start(cfg, &spec);
        for seed in 0..4 {
            c.park_to_pm(seed);
            c.restore_from_pm();
            c.invoke();
        }
        let report = c.machine().sanitizer_report().expect("sanitizer on");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn baseline_park_to_pm_persists_empty_image_and_refaults() {
        let spec = small_spec("jl");
        let (mut c, _) = WarmContainer::cold_start(SystemConfig::baseline(), &spec);
        c.invoke();
        let persist = c.park_to_pm(0);
        assert!(persist > 0, "working-set writeback still costs cycles");
        let pool = c.pm_pool().expect("pool exists");
        assert!(
            pool.sealed_image().expect("sealed").is_empty(),
            "baselines have no device state to checkpoint"
        );
        let restore = c.restore_from_pm();
        let memento_restore = {
            let (mut m, _) = WarmContainer::cold_start(SystemConfig::memento(), &spec);
            m.invoke();
            m.park_to_pm(0);
            m.restore_from_pm()
        };
        assert!(
            restore > memento_restore,
            "demand-refault restore ({restore}) must exceed image replay ({memento_restore})"
        );
    }

    #[test]
    fn restore_without_park_is_a_no_op() {
        let spec = small_spec("aes");
        let (mut c, _) = WarmContainer::cold_start(SystemConfig::memento(), &spec);
        assert_eq!(c.restore_from_pm(), 0);
        assert!(c.pm_sealed_epoch().is_none());
    }

    #[test]
    fn baseline_containers_also_serve_warm() {
        let spec = small_spec("jl");
        let (mut c, cold) = WarmContainer::cold_start(SystemConfig::baseline(), &spec);
        let warm = c.invoke();
        assert!(warm.total_cycles().raw() > 0);
        assert!(cold.total_cycles() >= warm.total_cycles());
        assert!(c.resident_pages() > 0);
    }
}
