//! Run statistics: everything the experiment runners need to regenerate
//! the paper's tables and figures.

use memento_cache::{DramStats, MemSystemStats};
use memento_core::device::ObjStats;
use memento_core::hot::HotStats;
use memento_core::page_alloc::PageAllocStats;
use memento_kernel::kernel::KernelStats;
use memento_simcore::cycles::{CycleAccount, CycleBucket, Cycles};
use memento_softalloc::traits::SoftAllocStats;

/// Core frequency used to convert cycles to seconds (Table 3: 3 GHz).
pub const CORE_FREQ_HZ: f64 = 3.0e9;

/// Statistics from one workload run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Workload name.
    pub name: String,
    /// Cycle attribution ledger.
    pub cycles: CycleAccount,
    /// Memory-hierarchy statistics.
    pub mem: MemSystemStats,
    /// Kernel activity.
    pub kernel: KernelStats,
    /// Software allocator activity (baseline + large path under Memento).
    pub soft: Option<SoftAllocStats>,
    /// HOT statistics (Memento runs).
    pub hot: Option<HotStats>,
    /// Hardware page-allocator statistics (Memento runs).
    pub page: Option<PageAllocStats>,
    /// Object-allocator statistics (Memento runs).
    pub obj: Option<ObjStats>,
    /// Aggregate user-attributed pages allocated during the run.
    pub user_pages_agg: u64,
    /// Aggregate kernel-attributed pages allocated during the run.
    pub kernel_pages_agg: u64,
    /// Peak resident pages (upper bound: per-use peaks summed).
    pub peak_pages: u64,
    /// Garbage-collection cycles run (Golang).
    pub gc_runs: u64,
    /// Fraction of arena-header object slots unused at exit, over all
    /// arenas ever inspected (fragmentation study §6.6); `None` for
    /// baseline runs.
    pub arena_slot_idle_fraction: Option<f64>,
}

impl RunStats {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> Cycles {
        self.cycles.total()
    }

    /// Simulated wall-clock seconds at 3 GHz.
    pub fn runtime_seconds(&self) -> f64 {
        self.total_cycles().as_seconds(CORE_FREQ_HZ)
    }

    /// DRAM statistics shortcut.
    pub fn dram(&self) -> DramStats {
        self.mem.dram
    }

    /// Total DRAM bytes moved (Fig. 10's quantity).
    pub fn dram_bytes(&self) -> u64 {
        self.mem.dram.total_bytes()
    }

    /// Memory-management share of cycles (Table 2's quantity).
    pub fn mm_fraction(&self) -> f64 {
        let total = self.total_cycles().raw();
        if total == 0 {
            return 0.0;
        }
        self.cycles.memory_management_total().raw() as f64 / total as f64
    }

    /// User share of memory-management cycles.
    pub fn user_mm_share(&self) -> f64 {
        let mm = self.cycles.memory_management_total().raw();
        if mm == 0 {
            return 0.0;
        }
        self.cycles.user_mm().raw() as f64 / mm as f64
    }

    /// Kernel share of memory-management cycles.
    pub fn kernel_mm_share(&self) -> f64 {
        let mm = self.cycles.memory_management_total().raw();
        if mm == 0 {
            return 0.0;
        }
        self.cycles.kernel_mm().raw() as f64 / mm as f64
    }

    /// Peak resident memory in megabytes (pricing input).
    pub fn peak_memory_mb(&self) -> f64 {
        self.peak_pages as f64 * 4096.0 / (1024.0 * 1024.0)
    }

    /// Cycles in a given bucket.
    pub fn bucket(&self, b: CycleBucket) -> Cycles {
        self.cycles.get(b)
    }
}

/// Speedup of `opt` over `base` (>1 means `opt` is faster).
pub fn speedup(base: &RunStats, opt: &RunStats) -> f64 {
    base.total_cycles().raw() as f64 / opt.total_cycles().raw().max(1) as f64
}

/// Normalized DRAM-traffic reduction: 1 − opt/base (Fig. 10's quantity).
pub fn bandwidth_reduction(base: &RunStats, opt: &RunStats) -> f64 {
    let b = base.dram_bytes().max(1) as f64;
    1.0 - opt.dram_bytes() as f64 / b
}

/// Geometric mean of a slice of ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(total_compute: u64, user: u64, kernel: u64) -> RunStats {
        let mut s = RunStats {
            name: "t".into(),
            ..Default::default()
        };
        s.cycles
            .charge(CycleBucket::Compute, Cycles::new(total_compute));
        s.cycles.charge(CycleBucket::UserAlloc, Cycles::new(user));
        s.cycles.charge(CycleBucket::KernelMm, Cycles::new(kernel));
        s
    }

    #[test]
    fn shares_and_fractions() {
        let s = stats_with(600, 200, 200);
        assert!((s.mm_fraction() - 0.4).abs() < 1e-12);
        assert!((s.user_mm_share() - 0.5).abs() < 1e-12);
        assert!((s.kernel_mm_share() - 0.5).abs() < 1e-12);
        assert_eq!(s.total_cycles(), Cycles::new(1000));
    }

    #[test]
    fn speedup_ratio() {
        let base = stats_with(1200, 0, 0);
        let opt = stats_with(1000, 0, 0);
        assert!((speedup(&base, &opt) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_uniform() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_seconds_at_3ghz() {
        let s = stats_with(3_000_000_000, 0, 0);
        assert!((s.runtime_seconds() - 1.0).abs() < 1e-9);
    }
}
