//! Full-system assembly: the simulated machine that executes workload
//! traces against either the baseline software stack or the Memento
//! hardware, producing the run statistics behind every figure and table of
//! the paper.
//!
//! - [`config`] — system configurations: baseline, Memento (with feature
//!   toggles), the §6.1 iso-storage L1D, the §6.7 idealized Mallacc, and
//!   the §6.6 `MAP_POPULATE` baseline.
//! - [`container`] — [`container::WarmContainer`]: the externally-driven
//!   cold-start/invoke/finish lifecycle the cluster scheduler places
//!   requests onto.
//! - [`machine`] — the machine itself: cores + TLBs + caches + kernel +
//!   software allocators or the Memento device; executes [`memento_workloads::Event`]
//!   streams, handles Go GC policy, context switches, and teardown.
//! - [`scheduler`] — [`scheduler::Scheduler`]: deterministic work-stealing
//!   distribution of invocation batches across the machine's cores
//!   ([`Machine::run_scheduled`]), with per-core clocks and steal counters.
//! - [`stats`] — [`stats::RunStats`]: cycle attribution, DRAM traffic,
//!   memory-usage aggregates, HOT/AAC/arena statistics.
//!
//! # Examples
//!
//! ```
//! use memento_system::{Machine, SystemConfig};
//! use memento_workloads::suite;
//!
//! let spec = suite::by_name("aes").expect("known workload");
//! let baseline = Machine::new(SystemConfig::baseline()).run(&spec);
//! let memento = Machine::new(SystemConfig::memento()).run(&spec);
//! assert!(memento.total_cycles() < baseline.total_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod container;
pub mod gc;
pub mod machine;
pub mod observe;
pub mod scheduler;
pub mod stats;

pub use config::{Mode, SystemConfig, TraceConfig};
pub use container::WarmContainer;
pub use machine::Machine;
pub use scheduler::{SchedStats, Scheduler};
pub use stats::RunStats;
