//! Deterministic work-stealing invocation scheduler.
//!
//! Distributes a batch of invocations across the machine's cores using the
//! classic work-stealing deque idiom: each core owns a double-ended queue
//! of pending jobs, pops its own work from the front, and — when its queue
//! runs dry — steals from the *back* of a victim's queue. Victim selection
//! is driven by a seeded xorshift generator, so for a fixed `(cores, jobs,
//! seed)` triple the entire steal interleaving is a pure function of the
//! per-core clocks: repeated runs are byte-identical, and no host-level
//! parallelism or wall-clock state is consulted anywhere.
//!
//! The scheduler is a simulation artifact, not host threading: the machine
//! advances whichever core has the *lowest simulated clock* by one trace
//! event at a time, so cores interleave exactly as their cycle ledgers
//! dictate. A core can be stalled mid-invocation (fault injection, or
//! modeling a hiccup): its in-flight job stays pinned, but the jobs still
//! queued behind it are stolen back by its siblings.

use std::collections::VecDeque;

/// Counters describing one scheduled batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs acquired by stealing from another core's queue.
    pub steals: u64,
    /// Invocations each core started (own pops + steals).
    pub per_core_jobs: Vec<u64>,
    /// Simulated cycles each core accumulated across its invocations.
    pub per_core_cycles: Vec<u64>,
}

/// Deterministic work-stealing scheduler state (see module docs).
#[derive(Clone, Debug)]
pub struct Scheduler {
    /// Per-core job deques: front is the owner's pop side, back is the
    /// steal side.
    queues: Vec<VecDeque<usize>>,
    /// Job currently pinned to each core (`None` = idle).
    current: Vec<Option<usize>>,
    /// Per-core simulated clock in cycles.
    clock: Vec<u64>,
    /// Stalled cores hold their in-flight job but execute nothing; their
    /// queued jobs remain stealable.
    stalled: Vec<bool>,
    /// xorshift64 state for victim selection (never zero).
    rng: u64,
    stats: SchedStats,
}

impl Scheduler {
    /// Builds a scheduler for `jobs` invocations over `cores` cores,
    /// dealing job `j` to core `j % cores` (round-robin, like the sharded
    /// runner it replaces) and seeding victim selection with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, jobs: usize, seed: u64) -> Self {
        assert!(cores > 0, "scheduler needs at least one core");
        let mut queues = vec![VecDeque::new(); cores];
        for job in 0..jobs {
            queues[job % cores].push_back(job);
        }
        Scheduler {
            queues,
            current: vec![None; cores],
            clock: vec![0; cores],
            stalled: vec![false; cores],
            rng: seed | 1,
            stats: SchedStats {
                steals: 0,
                per_core_jobs: vec![0; cores],
                per_core_cycles: vec![0; cores],
            },
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64: full-period for any nonzero state.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Gives every idle, unstalled core a job: first from the front of its
    /// own queue, otherwise stolen from the back of a seeded victim's
    /// non-empty queue (stalled victims included — that is the steal-back
    /// path). Cores acquire in index order, so one call is deterministic.
    pub fn acquire_jobs(&mut self) {
        for core in 0..self.queues.len() {
            if self.stalled[core] || self.current[core].is_some() {
                continue;
            }
            let job = match self.queues[core].pop_front() {
                Some(j) => Some(j),
                None => self.steal_for(core),
            };
            if let Some(j) = job {
                self.current[core] = Some(j);
                self.stats.per_core_jobs[core] += 1;
            }
        }
    }

    fn steal_for(&mut self, thief: usize) -> Option<usize> {
        let cores = self.queues.len();
        if self.queues.iter().all(|q| q.is_empty()) {
            return None;
        }
        let start = (self.next_rand() % cores as u64) as usize;
        for k in 0..cores {
            let victim = (start + k) % cores;
            if victim == thief {
                continue;
            }
            if let Some(j) = self.queues[victim].pop_back() {
                self.stats.steals += 1;
                return Some(j);
            }
        }
        None
    }

    /// The core to advance next: the unstalled core with in-flight work
    /// whose simulated clock is lowest (ties break to the lowest index).
    /// `None` when no core can execute right now.
    pub fn next_core(&self) -> Option<usize> {
        (0..self.queues.len())
            .filter(|&c| !self.stalled[c] && self.current[c].is_some())
            .min_by_key(|&c| self.clock[c])
    }

    /// Cores with in-flight work (stalled or not) — the machine's
    /// contention knob: how many cores are co-resident on the shared LLC
    /// and DRAM this instant.
    pub fn active_cores(&self) -> usize {
        self.current.iter().filter(|c| c.is_some()).count()
    }

    /// Advances `core`'s simulated clock by `delta` cycles.
    pub fn advance(&mut self, core: usize, delta: u64) {
        self.clock[core] += delta;
        self.stats.per_core_cycles[core] += delta;
    }

    /// Marks `core`'s in-flight job complete, freeing the core.
    pub fn complete(&mut self, core: usize) {
        debug_assert!(self.current[core].is_some(), "complete on idle core");
        self.current[core] = None;
    }

    /// Stalls `core`: its in-flight job stays pinned but executes nothing
    /// until [`Self::unstall`]; its queued jobs remain stealable.
    pub fn stall(&mut self, core: usize) {
        self.stalled[core] = true;
    }

    /// Clears a stall injected with [`Self::stall`].
    pub fn unstall(&mut self, core: usize) {
        self.stalled[core] = false;
    }

    /// Whether `core` is currently stalled.
    pub fn is_stalled(&self, core: usize) -> bool {
        self.stalled[core]
    }

    /// The job currently pinned to `core`.
    pub fn current(&self, core: usize) -> Option<usize> {
        self.current[core]
    }

    /// `core`'s simulated clock.
    pub fn clock(&self, core: usize) -> u64 {
        self.clock[core]
    }

    /// Jobs still waiting in some core's queue (dealt but not started).
    pub fn queued_jobs(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when every queue is drained and every core is idle.
    pub fn all_done(&self) -> bool {
        self.current.iter().all(|c| c.is_none()) && self.queues.iter().all(|q| q.is_empty())
    }

    /// True when undone work is blocked behind a stalled core — the only
    /// legitimate reason for [`Self::next_core`] to return `None` before
    /// [`Self::all_done`].
    pub fn has_stalled_work(&self) -> bool {
        !self.all_done() && self.stalled.iter().any(|&s| s)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the scheduler with a fixed per-job cost, returning the order
    /// in which (core, job) pairs started.
    fn drain(sched: &mut Scheduler, cost: impl Fn(usize) -> u64) -> Vec<(usize, usize)> {
        let mut started: Vec<(usize, usize)> = Vec::new();
        while !sched.all_done() {
            sched.acquire_jobs();
            let core = sched.next_core().expect("no stalls injected");
            let job = sched.current(core).expect("running core has a job");
            if started.last() != Some(&(core, job)) && !started.contains(&(core, job)) {
                started.push((core, job));
            }
            sched.advance(core, cost(job));
            sched.complete(core);
        }
        started
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let mut sched = Scheduler::new(3, 10, 42);
        let started = drain(&mut sched, |_| 100);
        let mut jobs: Vec<usize> = started.iter().map(|&(_, j)| j).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, (0..10).collect::<Vec<_>>());
        let stats = sched.stats();
        assert_eq!(stats.per_core_jobs.iter().sum::<u64>(), 10);
    }

    #[test]
    fn single_core_runs_in_deal_order_without_steals() {
        let mut sched = Scheduler::new(1, 5, 7);
        let started = drain(&mut sched, |_| 10);
        assert_eq!(
            started,
            (0..5).map(|j| (0, j)).collect::<Vec<_>>(),
            "one core pops its own queue front to back"
        );
        assert_eq!(sched.stats().steals, 0);
    }

    #[test]
    fn uneven_costs_trigger_steals() {
        // Core 0's jobs are free, core 1's are huge: core 0 drains its own
        // deque and then steals core 1's backlog from the back.
        let mut sched = Scheduler::new(2, 8, 1);
        let started = drain(&mut sched, |j| if j % 2 == 0 { 1 } else { 1_000_000 });
        assert_eq!(started.len(), 8);
        assert!(sched.stats().steals > 0, "idle core must steal");
    }

    #[test]
    fn seeded_runs_are_identical_and_seeds_differ() {
        let run = |seed: u64| {
            let mut sched = Scheduler::new(4, 32, seed);
            let started = drain(&mut sched, |j| (j as u64 * 37) % 91 + 1);
            (started, sched.stats().clone())
        };
        let (a1, s1) = run(9);
        let (a2, s2) = run(9);
        assert_eq!(a1, a2, "same seed, same interleaving");
        assert_eq!(s1, s2);
    }

    #[test]
    fn stalled_core_keeps_job_pinned_but_loses_queue() {
        // Deal: core 0 gets jobs {0, 2}, core 1 gets jobs {1, 3}.
        let mut sched = Scheduler::new(2, 4, 3);
        sched.acquire_jobs();
        assert_eq!(sched.current(0), Some(0));
        assert_eq!(sched.current(1), Some(1));
        sched.stall(0);
        assert_eq!(sched.next_core(), Some(1), "only core 1 runs");
        // Core 1 drains its own queue, then steals job 2 back from the
        // stalled core's queue.
        for expect in [3usize, 2] {
            sched.advance(1, 10);
            sched.complete(1);
            sched.acquire_jobs();
            assert_eq!(sched.current(1), Some(expect));
        }
        assert_eq!(sched.stats().steals, 1, "job 2 was stolen back");
        // Core 0's in-flight job 0 stays pinned through the stall; once
        // core 1 finishes, only unstalling lets the batch complete.
        assert_eq!(sched.current(0), Some(0));
        sched.advance(1, 10);
        sched.complete(1);
        sched.acquire_jobs();
        assert_eq!(sched.next_core(), None);
        assert!(sched.has_stalled_work());
        assert!(!sched.all_done());
        sched.unstall(0);
        assert_eq!(sched.next_core(), Some(0));
        sched.advance(0, 10);
        sched.complete(0);
        assert!(sched.all_done());
    }

    #[test]
    fn wedge_is_detectable() {
        let mut sched = Scheduler::new(1, 1, 1);
        sched.acquire_jobs();
        sched.stall(0);
        assert_eq!(sched.next_core(), None);
        assert!(sched.has_stalled_work());
        assert!(!sched.all_done());
    }
}
