//! System configurations for every evaluated design point.

use memento_cache::MemSystemConfig;
use memento_core::device::MementoConfig;
use memento_kernel::costs::KernelCosts;
use memento_sanitizer::SanitizerConfig;

/// Observability settings: where the Perfetto trace goes and how often the
/// heap profiler samples. Enabling tracing is untimed and cycle-invisible —
/// simulated statistics are byte-identical with or without it.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceConfig {
    /// Where to write the Chrome/Perfetto `trace_event` JSON at run end;
    /// `None` keeps the trace in memory (inspect via `Machine::tracer`).
    pub path: Option<std::path::PathBuf>,
    /// Take one heap-profile sample per core every this many simulated
    /// cycles.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            path: None,
            sample_every: 100_000,
        }
    }
}

/// Which memory-management design the machine runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mode {
    /// The software stack: language allocator + kernel (the paper's
    /// baseline).
    Baseline,
    /// The Memento hardware (with its own feature toggles).
    Memento(MementoConfig),
    /// §6.7: an idealized Mallacc — userspace malloc acceleration with a
    /// zero-latency, always-hitting cache; kernel costs unchanged; C++
    /// only in the paper, but the machine will run any workload.
    IdealMallacc,
}

/// A complete system configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Memory-management design point.
    pub mode: Mode,
    /// Cache/DRAM geometry (Table 3 defaults; the iso-storage study swaps
    /// the L1D).
    pub mem: MemSystemConfig,
    /// Kernel cost model.
    pub kernel_costs: KernelCosts,
    /// Pass `MAP_POPULATE` to every allocator mmap (§6.6 study).
    pub populate: bool,
    /// Cycles per instruction for plain application compute (4-issue OOO
    /// abstraction: 0.5).
    pub cpi: f64,
    /// Memory-level-parallelism discount on *application data accesses*:
    /// an out-of-order core overlaps independent loads/stores, so only
    /// this fraction of their latency lands on the critical path.
    /// Allocator metadata walks and kernel work stay fully serialized
    /// (pointer chases and privileged code don't overlap).
    pub touch_overlap: f64,
    /// Simulated physical memory in bytes.
    pub phys_mem_bytes: u64,
    /// Cores (each with private L1/L2/TLB/HOT).
    pub cores: usize,
    /// Fixed container-setup cycles prepended to the run (cold starts,
    /// §6.6); zero for the default warm-start methodology.
    pub coldstart_cycles: u64,
    /// The paper's §4 future-work extension: an enhanced GC that uses
    /// Memento to *proactively* free dead ephemeral objects at death time
    /// (via `obj-free`) instead of deferring them to the next mark-sweep
    /// cycle, trading a little obj-free work for lower cache pressure.
    /// Only meaningful for GC'd runtimes under Memento.
    pub proactive_gc_free: bool,
    /// Shadow-heap sanitizer (Memento modes only). `None` is zero-cost:
    /// the device logs no events and no shadow state exists. `Some` turns
    /// on untimed auditing — simulated statistics are byte-identical
    /// either way.
    pub sanitizer: Option<SanitizerConfig>,
    /// Cycle-attributed tracing + metrics + heap profiling. `None` is
    /// zero-cost (no spans recorded, no samples taken). `Some` records a
    /// Perfetto trace and a metrics appendix — untimed, so simulated
    /// statistics are byte-identical either way.
    pub trace: Option<TraceConfig>,
}

impl SystemConfig {
    /// The paper's baseline system.
    pub fn baseline() -> Self {
        SystemConfig {
            mode: Mode::Baseline,
            mem: MemSystemConfig::paper_default(1),
            kernel_costs: KernelCosts::calibrated(),
            populate: false,
            cpi: 0.5,
            touch_overlap: 0.4,
            phys_mem_bytes: 2 << 30,
            cores: 1,
            coldstart_cycles: 0,
            proactive_gc_free: false,
            sanitizer: None,
            trace: None,
        }
    }

    /// This configuration with tracing on, writing the Perfetto JSON to
    /// `path` when the run finishes.
    pub fn traced(self, path: impl Into<std::path::PathBuf>) -> Self {
        SystemConfig {
            trace: Some(TraceConfig {
                path: Some(path.into()),
                ..TraceConfig::default()
            }),
            ..self
        }
    }

    /// This configuration with tracing on but no output file — the trace
    /// and metrics stay readable on the machine (used by tests).
    pub fn traced_in_memory(self) -> Self {
        SystemConfig {
            trace: Some(TraceConfig::default()),
            ..self
        }
    }

    /// The full Memento system (paper defaults: bypass on).
    pub fn memento() -> Self {
        SystemConfig {
            mode: Mode::Memento(MementoConfig::paper_default()),
            ..Self::baseline()
        }
    }

    /// Memento with the main-memory bypass disabled (Fig. 9/10 component
    /// attribution).
    pub fn memento_no_bypass() -> Self {
        SystemConfig {
            mode: Mode::Memento(MementoConfig {
                bypass_enabled: false,
                ..MementoConfig::paper_default()
            }),
            ..Self::baseline()
        }
    }

    /// §6.1 iso-storage: baseline whose L1D gets the HOT's SRAM (36 KB,
    /// 9-way).
    pub fn iso_storage() -> Self {
        SystemConfig {
            mem: MemSystemConfig::iso_storage(1),
            ..Self::baseline()
        }
    }

    /// §6.7 idealized Mallacc.
    pub fn ideal_mallacc() -> Self {
        SystemConfig {
            mode: Mode::IdealMallacc,
            ..Self::baseline()
        }
    }

    /// The §4 future-work extension: Memento plus a GC that proactively
    /// frees dead ephemeral objects through `obj-free`.
    pub fn memento_proactive_gc() -> Self {
        SystemConfig {
            proactive_gc_free: true,
            ..Self::memento()
        }
    }

    /// Memento with the shadow-heap sanitizer auditing every run.
    pub fn memento_sanitized() -> Self {
        SystemConfig {
            sanitizer: Some(SanitizerConfig::default()),
            ..Self::memento()
        }
    }

    /// Sanitized Memento plus the softalloc differential oracle (slowest,
    /// strongest checking — used by the differential test suite).
    pub fn memento_sanitized_oracle() -> Self {
        SystemConfig {
            sanitizer: Some(SanitizerConfig::with_oracle()),
            ..Self::memento()
        }
    }

    /// §6.6 `MAP_POPULATE` baseline.
    pub fn baseline_populate() -> Self {
        SystemConfig {
            populate: true,
            ..Self::baseline()
        }
    }

    /// This configuration with `n` cores. Each core gets a private
    /// L1I/L1D/L2, TLB, page walker, and (under Memento) HOT; the LLC,
    /// DRAM, kernel, and the hardware page pool stay shared. With `n = 1`
    /// the machine is identical to the single-core configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_cores(self, n: usize) -> Self {
        assert!(n > 0, "a machine needs at least one core");
        let mut mem = self.mem;
        mem.cores = n;
        SystemConfig {
            cores: n,
            mem,
            ..self
        }
    }

    /// Whether this configuration runs the Memento hardware.
    pub fn is_memento(&self) -> bool {
        matches!(self.mode, Mode::Memento(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        assert!(!SystemConfig::baseline().is_memento());
        assert!(SystemConfig::memento().is_memento());
        assert!(SystemConfig::memento().sanitizer.is_none());
        assert!(SystemConfig::memento_sanitized().is_memento());
        assert_eq!(
            SystemConfig::memento_sanitized().sanitizer,
            Some(SanitizerConfig::default())
        );
        assert!(SystemConfig::memento_sanitized_oracle()
            .sanitizer
            .is_some_and(|s| s.oracle));
        assert!(SystemConfig::baseline_populate().populate);
        assert!(SystemConfig::memento().trace.is_none());
        let traced = SystemConfig::memento().traced("/tmp/t.json");
        assert_eq!(
            traced.trace.as_ref().and_then(|t| t.path.clone()),
            Some(std::path::PathBuf::from("/tmp/t.json"))
        );
        assert!(SystemConfig::baseline().traced_in_memory().trace.is_some());
        assert_eq!(SystemConfig::iso_storage().mem.l1d.size_bytes, 36 * 1024);
        match SystemConfig::memento_no_bypass().mode {
            Mode::Memento(cfg) => assert!(!cfg.bypass_enabled),
            _ => panic!("expected memento mode"),
        }
    }

    #[test]
    fn baseline_matches_table3() {
        let cfg = SystemConfig::baseline();
        assert_eq!(cfg.mem.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.mem.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.mem.llc.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.cpi, 0.5);
    }
}
