//! Machine-side observability: glue between the simulation loop and
//! [`memento_obs`].
//!
//! [`MachineObs`] exists only when [`crate::SystemConfig`] carries a
//! [`crate::TraceConfig`]; when absent the machine takes the exact same
//! code paths and the layer costs nothing. When present it mirrors every
//! cycle charge into a [`Tracer`] span (one track per core) and into its
//! own [`CycleAccount`] ledger, so the exported Perfetto trace reconciles
//! with the machine's reported cycle totals *by construction*: each charge
//! becomes exactly one span of the same length.
//!
//! The ledger covers the whole execution. For steady-state runs
//! ([`crate::Machine::run_steady`]) the run's own account is reset at the
//! measurement boundary while the trace keeps the warm-up — a trace that
//! dropped its first half would be useless for profiling.
//!
//! Span vocabulary (`cat: "charge"`): `user` (application compute and data
//! access), `mm` (allocator fast paths, software and hardware),
//! `hot_miss` (hardware alloc/free that missed the HOT), `walk`
//! (Memento page-table work), `arena_fill` (arena handout/reclaim in the
//! hardware page allocator), `kernel` (kernel memory management), `gc`
//! (Go mark phase), `setup` (container bring-up). A scoped `gc` phase span
//! (`cat: "phase"`) additionally brackets whole collections.

use crate::config::TraceConfig;
use memento_core::device::DeviceEvent;
use memento_obs::{MetricsRegistry, ProfileSample, Tracer};
use memento_simcore::cycles::{CycleAccount, CycleBucket, Cycles};

/// Per-machine observability state (tracer + metrics + profile samples).
#[derive(Debug)]
pub struct MachineObs {
    cfg: TraceConfig,
    tracer: Tracer,
    metrics: MetricsRegistry,
    samples: Vec<ProfileSample>,
    next_due: Vec<u64>,
    account: CycleAccount,
}

impl MachineObs {
    /// Builds the layer for a machine with `cores` cores.
    pub fn new(cfg: TraceConfig, cores: usize) -> Self {
        MachineObs {
            tracer: Tracer::new(cores),
            metrics: MetricsRegistry::default(),
            samples: Vec::new(),
            next_due: vec![cfg.sample_every; cores],
            account: CycleAccount::new(),
            cfg,
        }
    }

    /// The trace configuration in force.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Mirrors one cycle charge: ledger entry plus one trace span.
    pub fn charge(
        &mut self,
        core: usize,
        bucket: CycleBucket,
        label: &'static str,
        cycles: Cycles,
    ) {
        self.account.charge(bucket, cycles);
        self.tracer.span(core, label, cycles);
    }

    /// Consumes a batch of drained device events into counters.
    pub fn on_device_events(&mut self, events: &[DeviceEvent]) {
        for e in events {
            match e {
                DeviceEvent::ArenaInstalled { .. } => self.metrics.add("device.arena_installs", 1),
                DeviceEvent::ArenaReclaimed { .. } => self.metrics.add("device.arena_reclaims", 1),
                DeviceEvent::HeaderInvalidated { .. } => {
                    self.metrics.add("device.header_invalidations", 1)
                }
                DeviceEvent::PmParked { .. } => self.metrics.add("device.pm_parks", 1),
                DeviceEvent::PmRestored { .. } => self.metrics.add("device.pm_restores", 1),
            }
        }
    }

    /// Whether `core` has crossed its next sampling threshold.
    pub fn sample_due(&self, core: usize) -> bool {
        self.tracer.now(core) >= self.next_due[core]
    }

    /// Records a heap-profile sample and mirrors it onto the trace's
    /// counter tracks; re-arms the core's sampling threshold.
    pub fn push_sample(&mut self, s: ProfileSample) {
        self.tracer.sample(s.core, "live_bytes", s.live_bytes);
        self.tracer.sample(s.core, "pool_frames", s.pool_frames);
        self.tracer.sample(s.core, "hot_resident", s.hot_resident);
        self.next_due[s.core] = self.tracer.now(s.core) + self.cfg.sample_every;
        self.samples.push(s);
    }

    /// The mirrored cycle ledger (reconciles with the tracer's spans).
    pub fn account(&self) -> &CycleAccount {
        &self.account
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (phase spans, fault-injection tests).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable registry access (layer-stat ingest).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Heap-profile samples taken so far.
    pub fn samples(&self) -> &[ProfileSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_mirrors_ledger_and_span() {
        let mut obs = MachineObs::new(TraceConfig::default(), 1);
        obs.charge(0, CycleBucket::Compute, "user", Cycles::new(100));
        obs.charge(0, CycleBucket::KernelMm, "kernel", Cycles::new(40));
        assert_eq!(obs.account().get(CycleBucket::Compute), Cycles::new(100));
        assert_eq!(obs.tracer().total_charged(), 140);
        assert_eq!(obs.tracer().charge_totals().get("kernel"), Some(&40));
    }

    #[test]
    fn sampling_rearms_per_core() {
        let mut obs = MachineObs::new(
            TraceConfig {
                sample_every: 50,
                ..TraceConfig::default()
            },
            2,
        );
        assert!(!obs.sample_due(0));
        obs.charge(0, CycleBucket::Compute, "user", Cycles::new(60));
        assert!(obs.sample_due(0));
        assert!(!obs.sample_due(1), "core 1 clock has not advanced");
        obs.push_sample(ProfileSample {
            core: 0,
            cycles: 60,
            live_bytes: 1,
            pool_frames: 0,
            hot_resident: 0,
        });
        assert!(!obs.sample_due(0), "threshold re-armed");
        assert_eq!(obs.samples().len(), 1);
    }
}
