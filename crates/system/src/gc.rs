//! Go garbage-collection policy.
//!
//! The Go runtime never calls free: objects die and wait for a mark-sweep
//! cycle triggered when the live heap doubles (GOGC=100), with a minimum
//! heap goal. Short-lived functions stay below the 4 MB minimum, so GC
//! never runs and everything is batch-freed at exit (paper §2.2). The
//! long-running platform services run in a regime where GC fires
//! periodically — modeled with a lower minimum over the simulated segment.

use memento_simcore::addr::VirtAddr;
use memento_workloads::spec::Category;

/// GC policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcPolicy {
    /// Minimum heap bytes before the first collection.
    pub min_heap: u64,
    /// Growth ratio that triggers a collection (GOGC=100 → 2.0 → trigger
    /// at twice the live heap after the previous cycle).
    pub growth_num: u64,
    /// Denominator of the growth ratio.
    pub growth_den: u64,
}

impl GcPolicy {
    /// Policy for a workload category: functions use Go defaults (4 MB
    /// minimum, so GC never fires in a short function); long-running
    /// platform/data services use a segment-scaled minimum so collections
    /// appear in the simulated window.
    pub fn for_category(cat: Category) -> Self {
        match cat {
            Category::Function => GcPolicy {
                min_heap: 4 << 20,
                growth_num: 2,
                growth_den: 1,
            },
            Category::Platform | Category::DataProc => GcPolicy {
                min_heap: 128 << 10,
                growth_num: 2,
                growth_den: 1,
            },
        }
    }
}

/// Deferred-death bookkeeping for a Go process.
#[derive(Clone, Debug)]
pub struct GoGcState {
    policy: GcPolicy,
    /// Objects marked dead, waiting for a sweep: (address, size).
    pub dead: Vec<(VirtAddr, u32)>,
    /// Live heap bytes (allocated − collected).
    pub live_bytes: u64,
    /// Live object count (for mark cost).
    pub live_objects: u64,
    /// Dead bytes awaiting sweep.
    pub dead_bytes: u64,
    /// Heap size that triggers the next collection.
    pub next_gc: u64,
    /// Collections performed.
    pub collections: u64,
}

impl GoGcState {
    /// Fresh state under `policy`.
    pub fn new(policy: GcPolicy) -> Self {
        GoGcState {
            policy,
            dead: Vec::new(),
            live_bytes: 0,
            live_objects: 0,
            dead_bytes: 0,
            next_gc: policy.min_heap,
            collections: 0,
        }
    }

    /// Records an allocation.
    pub fn on_alloc(&mut self, size: u32) {
        self.live_bytes += size as u64;
        self.live_objects += 1;
    }

    /// Records an object death (Go "free").
    pub fn on_death(&mut self, addr: VirtAddr, size: u32) {
        self.dead.push((addr, size));
        self.dead_bytes += size as u64;
    }

    /// Whether a collection should run now.
    pub fn should_collect(&self) -> bool {
        self.live_bytes >= self.next_gc
    }

    /// Begins a collection: returns the dead set to sweep and updates
    /// accounting. The caller performs the actual frees (software or
    /// Memento `obj-free`).
    pub fn begin_collection(&mut self) -> Vec<(VirtAddr, u32)> {
        self.collections += 1;
        let swept = std::mem::take(&mut self.dead);
        self.live_bytes = self.live_bytes.saturating_sub(self.dead_bytes);
        self.live_objects = self.live_objects.saturating_sub(swept.len() as u64);
        self.dead_bytes = 0;
        self.next_gc = (self.live_bytes * self.policy.growth_num / self.policy.growth_den)
            .max(self.policy.min_heap);
        swept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_never_collect_small_heaps() {
        let mut gc = GoGcState::new(GcPolicy::for_category(Category::Function));
        for i in 0..10_000 {
            gc.on_alloc(64);
            if i % 2 == 0 {
                gc.on_death(VirtAddr::new(i), 64);
            }
        }
        // 640 KB allocated — far below the 4 MB minimum.
        assert!(!gc.should_collect());
        assert_eq!(gc.collections, 0);
    }

    #[test]
    fn platform_services_collect() {
        let mut gc = GoGcState::new(GcPolicy::for_category(Category::Platform));
        let mut collected = 0;
        for i in 0..20_000u64 {
            gc.on_alloc(64);
            gc.on_death(VirtAddr::new(i * 64), 64);
            if gc.should_collect() {
                let swept = gc.begin_collection();
                collected += swept.len();
            }
        }
        assert!(gc.collections >= 1, "platform segment must collect");
        assert!(collected > 0);
    }

    #[test]
    fn collection_resets_trigger() {
        let mut gc = GoGcState::new(GcPolicy {
            min_heap: 1000,
            growth_num: 2,
            growth_den: 1,
        });
        for i in 0..20u64 {
            gc.on_alloc(100);
            gc.on_death(VirtAddr::new(i * 100), 100);
        }
        assert!(gc.should_collect());
        let swept = gc.begin_collection();
        assert_eq!(swept.len(), 20);
        assert_eq!(gc.live_bytes, 0);
        assert_eq!(gc.next_gc, 1000, "floor at min heap");
        assert!(!gc.should_collect());
    }
}
