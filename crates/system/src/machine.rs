//! The simulated machine: executes workload traces against a configured
//! memory-management design and produces [`RunStats`].

use crate::config::{Mode, SystemConfig};
use crate::gc::{GcPolicy, GoGcState};
use crate::observe::MachineObs;
use crate::scheduler::{SchedStats, Scheduler};
use crate::stats::RunStats;
use memento_cache::{AccessKind, MemSystem};
use memento_core::device::{DeviceEvent, MementoDevice, MementoProcess};
use memento_core::page_alloc::PoolBackend;
use memento_core::region::MementoRegion;
use memento_kernel::access::demand_access;
use memento_kernel::buddy::FrameUse;
use memento_kernel::kernel::{Kernel, Process};
use memento_obs::{Log2Hist, ProfileSample};
use memento_sanitizer::{HeapSanitizer, SanitizerReport, ShadowPid};
use memento_simcore::addr::{VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE};
use memento_simcore::cycles::{CycleAccount, CycleBucket, Cycles};
use memento_simcore::physmem::{Frame, PhysMem};
use memento_softalloc::go::GoAlloc;
use memento_softalloc::je::{JeConfig, JeMalloc};
use memento_softalloc::py::PyMalloc;
use memento_softalloc::traits::{AllocCtx, SoftwareAllocator};
use memento_vm::tlb::Tlb;
use memento_vm::walker::PageWalker;
use memento_workloads::event::{Event, Trace};
use memento_workloads::generator::generate;
use memento_workloads::spec::{AllocatorKind, Language, WorkloadSpec};
use std::collections::HashMap;

/// Memento's threshold: requests above this go to the software allocator.
const HW_MAX_SIZE: usize = 512;

/// Mark cost per live object during a Go GC cycle (cycles).
const GC_MARK_PER_OBJECT: u64 = 9;

/// OS adapter implementing the Memento pool backend over the kernel buddy
/// allocator.
struct OsBackend<'a> {
    kernel: &'a mut Kernel,
}

impl PoolBackend for OsBackend<'_> {
    fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
        match self.kernel.grant_pool_frames(n) {
            Ok((frames, _cycles)) => frames,
            Err(_) => Vec::new(),
        }
    }

    fn accept_frames(&mut self, frames: &[Frame]) {
        // Returned frames earn re-grant credit so warm reuse is counted
        // as recycling, not fresh OS allocation.
        self.kernel.accept_pool_frames(frames);
    }
}

/// Snapshot of machine-level counters, used to measure only the
/// steady-state portion of long-running workloads (the paper measures
/// data-processing and platform services "at the steady state", §5).
#[derive(Clone)]
struct StatSnapshot {
    mem: memento_cache::MemSystemStats,
    kernel: memento_kernel::kernel::KernelStats,
    frames: memento_kernel::buddy::FrameStats,
    soft: memento_softalloc::traits::SoftAllocStats,
    hot: Option<memento_core::hot::HotStats>,
    page: Option<memento_core::page_alloc::PageAllocStats>,
    obj: Option<memento_core::device::ObjStats>,
}

/// Result of a warm multi-invocation run (see [`Machine::run_invocations`]).
pub struct WarmRun {
    /// Statistics over the steady-state window: invocations `1..n` as one
    /// delta, excluding the cold start and the final container teardown.
    pub steady: RunStats,
    /// Per-invocation statistics (index 0 is the cold invocation).
    pub invocations: Vec<RunStats>,
}

/// Per-run (per-process) execution state.
pub struct FunctionRun {
    spec: WorkloadSpec,
    proc: Process,
    mproc: Option<MementoProcess>,
    shadow_pid: Option<ShadowPid>,
    soft: Box<dyn SoftwareAllocator>,
    objects: HashMap<u64, (VirtAddr, u32)>,
    gc: Option<GoGcState>,
    account: CycleAccount,
    gc_runs: u64,
    allocs_seen: u64,
    frag_live: u64,
    frag_total: u64,
    snapshot: Option<StatSnapshot>,
    finished: bool,
    live_bytes: u64,
    // Malloc-free distance bookkeeping, maintained only when tracing is on.
    alloc_seq: u64,
    born: HashMap<u64, u64>,
}

/// Sample arena occupancy every this many allocations (fragmentation
/// study §6.6 measures slot utilization during execution).
const FRAG_SAMPLE_EVERY: u64 = 2048;

impl FunctionRun {
    /// The cycle ledger accumulated so far.
    pub fn account(&self) -> &CycleAccount {
        &self.account
    }
}

fn build_allocator(spec: &WorkloadSpec, populate: bool) -> Box<dyn SoftwareAllocator> {
    let flags = memento_kernel::kernel::MmapFlags { populate };
    match spec.allocator {
        AllocatorKind::PyMalloc => Box::new(PyMalloc::with_flags(flags)),
        AllocatorKind::PyMallocTuned { arena_kb } => {
            Box::new(PyMalloc::with_arena_bytes(flags, arena_kb * 1024))
        }
        AllocatorKind::JeMalloc {
            pool_kb,
            prefault_pages,
        } => Box::new(JeMalloc::with_config(JeConfig {
            pool_bytes: pool_kb * 1024,
            prefault_pages,
            flags,
        })),
        AllocatorKind::GoAlloc => Box::new(GoAlloc::with_flags(flags)),
    }
}

/// The simulated machine.
pub struct Machine {
    cfg: SystemConfig,
    mem: PhysMem,
    mem_sys: MemSystem,
    tlbs: Vec<Tlb>,
    walkers: Vec<PageWalker>,
    kernel: Kernel,
    device: Option<MementoDevice>,
    san: Option<HeapSanitizer>,
    obs: Option<MachineObs>,
}

impl Machine {
    /// Builds a machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is too small to boot.
    pub fn new(cfg: SystemConfig) -> Self {
        let mut mem = PhysMem::new(cfg.phys_mem_bytes);
        // Reserve the AAC pointer block before the kernel takes over the
        // rest of physical memory.
        let pointer_block = mem.alloc_frame().expect("boot frame").base_addr();
        let kernel = Kernel::boot(&mut mem, cfg.kernel_costs);
        let mut device = match cfg.mode {
            Mode::Memento(mcfg) => Some(MementoDevice::new(mcfg, cfg.cores, pointer_block)),
            _ => None,
        };
        // The sanitizer only has hardware to shadow in Memento modes; when
        // off, the device logs no events and nothing below changes.
        let san = match (device.as_mut(), cfg.sanitizer) {
            (Some(dev), Some(scfg)) => {
                dev.record_events(true);
                Some(HeapSanitizer::new(scfg))
            }
            _ => None,
        };
        // Observability mirrors charges into a tracer/metrics registry; the
        // device's arena-lifecycle events feed its counters (untimed).
        let obs = cfg.trace.clone().map(|tc| MachineObs::new(tc, cfg.cores));
        if let (Some(dev), true) = (device.as_mut(), obs.is_some()) {
            dev.record_events(true);
        }
        Machine {
            mem_sys: MemSystem::new(cfg.mem.clone()),
            tlbs: (0..cfg.cores).map(|_| Tlb::default()).collect(),
            walkers: (0..cfg.cores).map(|_| PageWalker::new()).collect(),
            kernel,
            device,
            san,
            obs,
            mem,
            cfg,
        }
    }

    /// The observability layer (`None` unless the config enables tracing).
    pub fn observability(&self) -> Option<&MachineObs> {
        self.obs.as_ref()
    }

    /// Mutable observability access (phase spans, fault-injection tests).
    pub fn observability_mut(&mut self) -> Option<&mut MachineObs> {
        self.obs.as_mut()
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The sanitizer report accumulated so far (`None` unless the config
    /// enables the sanitizer on a Memento machine).
    pub fn sanitizer_report(&self) -> Option<&SanitizerReport> {
        self.san.as_ref().map(|s| s.report())
    }

    /// Starts a run of `spec`: creates the process and allocator state.
    pub fn start(&mut self, spec: &WorkloadSpec) -> FunctionRun {
        let proc = self.kernel.create_process(&mut self.mem);
        let mproc = self.device.as_mut().map(|dev| {
            let mut backend = OsBackend {
                kernel: &mut self.kernel,
            };
            dev.attach_process(&mut self.mem, &mut backend, MementoRegion::standard())
                .expect("attach with OS-backed pool")
        });
        let shadow_pid = match (self.san.as_mut(), mproc.as_ref()) {
            (Some(san), Some(mp)) => Some(san.attach(mp.region())),
            _ => None,
        };
        let mut account = CycleAccount::new();
        if self.cfg.coldstart_cycles > 0 {
            account.charge(CycleBucket::Setup, Cycles::new(self.cfg.coldstart_cycles));
            if let Some(obs) = self.obs.as_mut() {
                // The run is not yet pinned to a core; attribute bring-up
                // to track 0 (totals are what reconciliation checks).
                obs.charge(
                    0,
                    CycleBucket::Setup,
                    "setup",
                    Cycles::new(self.cfg.coldstart_cycles),
                );
            }
        }
        let gc = (spec.language == Language::Golang)
            .then(|| GoGcState::new(GcPolicy::for_category(spec.category)));
        FunctionRun {
            spec: spec.clone(),
            proc,
            mproc,
            shadow_pid,
            soft: build_allocator(spec, self.cfg.populate),
            objects: HashMap::new(),
            gc,
            account,
            gc_runs: 0,
            allocs_seen: 0,
            frag_live: 0,
            frag_total: 0,
            snapshot: None,
            finished: false,
            live_bytes: 0,
            alloc_seq: 0,
            born: HashMap::new(),
        }
    }

    /// Marks the start of the measured (steady-state) window for `run`:
    /// counters accumulated so far are treated as warm-up and excluded
    /// from the collected statistics.
    pub fn begin_measurement(&self, run: &mut FunctionRun) {
        run.account = CycleAccount::new();
        run.gc_runs = 0;
        run.frag_live = 0;
        run.frag_total = 0;
        run.snapshot = Some(StatSnapshot {
            mem: self.mem_sys.stats(),
            kernel: self.kernel.stats(),
            frames: self.kernel.frame_stats().clone(),
            soft: run.soft.stats(),
            hot: self.device.as_ref().map(|d| d.hot_stats_total()),
            page: self.device.as_ref().map(|d| d.page_stats()),
            obj: self.device.as_ref().map(|d| d.obj_stats()),
        });
    }

    fn soft_ctx<'a>(
        kernel: &'a mut Kernel,
        walker: &'a mut PageWalker,
        mem: &'a mut PhysMem,
        mem_sys: &'a mut MemSystem,
        tlb: &'a mut Tlb,
        proc: &'a mut Process,
        core: usize,
    ) -> AllocCtx<'a> {
        AllocCtx {
            kernel,
            walker,
            mem,
            mem_sys,
            tlb,
            proc,
            core,
        }
    }

    /// Executes one software allocation, applying the Mallacc idealization
    /// when configured.
    fn soft_alloc(&mut self, run: &mut FunctionRun, core: usize, size: usize) -> VirtAddr {
        let mut ctx = Self::soft_ctx(
            &mut self.kernel,
            &mut self.walkers[core],
            &mut self.mem,
            &mut self.mem_sys,
            &mut self.tlbs[core],
            &mut run.proc,
            core,
        );
        let out = run.soft.alloc(&mut ctx, size);
        let mut user = out.user_cycles;
        if matches!(self.cfg.mode, Mode::IdealMallacc) && size <= HW_MAX_SIZE {
            // §6.7: zero-latency, always-hitting malloc acceleration.
            user = Cycles::new(user.raw().min(1));
        }
        run.account.charge(CycleBucket::UserAlloc, user);
        run.account.charge(CycleBucket::KernelMm, out.kernel_cycles);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::UserAlloc, "mm", user);
            obs.charge(core, CycleBucket::KernelMm, "kernel", out.kernel_cycles);
        }
        out.addr
    }

    fn soft_free(&mut self, run: &mut FunctionRun, core: usize, addr: VirtAddr, size: usize) {
        let mut ctx = Self::soft_ctx(
            &mut self.kernel,
            &mut self.walkers[core],
            &mut self.mem,
            &mut self.mem_sys,
            &mut self.tlbs[core],
            &mut run.proc,
            core,
        );
        let out = run.soft.free(&mut ctx, addr, size);
        let mut user = out.user_cycles;
        if matches!(self.cfg.mode, Mode::IdealMallacc) && size <= HW_MAX_SIZE {
            user = Cycles::new(user.raw().min(1));
        }
        run.account.charge(CycleBucket::UserFree, user);
        run.account.charge(CycleBucket::KernelMm, out.kernel_cycles);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::UserFree, "mm", user);
            obs.charge(core, CycleBucket::KernelMm, "kernel", out.kernel_cycles);
        }
    }

    fn hw_alloc(&mut self, run: &mut FunctionRun, core: usize, size: usize) -> VirtAddr {
        let dev = self.device.as_mut().expect("memento mode");
        let mproc = run.mproc.as_mut().expect("memento process");
        let mut backend = OsBackend {
            kernel: &mut self.kernel,
        };
        let out = dev
            .obj_alloc(
                &mut self.mem,
                &mut self.mem_sys,
                &mut backend,
                core,
                mproc,
                size,
            )
            .expect("hardware alloc within 512B");
        run.account.charge(CycleBucket::HwAlloc, out.obj_cycles);
        run.account.charge(CycleBucket::HwPage, out.page_cycles);
        // Drain device events once and fan them out to every consumer.
        let events = if self.obs.is_some() || run.shadow_pid.is_some() {
            dev.take_events()
        } else {
            Vec::new()
        };
        if let Some(obs) = self.obs.as_mut() {
            let label = if out.hot_hit { "mm" } else { "hot_miss" };
            obs.charge(core, CycleBucket::HwAlloc, label, out.obj_cycles);
            let fill = events
                .iter()
                .any(|e| matches!(e, DeviceEvent::ArenaInstalled { .. }));
            let page_label = if fill { "arena_fill" } else { "walk" };
            obs.charge(core, CycleBucket::HwPage, page_label, out.page_cycles);
            obs.on_device_events(&events);
            obs.metrics_mut()
                .observe("hot.alloc_cycles", out.obj_cycles.raw());
        }
        if let Some(pid) = run.shadow_pid {
            let san = self.san.as_mut().expect("shadow pid implies sanitizer");
            san.on_device_events(pid, events);
            san.on_obj_alloc(pid, core, out.addr, size);
            if san.audit_due(pid) {
                san.audit(pid, dev, mproc, &self.mem);
            }
        }
        out.addr
    }

    fn hw_free(&mut self, run: &mut FunctionRun, core: usize, addr: VirtAddr) {
        let dev = self.device.as_mut().expect("memento mode");
        let mproc = run.mproc.as_mut().expect("memento process");
        let mut backend = OsBackend {
            kernel: &mut self.kernel,
        };
        let out = dev
            .obj_free(
                &mut self.mem,
                &mut self.mem_sys,
                &mut backend,
                &mut self.tlbs,
                core,
                mproc,
                addr,
            )
            .expect("hardware free of live object");
        run.account.charge(CycleBucket::HwFree, out.obj_cycles);
        run.account.charge(CycleBucket::HwPage, out.page_cycles);
        let events = if self.obs.is_some() || run.shadow_pid.is_some() {
            dev.take_events()
        } else {
            Vec::new()
        };
        if let Some(obs) = self.obs.as_mut() {
            let label = if out.hot_hit { "mm" } else { "hot_miss" };
            obs.charge(core, CycleBucket::HwFree, label, out.obj_cycles);
            let reclaim = events
                .iter()
                .any(|e| matches!(e, DeviceEvent::ArenaReclaimed { .. }));
            let page_label = if reclaim { "arena_fill" } else { "walk" };
            obs.charge(core, CycleBucket::HwPage, page_label, out.page_cycles);
            obs.on_device_events(&events);
            obs.metrics_mut()
                .observe("hot.free_cycles", out.obj_cycles.raw());
        }
        if let Some(pid) = run.shadow_pid {
            let san = self.san.as_mut().expect("shadow pid implies sanitizer");
            san.on_device_events(pid, events);
            san.on_obj_free(pid, core, addr);
            if san.audit_due(pid) {
                san.audit(pid, dev, mproc, &self.mem);
            }
        }
    }

    /// One demand data access at `va` for a run, honouring the configured
    /// design (baseline fault path vs. Memento walk + bypass).
    fn data_access(&mut self, run: &mut FunctionRun, core: usize, va: VirtAddr, write: bool) {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let in_region = run
            .mproc
            .as_ref()
            .map(|mp| mp.region().contains(va))
            .unwrap_or(false);

        let overlap = self.cfg.touch_overlap;
        let discount = |c: Cycles| Cycles::new((c.raw() as f64 * overlap).ceil() as u64);
        if !in_region {
            // Baseline path (also used for software-managed memory under
            // Memento). The data access itself is discounted by the MLP
            // factor; translation/fault work stays on the critical path.
            let acc = demand_access(
                &mut self.kernel,
                &mut self.walkers[core],
                &mut self.mem,
                &mut self.mem_sys,
                &mut self.tlbs[core],
                core,
                &mut run.proc,
                va,
                kind,
            )
            .expect("data access within mapped memory");
            let serial = acc.user_cycles - acc.access_cycles;
            run.account
                .charge(CycleBucket::Compute, serial + discount(acc.access_cycles));
            run.account.charge(CycleBucket::KernelMm, acc.kernel_cycles);
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(
                    core,
                    CycleBucket::Compute,
                    "user",
                    serial + discount(acc.access_cycles),
                );
                obs.charge(core, CycleBucket::KernelMm, "kernel", acc.kernel_cycles);
            }
            return;
        }

        // Memento region: TLB → Memento walk (never faults) → bypass check.
        let dev = self.device.as_mut().expect("memento mode");
        let mproc = run.mproc.as_mut().expect("memento process");
        let lookup = self.tlbs[core].lookup(va);
        run.account.charge(CycleBucket::Compute, lookup.cycles);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::Compute, "user", lookup.cycles);
        }
        let frame = match lookup.frame {
            Some(f) => f,
            None => {
                let mut backend = OsBackend {
                    kernel: &mut self.kernel,
                };
                let (frame, cycles) = dev
                    .translate_miss(
                        &mut self.mem,
                        &mut self.mem_sys,
                        &mut backend,
                        core,
                        mproc,
                        va,
                    )
                    .expect("memento walk with OS-backed pool");
                run.account.charge(CycleBucket::HwPage, cycles);
                if let Some(obs) = self.obs.as_mut() {
                    obs.charge(core, CycleBucket::HwPage, "walk", cycles);
                }
                self.tlbs[core].insert(va, frame);
                frame
            }
        };
        let pa = frame.base_addr().add(va.page_offset());
        let bypass = dev.bypass_check(core, mproc, va);
        let out = if bypass {
            self.mem_sys.access_bypassed(core, kind, pa)
        } else {
            self.mem_sys.access(core, kind, pa)
        };
        run.account
            .charge(CycleBucket::Compute, discount(out.cycles));
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::Compute, "user", discount(out.cycles));
        }
    }

    /// Samples heap utilization for the Â§6.6 fragmentation study: live
    /// small-object bytes versus physical bytes backing the small-object
    /// heap. Works for both designs so hardware fragmentation can be
    /// compared against the software allocators (the paper finds them
    /// within Â±2%).
    fn sample_fragmentation(&mut self, run: &mut FunctionRun, core: usize) {
        if let (Some(dev), Some(mproc)) = (self.device.as_ref(), run.mproc.as_ref()) {
            let (live, backed) = dev.scan_occupancy(&self.mem, core, mproc);
            run.frag_live += live;
            run.frag_total += backed;
            return;
        }
        // Baseline: live small bytes over user-heap pages backing them
        // (large objects' page-rounded footprint excluded).
        let mut live_small = 0u64;
        let mut large_pages = 0u64;
        // lint:allow(unordered-iter): commutative sums over sizes only.
        for (_, (_, size)) in run.objects.iter() {
            if *size as usize <= HW_MAX_SIZE {
                live_small += *size as u64;
            } else {
                large_pages += VirtAddr::new(*size as u64).page_align_up().raw() / PAGE_SIZE as u64;
            }
        }
        let heap_pages = self
            .kernel
            .frame_stats()
            .get(FrameUse::UserHeap)
            .current
            .saturating_sub(large_pages);
        // Large-object residency is an estimate; never let the backed
        // total fall below the live bytes it must contain.
        run.frag_live += live_small;
        run.frag_total += (heap_pages * PAGE_SIZE as u64).max(live_small);
    }

    /// Runs a Go GC cycle if due.
    fn maybe_collect(&mut self, run: &mut FunctionRun, core: usize) {
        let due = run.gc.as_ref().map(|g| g.should_collect()).unwrap_or(false);
        if !due {
            return;
        }
        self.collect_now(run, core);
    }

    /// Runs a Go GC cycle unconditionally (no-op without GC state): mark
    /// cost proportional to the live set, then sweep of the accumulated
    /// dead list through the active design's free path.
    fn collect_now(&mut self, run: &mut FunctionRun, core: usize) {
        if run.gc.is_none() {
            return;
        }
        let (swept, live_objects) = {
            let gc = run.gc.as_mut().expect("checked above");
            let live = gc.live_objects;
            (gc.begin_collection(), live)
        };
        run.gc_runs += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.tracer_mut().begin(core, "gc");
        }
        // Mark phase: proportional to the live set.
        let mark = Cycles::new(live_objects * GC_MARK_PER_OBJECT);
        run.account.charge(CycleBucket::UserFree, mark);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::UserFree, "gc", mark);
        }
        // Sweep phase: free every dead object through the active design.
        for (addr, size) in swept {
            let in_region = run
                .mproc
                .as_ref()
                .map(|mp| mp.region().contains(addr))
                .unwrap_or(false);
            if in_region {
                self.hw_free(run, core, addr);
            } else {
                self.soft_free(run, core, addr, size as usize);
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.tracer_mut().end(core);
        }
    }

    /// Executes a single event on core 0.
    pub fn step(&mut self, run: &mut FunctionRun, event: &Event) {
        self.step_on(run, event, 0);
    }

    /// Executes a single event on the given core (multi-core co-location:
    /// each function is pinned to a core; the LLC, DRAM, kernel, and the
    /// hardware page allocator are shared).
    pub fn step_on(&mut self, run: &mut FunctionRun, event: &Event, core: usize) {
        debug_assert!(!run.finished, "step after Exit");
        debug_assert!(core < self.cfg.cores, "core {core} out of range");
        if let Some(san) = self.san.as_mut() {
            san.note_event();
        }
        match event {
            Event::Compute { instructions } => {
                let cycles = (*instructions as f64 * self.cfg.cpi).round() as u64;
                run.account
                    .charge(CycleBucket::Compute, Cycles::new(cycles));
                if let Some(obs) = self.obs.as_mut() {
                    obs.charge(core, CycleBucket::Compute, "user", Cycles::new(cycles));
                }
            }
            Event::Alloc { id, size } => {
                let size_us = *size as usize;
                let addr = if self.device.is_some() && size_us <= HW_MAX_SIZE {
                    self.hw_alloc(run, core, size_us)
                } else {
                    self.soft_alloc(run, core, size_us)
                };
                run.objects.insert(id.0, (addr, *size));
                run.live_bytes += *size as u64;
                if self.obs.is_some() {
                    run.alloc_seq += 1;
                    run.born.insert(id.0, run.alloc_seq);
                }
                run.allocs_seen += 1;
                if run.allocs_seen.is_multiple_of(FRAG_SAMPLE_EVERY) {
                    self.sample_fragmentation(run, core);
                }
                if let Some(gc) = run.gc.as_mut() {
                    gc.on_alloc(*size);
                }
                self.maybe_collect(run, core);
            }
            Event::Free { id } => {
                let (addr, size) = match run.objects.remove(&id.0) {
                    Some(v) => v,
                    None => return, // tolerated: double-free in a trace
                };
                run.live_bytes = run.live_bytes.saturating_sub(size as u64);
                if let Some(obs) = self.obs.as_mut() {
                    if let Some(b) = run.born.remove(&id.0) {
                        obs.metrics_mut()
                            .observe("alloc.malloc_free_distance", run.alloc_seq - b);
                    }
                }
                if run.gc.is_some() {
                    let in_region = run
                        .mproc
                        .as_ref()
                        .map(|mp| mp.region().contains(addr))
                        .unwrap_or(false);
                    if self.cfg.proactive_gc_free && in_region {
                        // §4 extension: the enhanced GC recognizes the
                        // ephemeral death and frees it through Memento
                        // immediately, instead of deferring to the sweep.
                        let gc = run.gc.as_mut().expect("checked");
                        gc.live_bytes = gc.live_bytes.saturating_sub(size as u64);
                        gc.live_objects = gc.live_objects.saturating_sub(1);
                        self.hw_free(run, core, addr);
                        return;
                    }
                    // Go: objects die; storage waits for the GC (or exit).
                    run.gc.as_mut().expect("checked").on_death(addr, size);
                    return;
                }
                let in_region = run
                    .mproc
                    .as_ref()
                    .map(|mp| mp.region().contains(addr))
                    .unwrap_or(false);
                if in_region {
                    self.hw_free(run, core, addr);
                } else {
                    self.soft_free(run, core, addr, size as usize);
                }
            }
            Event::Touch {
                id,
                offset,
                len,
                write,
            } => {
                let Some(&(addr, size)) = run.objects.get(&id.0) else {
                    return;
                };
                debug_assert!(offset + len <= size);
                let start = addr.add(*offset as u64);
                let end = addr.add((*offset + *len - 1) as u64);
                let mut line = start.line_base();
                while line <= end {
                    self.data_access(run, core, line, *write);
                    line = line.add(CACHE_LINE_SIZE as u64);
                }
            }
            Event::Exit => {
                self.finish_run(run, core);
            }
        }
        if !run.finished && self.obs.is_some() {
            self.maybe_sample(run, core);
        }
    }

    /// Takes a heap-profile sample if `core`'s trace clock crossed its
    /// sampling threshold (untimed; only runs when tracing is enabled).
    fn maybe_sample(&mut self, run: &FunctionRun, core: usize) {
        let Some(obs) = self.obs.as_mut() else { return };
        if !obs.sample_due(core) {
            return;
        }
        let pool_frames = self.kernel.frame_stats().get(FrameUse::MementoPool).current;
        let hot_resident = self
            .device
            .as_ref()
            .map(|d| d.hot(core).iter_valid().count() as u64)
            .unwrap_or(0);
        let cycles = obs.tracer().now(core);
        obs.push_sample(ProfileSample {
            core,
            cycles,
            live_bytes: run.live_bytes,
            pool_frames,
            hot_resident,
        });
    }

    /// Runs a batch of invocations across every configured core under the
    /// deterministic work-stealing [`Scheduler`]: jobs are dealt round-robin
    /// to per-core deques, idle cores steal from seeded victims, and the
    /// machine always advances the core with the lowest simulated clock by
    /// one trace event. While several cores have in-flight work, the shared
    /// LLC runs its fair-share eviction policy and DRAM fills pay the
    /// queueing penalty; with one active core both are exactly inert, so a
    /// one-core batch reproduces [`Machine::run`] cycle-for-cycle.
    ///
    /// Returns per-job statistics (in `specs` order) plus the scheduler's
    /// counters. Statistics are collected after the whole batch drains;
    /// each job's window starts at its own bring-up snapshot, so windows
    /// of co-resident jobs overlap on the shared counters.
    pub fn run_scheduled(
        &mut self,
        specs: &[WorkloadSpec],
        seed: u64,
    ) -> (Vec<RunStats>, SchedStats) {
        self.run_scheduled_with(specs, seed, |_, _| {})
    }

    /// [`Machine::run_scheduled`] with a fault-injection hook called once
    /// per scheduler iteration (before job acquisition) with the scheduler
    /// and the iteration number — tests use it to stall and release cores
    /// mid-invocation.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler wedges: no core can run, yet no stalled
    /// work explains why (a scheduler invariant violation), or stalled
    /// work is never released by the hook.
    pub fn run_scheduled_with(
        &mut self,
        specs: &[WorkloadSpec],
        seed: u64,
        mut hook: impl FnMut(&mut Scheduler, u64),
    ) -> (Vec<RunStats>, SchedStats) {
        let traces: Vec<Trace> = specs.iter().map(generate).collect();
        let mut runs: Vec<Option<FunctionRun>> = specs.iter().map(|_| None).collect();
        let mut cursors = vec![0usize; specs.len()];
        let mut sched = Scheduler::new(self.cfg.cores, specs.len(), seed);
        let mut steps: u64 = 0;
        let mut idle_spins: u32 = 0;
        while !sched.all_done() {
            hook(&mut sched, steps);
            steps += 1;
            sched.acquire_jobs();
            // Contention tracks how many cores hold in-flight work right
            // now; one active core makes both shared-resource penalties
            // exactly zero-cost.
            self.mem_sys.set_active_cores(sched.active_cores().max(1));
            let Some(core) = sched.next_core() else {
                assert!(
                    sched.has_stalled_work(),
                    "scheduler wedged: no runnable core and no stalled work"
                );
                idle_spins += 1;
                assert!(
                    idle_spins < 1 << 20,
                    "stalled work never released (hook missing an unstall?)"
                );
                continue;
            };
            idle_spins = 0;
            let job = sched.current(core).expect("running core has a job");
            if runs[job].is_none() {
                // Lazy start at first dispatch, so bring-up cycles land on
                // the core that actually executes the invocation.
                let run = self.start(&specs[job]);
                sched.advance(core, run.account.total().raw());
                runs[job] = Some(run);
            }
            let run = runs[job].as_mut().expect("started above");
            let before = run.account.total();
            let events = &traces[job].events;
            if cursors[job] < events.len() {
                let event = events[cursors[job]];
                cursors[job] += 1;
                self.step_on(run, &event, core);
            }
            if !run.finished && cursors[job] >= events.len() {
                // Traces end with Exit, but tolerate truncated ones.
                self.finish_run(run, core);
            }
            sched.advance(core, (run.account.total() - before).raw());
            if run.finished {
                sched.complete(core);
            }
        }
        self.mem_sys.set_active_cores(1);
        let stats = runs
            .iter()
            .map(|r| self.collect(r.as_ref().expect("scheduler runs every job")))
            .collect();
        (stats, sched.stats().clone())
    }

    pub(crate) fn finish_run(&mut self, run: &mut FunctionRun, core: usize) {
        run.finished = true;

        // Library-init cycles belong to container setup (warm starts).
        let (su, sk) = run.soft.take_setup_cycles();
        run.account.charge(CycleBucket::Setup, su + sk);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::Setup, "setup", su + sk);
        }

        // Fragmentation: if the run was too short for a periodic sample,
        // take one now (before teardown empties the heap).
        if run.frag_total == 0 {
            self.sample_fragmentation(run, core);
        }

        // Allocator exit hook.
        {
            let mut ctx = Self::soft_ctx(
                &mut self.kernel,
                &mut self.walkers[core],
                &mut self.mem,
                &mut self.mem_sys,
                &mut self.tlbs[core],
                &mut run.proc,
                core,
            );
            let (u, k) = run.soft.on_exit(&mut ctx);
            run.account.charge(CycleBucket::UserFree, u);
            run.account.charge(CycleBucket::KernelMm, k);
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(core, CycleBucket::UserFree, "mm", u);
                obs.charge(core, CycleBucket::KernelMm, "kernel", k);
            }
        }

        // Memento teardown: the hardware page allocator returns the
        // function's entire small-object heap to the OS pool in one batch.
        if let (Some(dev), Some(mproc)) = (self.device.as_mut(), run.mproc.take()) {
            // Final sanitizer audit while the process state is still
            // intact (HOT entries, page table, bump pointers).
            if let Some(pid) = run.shadow_pid.take() {
                let san = self.san.as_mut().expect("shadow pid implies sanitizer");
                san.on_device_events(pid, dev.take_events());
                san.detach(pid, dev, &mproc, &self.mem);
            }
            let mut backend = OsBackend {
                kernel: &mut self.kernel,
            };
            let teardown = Cycles::new(dev.config().costs.arena_free_base);
            run.account.charge(CycleBucket::HwPage, teardown);
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(core, CycleBucket::HwPage, "arena_fill", teardown);
            }
            dev.detach_process(&mut self.mem, &mut backend, mproc, &[core]);
        }

        // OS teardown of remaining VMAs (the baseline's batch free at
        // exit; under Memento only software-managed mappings remain).
        let vmas: Vec<(VirtAddr, u64)> = run
            .proc
            .addr_space
            .iter()
            .map(|v| (v.start, v.len()))
            .collect();
        for (start, len) in vmas {
            let out = self
                .kernel
                .munmap(
                    &mut self.mem,
                    &mut self.mem_sys,
                    &mut self.tlbs[core],
                    core,
                    &mut run.proc,
                    start,
                    len,
                )
                .expect("teardown munmap");
            run.account.charge(CycleBucket::KernelMm, out.cycles);
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(core, CycleBucket::KernelMm, "kernel", out.cycles);
            }
        }
        // Process switch-out at exit.
        let cs = self.kernel.context_switch(&mut self.tlbs[core]);
        run.account.charge(CycleBucket::KernelMm, cs);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::KernelMm, "kernel", cs);
        }

        // Observability epilogue: fold layer statistics into the registry,
        // check span balance, and emit the Perfetto file if configured.
        // All untimed; runs after the last cycle has been charged.
        if self.obs.is_some() {
            self.ingest_layer_metrics(run);
            let obs = self.obs.as_mut().expect("checked above");
            obs.tracer().assert_closed();
            if let Some(path) = obs.config().path.clone() {
                std::fs::write(&path, obs.tracer().to_json().to_pretty())
                    .expect("write Perfetto trace file");
            }
        }
    }

    /// Copies the instrumented layers' counters/histograms into the
    /// metrics registry. Uses absolute (idempotent) writes so repeated
    /// run finishes on one machine never double-count.
    fn ingest_layer_metrics(&mut self, run: &FunctionRun) {
        let obs = self.obs.as_mut().expect("caller checked");
        let m = obs.metrics_mut();

        let mut tlb_lat = Log2Hist::default();
        let mut ts = memento_vm::tlb::TlbStats::default();
        for tlb in &self.tlbs {
            tlb_lat.merge(tlb.hit_latency());
            let s = tlb.stats();
            ts.l1.hits += s.l1.hits;
            ts.l1.misses += s.l1.misses;
            ts.l2.hits += s.l2.hits;
            ts.l2.misses += s.l2.misses;
            ts.shootdowns += s.shootdowns;
            ts.flushes += s.flushes;
        }
        m.set_hist("tlb.hit_latency", tlb_lat);
        m.set("tlb.l1.hits", ts.l1.hits);
        m.set("tlb.l1.misses", ts.l1.misses);
        m.set("tlb.l2.hits", ts.l2.hits);
        m.set("tlb.l2.misses", ts.l2.misses);
        m.set("tlb.shootdowns", ts.shootdowns);
        m.set("tlb.flushes", ts.flushes);

        let mut walk_depth = Log2Hist::default();
        let mut ws = memento_vm::walker::WalkerStats::default();
        for walker in &self.walkers {
            walk_depth.merge(walker.depth_hist());
            let s = walker.stats();
            ws.walks.hits += s.walks.hits;
            ws.walks.misses += s.walks.misses;
            ws.pte_reads += s.pte_reads;
        }
        m.set_hist("walk.depth", walk_depth);
        m.set("walk.completed", ws.walks.hits);
        m.set("walk.faulted", ws.walks.misses);
        m.set("walk.pte_reads", ws.pte_reads);

        let ms = self.mem_sys.stats();
        m.set_hist("mem.demand_latency", self.mem_sys.demand_latency().clone());
        m.set("mem.dram.row_hits", ms.dram.row_hits);
        m.set("mem.dram.row_misses", ms.dram.row_misses);
        m.set("mem.dram.read_lines", ms.dram.read_lines);
        m.set("mem.dram.write_lines", ms.dram.write_lines);
        m.set("mem.bypassed_fills", ms.bypassed_fills);

        let ks = self.kernel.stats();
        m.set_hist("kernel.fault_latency", self.kernel.fault_latency().clone());
        m.set("kernel.page_faults", ks.page_faults);
        m.set("kernel.mmaps", ks.mmaps);
        m.set("kernel.munmaps", ks.munmaps);
        m.set("kernel.context_switches", ks.context_switches);

        if let Some(dev) = self.device.as_ref() {
            let hs = dev.hot_stats_total();
            m.set("hot.alloc.hits", hs.alloc.hits);
            m.set("hot.alloc.misses", hs.alloc.misses);
            m.set("hot.free.hits", hs.free.hits);
            m.set("hot.free.misses", hs.free.misses);
            m.set("hot.flushes", hs.flushes);
            // Physical-page lifecycle: OS grants vs warm recycling.
            let ps = dev.page_stats();
            m.set("pool.refills", ps.pool_refills);
            m.set("pool.frames_granted", ps.frames_granted);
            m.set("pool.frames_recycled", ps.frames_recycled);
            m.set("pool.frames_returned", ps.frames_returned);
            m.set("pool.overflows", ps.pool_overflows);
            m.set("pool.exhausted", ps.pool_exhausted);
        }
        m.set("run.gc_runs", run.gc_runs);
        m.set("run.allocs_seen", run.allocs_seen);
    }

    /// Performs a context switch between time-shared runs: kernel cost plus
    /// a HOT flush under Memento (§6.6 multi-process study).
    pub fn context_switch(&mut self, from: &mut FunctionRun, core: usize) {
        let cs = self.kernel.context_switch(&mut self.tlbs[core]);
        from.account.charge(CycleBucket::KernelMm, cs);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::KernelMm, "kernel", cs);
        }
        if let (Some(dev), Some(mproc)) = (self.device.as_mut(), from.mproc.as_mut()) {
            let flush = dev.flush_hot(&mut self.mem, &mut self.mem_sys, core, mproc);
            from.account.charge(CycleBucket::HwFree, flush);
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(core, CycleBucket::HwFree, "mm", flush);
            }
        }
    }

    /// Collects final statistics for a finished run. The machine is
    /// single-tenant per run for statistic purposes: use a fresh machine
    /// per measurement (time-shared experiments aggregate explicitly).
    pub fn collect(&self, run: &FunctionRun) -> RunStats {
        debug_assert!(run.finished, "collect before Exit");
        self.collect_inner(run)
    }

    /// Statistics for `run`'s current measurement window, finished or not
    /// (the warm driver collects per-invocation windows mid-run).
    pub(crate) fn collect_inner(&self, run: &FunctionRun) -> RunStats {
        let frames_now = self.kernel.frame_stats().clone();
        let mem_now = self.mem_sys.stats();
        let kernel_now = self.kernel.stats();
        let soft_now = run.soft.stats();
        let hot_now = self.device.as_ref().map(|d| d.hot_stats_total());
        let page_now = self.device.as_ref().map(|d| d.page_stats());
        let obj_now = self.device.as_ref().map(|d| d.obj_stats());
        let (mem_stats, kernel_stats, frames, soft_stats, hot, page, obj) = match &run.snapshot {
            Some(snap) => (
                mem_now.delta(&snap.mem),
                kernel_now.delta(snap.kernel),
                frames_now.delta(&snap.frames),
                soft_now.delta(snap.soft),
                hot_now.map(|h| h.delta(snap.hot.unwrap_or_default())),
                page_now.map(|p| p.delta(snap.page.unwrap_or_default())),
                obj_now.map(|o| o.delta(snap.obj.unwrap_or_default())),
            ),
            None => (
                mem_now, kernel_now, frames_now, soft_now, hot_now, page_now, obj_now,
            ),
        };
        // Fig. 11's metric is OS-level: "total number of physical pages
        // allocated during simulated execution". The entire Memento pool
        // (including the hardware-built Memento page table) is user-
        // attributed memory the process acquired for its heap; kernel
        // memory is what the OS itself allocates (process page tables,
        // metadata) — which Memento mostly eliminates.
        let user_pages =
            frames.get(FrameUse::UserHeap).aggregate + frames.get(FrameUse::MementoPool).aggregate;
        let kernel_pages =
            frames.get(FrameUse::PageTable).aggregate + frames.get(FrameUse::KernelMeta).aggregate;
        RunStats {
            name: run.spec.name.clone(),
            cycles: run.account.clone(),
            mem: mem_stats,
            kernel: kernel_stats,
            soft: Some(soft_stats),
            hot,
            page,
            obj,
            user_pages_agg: user_pages,
            kernel_pages_agg: kernel_pages,
            peak_pages: frames.peak_total(),
            gc_runs: run.gc_runs,
            arena_slot_idle_fraction: (run.frag_total > 0)
                .then(|| 1.0 - run.frag_live as f64 / run.frag_total as f64),
        }
    }

    /// Convenience: generates the trace for `spec`, runs it to completion,
    /// and returns the statistics.
    pub fn run(&mut self, spec: &WorkloadSpec) -> RunStats {
        let trace = generate(spec);
        self.run_trace(spec, &trace)
    }

    /// Runs a pre-generated trace to completion.
    pub fn run_trace(&mut self, spec: &WorkloadSpec, trace: &Trace) -> RunStats {
        let mut run = self.start(spec);
        for event in &trace.events {
            self.step(&mut run, event);
        }
        self.collect(&run)
    }

    /// Runs `spec` but measures only the steady-state window after the
    /// first `warmup_fraction` of events — how the paper evaluates the
    /// long-running data-processing applications and platform services.
    pub fn run_steady(&mut self, spec: &WorkloadSpec, warmup_fraction: f64) -> RunStats {
        let trace = generate(spec);
        let cut = ((trace.events.len() as f64) * warmup_fraction.clamp(0.0, 0.95)) as usize;
        let mut run = self.start(spec);
        for (i, event) in trace.events.iter().enumerate() {
            if i == cut {
                self.begin_measurement(&mut run);
            }
            self.step(&mut run, event);
        }
        self.collect(&run)
    }

    /// Ends one warm invocation without tearing the container down: the
    /// function returned, so everything it still holds dies now, but the
    /// process, allocator, device, pool, and Memento page table survive to
    /// serve the next request.
    ///
    /// The boundary's *memory* effects (object sweep, allocator decay,
    /// arena trim) land inside the measurement window — they are what make
    /// the next invocation warm — but its *cycles* are kept out of the
    /// request-time ledger: in a real deployment the sweep is the request's
    /// own frees replayed at once, and allocator decay runs on background
    /// threads (jemalloc's decay purging), neither on the request's
    /// critical path. The tracing layer still observes every charge.
    pub(crate) fn end_invocation(&mut self, run: &mut FunctionRun, core: usize) {
        let live_account = std::mem::replace(&mut run.account, CycleAccount::new());
        self.end_invocation_inner(run, core);
        run.account = live_account;
    }

    fn end_invocation_inner(&mut self, run: &mut FunctionRun, core: usize) {
        // Sweep whatever the GC already knows is dead.
        self.collect_now(run, core);
        // Remaining live objects die at function return. Free them through
        // the active design so fully-dead arenas are reclaimed into the
        // pool (hardware) and the software heap can decay — instead of
        // leaking every request's peak into the next one. Sorted by id:
        // `objects` is a HashMap and free order must be deterministic.
        // lint:allow(unordered-iter): sorted on the next line.
        let mut ids: Vec<u64> = run.objects.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let (addr, size) = run.objects.remove(&id).expect("key just listed");
            run.live_bytes = run.live_bytes.saturating_sub(size as u64);
            if self.obs.is_some() {
                if let Some(b) = run.born.remove(&id) {
                    if let Some(obs) = self.obs.as_mut() {
                        obs.metrics_mut()
                            .observe("alloc.malloc_free_distance", run.alloc_seq - b);
                    }
                }
            }
            let in_region = run
                .mproc
                .as_ref()
                .map(|mp| mp.region().contains(addr))
                .unwrap_or(false);
            if run.gc.is_some() {
                if self.cfg.proactive_gc_free && in_region {
                    let gc = run.gc.as_mut().expect("checked");
                    gc.live_bytes = gc.live_bytes.saturating_sub(size as u64);
                    gc.live_objects = gc.live_objects.saturating_sub(1);
                    self.hw_free(run, core, addr);
                } else {
                    run.gc.as_mut().expect("checked").on_death(addr, size);
                }
                continue;
            }
            if in_region {
                self.hw_free(run, core, addr);
            } else {
                self.soft_free(run, core, addr, size as usize);
            }
        }
        // Go: the whole heap just died; run the collector regardless of
        // the growth trigger (the runtime GCs between requests).
        self.collect_now(run, core);
        // Warm-container quiesce: the per-class *current* arenas are the
        // only empty arenas still pinning pages (non-current arenas were
        // reclaimed online as they emptied). Dropping them recycles their
        // frames through the pool for the next invocation.
        if let (Some(dev), Some(mproc)) = (self.device.as_mut(), run.mproc.as_mut()) {
            let mut backend = OsBackend {
                kernel: &mut self.kernel,
            };
            let trim = dev.end_invocation_trim(
                &mut self.mem,
                &mut self.mem_sys,
                &mut backend,
                &mut self.tlbs,
                core,
                mproc,
            );
            run.account.charge(CycleBucket::HwPage, trim);
            let events = if self.obs.is_some() || run.shadow_pid.is_some() {
                dev.take_events()
            } else {
                Vec::new()
            };
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(core, CycleBucket::HwPage, "arena_fill", trim);
                obs.on_device_events(&events);
            }
            if let Some(pid) = run.shadow_pid {
                let san = self.san.as_mut().expect("shadow pid implies sanitizer");
                san.on_device_events(pid, events);
            }
        }
        // Allocator end-of-request decay (jemalloc purge etc.).
        {
            let mut ctx = Self::soft_ctx(
                &mut self.kernel,
                &mut self.walkers[core],
                &mut self.mem,
                &mut self.mem_sys,
                &mut self.tlbs[core],
                &mut run.proc,
                core,
            );
            let (u, k) = run.soft.on_invocation_end(&mut ctx);
            run.account.charge(CycleBucket::UserFree, u);
            run.account.charge(CycleBucket::KernelMm, k);
            if let Some(obs) = self.obs.as_mut() {
                obs.charge(core, CycleBucket::UserFree, "mm", u);
                obs.charge(core, CycleBucket::KernelMm, "kernel", k);
            }
        }
        // Library re-init (if the decay dropped it) belongs to container
        // setup, same as at exit; taking it each boundary also keeps the
        // ledger complete when a later re-init overwrites the stash.
        let (su, sk) = run.soft.take_setup_cycles();
        run.account.charge(CycleBucket::Setup, su + sk);
        if let Some(obs) = self.obs.as_mut() {
            obs.charge(core, CycleBucket::Setup, "setup", su + sk);
        }
    }

    /// Runs `spec` as `n` back-to-back invocations in one warm container —
    /// the paper's §6.3 steady state. One process, one allocator, one
    /// Memento attachment: the device, pool, and Memento page table stay
    /// alive across invocations, so warm requests are served from recycled
    /// frames instead of fresh OS grants. Invocation 0 is the cold start;
    /// the `steady` window covers invocations `1..n` and excludes the final
    /// container teardown. Each invocation is also measured on its own via
    /// the snapshot/delta machinery.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a warm measurement needs at least one warm
    /// invocation after the cold one).
    pub fn run_invocations(&mut self, spec: &WorkloadSpec, n: usize) -> WarmRun {
        assert!(
            n >= 2,
            "warm run needs a cold and at least one warm invocation"
        );
        let trace = generate(spec);
        // The trace's trailing Exit is container teardown; during the warm
        // loop the container survives, so replay only the body.
        let body_len = match trace.events.last() {
            Some(Event::Exit) => trace.events.len() - 1,
            _ => trace.events.len(),
        };
        let mut run = self.start(spec);
        let mut invocations = Vec::with_capacity(n);
        let mut steady_snapshot = None;
        let mut steady_account = CycleAccount::new();
        let mut steady_gc_runs = 0u64;
        let mut steady_frag = (0u64, 0u64);
        for inv in 0..n {
            self.begin_measurement(&mut run);
            if inv == 1 {
                steady_snapshot.clone_from(&run.snapshot);
            }
            for event in &trace.events[..body_len] {
                self.step(&mut run, event);
            }
            self.end_invocation(&mut run, 0);
            if inv >= 1 {
                steady_account.merge(&run.account);
                steady_gc_runs += run.gc_runs;
                steady_frag.0 += run.frag_live;
                steady_frag.1 += run.frag_total;
            }
            invocations.push(self.collect_inner(&run));
        }
        // Steady window: everything after the cold invocation, as one
        // delta against the state at the start of invocation 1.
        run.snapshot = steady_snapshot;
        run.account = steady_account;
        run.gc_runs = steady_gc_runs;
        run.frag_live = steady_frag.0;
        run.frag_total = steady_frag.1;
        let steady = self.collect_inner(&run);
        // Container teardown happens outside the measured window.
        self.finish_run(&mut run, 0);
        WarmRun {
            steady,
            invocations,
        }
    }

    /// Runs several functions time-shared on one core with round-robin
    /// quanta of `quantum_events` events (§6.6 multi-process study).
    /// Returns per-function statistics; context-switch and HOT-flush costs
    /// are charged to the switched-out function.
    pub fn run_timeshared(
        &mut self,
        specs: &[WorkloadSpec],
        quantum_events: usize,
    ) -> Vec<RunStats> {
        let traces: Vec<Trace> = specs.iter().map(generate).collect();
        let mut runs: Vec<FunctionRun> = specs.iter().map(|s| self.start(s)).collect();
        let mut cursors = vec![0usize; specs.len()];
        loop {
            let mut progressed = false;
            for i in 0..runs.len() {
                if runs[i].finished {
                    continue;
                }
                let events = &traces[i].events;
                let end = (cursors[i] + quantum_events).min(events.len());
                for e in &events[cursors[i]..end] {
                    self.step(&mut runs[i], e);
                }
                cursors[i] = end;
                progressed = true;
                if !runs[i].finished {
                    self.context_switch(&mut runs[i], 0);
                }
            }
            if !progressed {
                break;
            }
        }
        runs.iter().map(|r| self.collect(r)).collect()
    }

    /// Total page-fault count so far (test/diagnostic accessor).
    pub fn page_faults(&self) -> u64 {
        self.kernel.stats().page_faults
    }

    /// Physical frames currently resident across every use (user heap,
    /// Memento pool, page tables, kernel metadata) — a node's live memory
    /// footprint as the cluster layer accounts it.
    pub fn resident_pages(&self) -> u64 {
        self.kernel.frame_stats().current_total()
    }

    /// Per-use snapshot of the machine's physical-frame accounting
    /// (diagnostic accessor; the cluster layer splits pool reserve from
    /// data-backing frames with it).
    pub fn frame_breakdown(&self) -> memento_kernel::buddy::FrameStats {
        self.kernel.frame_stats().clone()
    }

    /// Keep-alive park: hands the hardware pool's idle reserve back to the
    /// OS. A warm container waiting for its next request pins recycled
    /// frames in the device pool; they back no mapping, so the platform
    /// can reclaim them without walks or shootdowns — the cheap idle
    /// reclaim the pool architecture enables (software baselines have no
    /// equivalent: their allocator caches hold mapped heap pages). The
    /// next invocation re-grants through the normal low-water refill,
    /// whose cost lands in that invocation's ledger. Returns frames shed;
    /// no-op (0) on non-Memento machines.
    pub fn park(&mut self) -> u64 {
        let Some(dev) = self.device.as_mut() else {
            return 0;
        };
        let mut backend = OsBackend {
            kernel: &mut self.kernel,
        };
        dev.shed_pool(&mut backend, 0)
    }

    /// Restarts the resident-peak window (see
    /// [`Machine::window_peak_pages`]).
    pub fn reset_frame_window(&mut self) {
        self.kernel.reset_frame_window();
        if let Some(dev) = self.device.as_mut() {
            dev.reset_window();
        }
    }

    /// True peak of concurrently-resident frames since the last
    /// [`Machine::reset_frame_window`] — the footprint one invocation
    /// pins, free of `peak_resident_pages`'s whole-lifetime per-use
    /// upper bound.
    pub fn window_peak_pages(&self) -> u64 {
        self.kernel.frame_stats().window_peak()
    }

    /// Peak *unreclaimable* frames since the last window reset: non-pool
    /// kernel uses (user heap, page tables, kernel metadata) plus the
    /// frames the device actually mapped into the process. The pool's free
    /// staging is excluded — those frames back no mapping and
    /// [`Machine::park`] returns them with pure bookkeeping, so a fleet
    /// accountant treats them like the OS free list, not like used
    /// memory. (Slight upper bound: the two peaks need not coincide.)
    pub fn window_peak_unreclaimable(&self) -> u64 {
        let mapped = self
            .device
            .as_ref()
            .map(|d| d.window_peak_mapped())
            .unwrap_or(0);
        self.kernel.frame_stats().window_peak_nonpool() + mapped
    }

    /// Currently-unreclaimable frames: resident minus the device pool's
    /// free staging (see [`Machine::window_peak_unreclaimable`]).
    pub fn unreclaimable_pages(&self) -> u64 {
        let pool_free = self
            .device
            .as_ref()
            .map(|d| d.pool_len() as u64)
            .unwrap_or(0);
        self.kernel.frame_stats().current_total() - pool_free
    }

    /// Peak concurrently-resident frames so far (per-use peaks summed —
    /// the same upper bound `RunStats::peak_pages` reports).
    pub fn peak_resident_pages(&self) -> u64 {
        self.kernel.frame_stats().peak_total()
    }

    /// Cycles to restore this machine's container from a REAP-style
    /// snapshot: one mmap-shaped syscall to re-establish the mappings,
    /// then an eager prefetch of the stable working set — the currently
    /// unreclaimable frames — at the kernel's populate cost per page.
    /// This replaces a full cold boot's instruction replay with a bulk
    /// page-in, which is why a snapshot restore lands strictly between a
    /// warm hit and a cold boot.
    pub fn snapshot_restore_cycles(&self) -> u64 {
        let costs = self.kernel.costs();
        costs.syscall_overhead
            + costs.mmap_work
            + self.unreclaimable_pages() * costs.populate_per_page
    }

    /// The floor a pressure-driven squeeze cannot reclaim from an
    /// idle-warm container: page tables plus kernel bookkeeping. Data
    /// pages can be written back and dropped under pressure, but the
    /// tables describing the address space (and the kernel's metadata for
    /// it) must survive for the container to stay warm at all.
    pub fn squeeze_floor_pages(&self) -> u64 {
        use memento_kernel::buddy::FrameUse;
        let stats = self.kernel.frame_stats();
        stats.get(FrameUse::PageTable).current + stats.get(FrameUse::KernelMeta).current
    }

    /// Per-frame cycle cost of re-faulting pages a squeeze reclaimed,
    /// paid by the container's next warm start. A Memento machine
    /// re-grants through the hardware pool (buddy refill + populate,
    /// no per-page fault trap); a baseline machine demand-faults every
    /// page back in (full fault handling + buddy allocation) — the
    /// hardware-assisted cost edge the reclamation study measures.
    pub fn squeeze_refault_unit_cycles(&self) -> u64 {
        let costs = self.kernel.costs();
        if self.device.is_some() {
            costs.buddy_alloc + costs.populate_per_page
        } else {
            costs.fault_work + costs.buddy_alloc
        }
    }

    // --- persistent ephemeral memory (park-to-PM) ---------------------

    /// Captures the device-visible Memento state of `run`'s process as
    /// persistent-checkpoint records: live arena bitmaps, AAC bump
    /// pointers, HOT-resident headers, and the Memento page table. A
    /// baseline machine has no device state to persist — its image is
    /// empty, so a PM restore degenerates to demand-refaulting the whole
    /// working set (the cost edge [`Machine::pm_restore_cycles`] prices).
    pub fn pm_records(&self, run: &FunctionRun) -> Vec<memento_pmem::PmRecord> {
        use memento_pmem::PmRecord;
        let (Some(dev), Some(mproc)) = (self.device.as_ref(), run.mproc.as_ref()) else {
            return Vec::new();
        };
        let state = dev.pm_state(&self.mem, mproc);
        let mut out = Vec::with_capacity(
            state.arenas.len() + state.hot.len() + state.bumps.len() + state.mappings.len(),
        );
        for a in &state.arenas {
            out.push(PmRecord::Arena {
                va: a.va.raw(),
                class: a.class.index() as u8,
                bitmap: a.bitmap,
                header_pa: a.header_pa.raw(),
            });
        }
        for h in &state.hot {
            out.push(PmRecord::HotHeader {
                core: h.core as u32,
                class: h.class.index() as u8,
                va: h.va.raw(),
                bitmap: h.bitmap,
                header_pa: h.header_pa.raw(),
            });
        }
        for &(core, class, next) in &state.bumps {
            out.push(PmRecord::Bump {
                core: core as u32,
                class: class.index() as u8,
                next,
            });
        }
        for &(va, pa) in &state.mappings {
            out.push(PmRecord::PageMap {
                va: va.raw(),
                pa: pa.raw(),
            });
        }
        out
    }

    /// The PM cost model for this machine: NVM line costs from the paper
    /// defaults, with the demand-refault fallback priced by this kernel's
    /// own fault path (hardware pool refill on Memento, full fault
    /// handling on baselines) so replay-vs-refault decisions stay
    /// consistent with the reclamation study's unit costs.
    pub fn pm_costs(&self) -> memento_pmem::PmCosts {
        memento_pmem::PmCosts {
            refault_page_cycles: self.squeeze_refault_unit_cycles(),
            ..memento_pmem::PmCosts::paper_default()
        }
    }

    /// Cycles to write the container's working set out to PM alongside a
    /// checkpoint's metadata records: every currently-unreclaimable frame
    /// is copied at the kernel's populate cost. Paid off the latency path
    /// (the container is idle when it parks), so schedulers account it as
    /// background work, not service time.
    pub fn pm_persist_data_cycles(&self) -> u64 {
        self.unreclaimable_pages() * self.kernel.costs().populate_per_page
    }

    /// Cycles to bring a parked-to-PM container back to serving: one
    /// mmap-shaped syscall to re-establish mappings, then either a replay
    /// of the sealed image's records (Memento: arena headers, bumps, HOT
    /// state, page-table entries — the data itself is byte-addressable in
    /// PM) or, for an empty image (baselines persist no device state), a
    /// demand-refault of the whole working set. This is why park-to-PM
    /// restores land strictly between a warm hit and a snapshot restore
    /// on Memento machines, and degrade toward the snapshot cost on
    /// baselines.
    pub fn pm_restore_cycles(&self, image: &memento_pmem::PmImage) -> u64 {
        let costs = self.kernel.costs();
        let base = costs.syscall_overhead + costs.mmap_work;
        if image.is_empty() {
            base + self.unreclaimable_pages() * self.squeeze_refault_unit_cycles()
        } else {
            base + self.pm_costs().restore_cycles(image).0
        }
    }

    /// Emits the park transition through the device event log (so the
    /// sanitizer and observability layers see it) and fans the drained
    /// events out, exactly like the hardware alloc/free paths. No-op on
    /// baseline machines — they have no device, hence no event log.
    pub fn note_pm_parked(&mut self, run: &FunctionRun, epoch: u64, records: u64) {
        let Some(dev) = self.device.as_mut() else {
            return;
        };
        dev.note_pm_parked(epoch, records);
        self.drain_pm_events(run);
    }

    /// Emits the restore transition (see [`Machine::note_pm_parked`]).
    pub fn note_pm_restored(&mut self, run: &FunctionRun, epoch: u64) {
        let Some(dev) = self.device.as_mut() else {
            return;
        };
        dev.note_pm_restored(epoch);
        self.drain_pm_events(run);
    }

    fn drain_pm_events(&mut self, run: &FunctionRun) {
        let Some(dev) = self.device.as_mut() else {
            return;
        };
        let events = if self.obs.is_some() || run.shadow_pid.is_some() {
            dev.take_events()
        } else {
            Vec::new()
        };
        if let Some(obs) = self.obs.as_mut() {
            obs.on_device_events(&events);
        }
        if let Some(pid) = run.shadow_pid {
            let san = self.san.as_mut().expect("shadow pid implies sanitizer");
            san.on_device_events(pid, events);
        }
    }

    /// Runs the sanitizer's crash-injected recovery audit for one
    /// park-to-PM checkpoint (no-op when the sanitizer is off). `pool`
    /// must be the container's pool *before* the checkpoint runs.
    pub fn audit_pm_recovery(
        &mut self,
        pool: &memento_pmem::PmPool,
        records: &[memento_pmem::PmRecord],
        seed: u64,
    ) {
        if let Some(san) = self.san.as_mut() {
            san.audit_pm_recovery(pool, records, seed);
        }
    }

    /// Physical-page lifecycle audit of the device's pool, if the machine
    /// runs a Memento design (test/diagnostic accessor).
    pub fn pool_audit(&self) -> Option<memento_core::page_alloc::PoolAudit> {
        self.device.as_ref().map(|d| d.pool_audit())
    }

    /// Whole-machine memory-system counters since construction, summed
    /// across every core (unlike per-run windows, which snapshot at each
    /// job's bring-up and therefore overlap under co-location).
    pub fn mem_stats(&self) -> memento_cache::MemSystemStats {
        self.mem_sys.stats()
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("mode", &self.cfg.mode)
            .field("kernel", &self.kernel.stats())
            .finish()
    }
}

// The parallel experiment harness moves machines, in-flight runs, configs,
// and their statistics across worker threads; keep them Send-clean by
// construction so a trait-object regression surfaces here, not in a
// distant `thread::scope` error.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<FunctionRun>();
    assert_send::<SystemConfig>();
    assert_send::<RunStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{bandwidth_reduction, speedup};
    use memento_workloads::suite;

    fn small_spec(name: &str) -> WorkloadSpec {
        small_spec_n(name, 300_000)
    }

    fn small_spec_n(name: &str, insts: u64) -> WorkloadSpec {
        let mut s = suite::by_name(name).expect("workload exists");
        s.total_instructions = insts; // keep unit tests fast
        s
    }

    #[test]
    fn baseline_runs_python_function() {
        let spec = small_spec("aes");
        let stats = Machine::new(SystemConfig::baseline()).run(&spec);
        assert!(stats.total_cycles() > Cycles::new(100_000));
        assert!(stats.kernel.page_faults > 0, "lazy mmap must fault");
        assert!(stats.kernel.mmaps > 0);
        assert!(stats.mm_fraction() > 0.03, "allocation-heavy workload");
        assert!(stats.hot.is_none());
    }

    #[test]
    fn memento_runs_and_wins() {
        // Long enough that compulsory HOT misses stop dominating.
        let spec = small_spec_n("aes", 2_500_000);
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let mem = Machine::new(SystemConfig::memento()).run(&spec);
        let s = speedup(&base, &mem);
        assert!(s > 1.0, "memento must be faster, got {s}");
        let hot = mem.hot.expect("hot stats present");
        assert!(
            hot.alloc.hit_rate() > 0.95,
            "alloc hit rate {:?}",
            hot.alloc
        );
    }

    #[test]
    fn memento_reduces_page_faults() {
        let spec = small_spec("html");
        let mut base_machine = Machine::new(SystemConfig::baseline());
        base_machine.run(&spec);
        let base_faults = base_machine.page_faults();
        let mut mem_machine = Machine::new(SystemConfig::memento());
        mem_machine.run(&spec);
        let mem_faults = mem_machine.page_faults();
        // Large objects (>512B) stay on the software path and still fault;
        // the small-object heap must fault-free under Memento.
        assert!(
            mem_faults < base_faults,
            "faults: baseline {base_faults}, memento {mem_faults}"
        );
    }

    #[test]
    fn bypass_reduces_dram_reads() {
        let spec = small_spec("html");
        let with = Machine::new(SystemConfig::memento()).run(&spec);
        let without = Machine::new(SystemConfig::memento_no_bypass()).run(&spec);
        assert!(with.mem.bypassed_fills > 0);
        assert!(
            with.dram().read_lines <= without.dram().read_lines,
            "bypass cannot increase DRAM reads"
        );
    }

    #[test]
    fn memento_reduces_bandwidth() {
        let spec = small_spec("UM");
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let mem = Machine::new(SystemConfig::memento()).run(&spec);
        let red = bandwidth_reduction(&base, &mem);
        assert!(red > 0.0, "bandwidth reduction {red} must be positive");
    }

    #[test]
    fn go_function_defers_frees_to_exit() {
        let spec = small_spec("aes-go");
        let stats = Machine::new(SystemConfig::baseline()).run(&spec);
        assert_eq!(stats.gc_runs, 0, "function heaps stay below GC minimum");
        // Baseline Go: no individual frees, teardown via munmap.
        assert_eq!(stats.soft.expect("soft stats").frees, 0);
        assert!(stats.kernel.munmaps > 0);
    }

    #[test]
    fn platform_service_collects_garbage() {
        let mut spec = suite::by_name("invoke").expect("platform workload");
        // Enough allocation volume to cross the GC heap minimum.
        spec.total_instructions = 6_000_000;
        let stats = Machine::new(SystemConfig::baseline()).run(&spec);
        assert!(stats.gc_runs > 0, "platform segment must GC");
        assert!(stats.soft.expect("soft").frees > 0, "sweep frees objects");
    }

    #[test]
    fn mallacc_sits_between_baseline_and_memento_for_cpp() {
        let spec = small_spec("US");
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let mallacc = Machine::new(SystemConfig::ideal_mallacc()).run(&spec);
        let memento = Machine::new(SystemConfig::memento()).run(&spec);
        let s_mallacc = speedup(&base, &mallacc);
        let s_memento = speedup(&base, &memento);
        assert!(s_mallacc > 1.0, "mallacc speedup {s_mallacc}");
        assert!(
            s_memento > s_mallacc,
            "memento {s_memento} must beat mallacc {s_mallacc}"
        );
    }

    #[test]
    fn populate_increases_footprint() {
        let spec = small_spec("aes-go");
        let lazy = Machine::new(SystemConfig::baseline()).run(&spec);
        let eager = Machine::new(SystemConfig::baseline_populate()).run(&spec);
        assert!(
            eager.user_pages_agg > lazy.user_pages_agg * 2,
            "populate: {} vs lazy {}",
            eager.user_pages_agg,
            lazy.user_pages_agg
        );
        assert!(eager.kernel.page_faults < lazy.kernel.page_faults);
    }

    #[test]
    fn coldstart_dilutes_speedup() {
        let spec = small_spec("bfs");
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let mem = Machine::new(SystemConfig::memento()).run(&spec);
        let warm = speedup(&base, &mem);

        let mut cold_cfg_b = SystemConfig::baseline();
        cold_cfg_b.coldstart_cycles = base.total_cycles().raw() / 2;
        let mut cold_cfg_m = SystemConfig::memento();
        cold_cfg_m.coldstart_cycles = cold_cfg_b.coldstart_cycles;
        let base_c = Machine::new(cold_cfg_b).run(&spec);
        let mem_c = Machine::new(cold_cfg_m).run(&spec);
        let cold = speedup(&base_c, &mem_c);
        assert!(cold > 1.0 && cold < warm, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn timeshared_runs_complete() {
        let specs: Vec<WorkloadSpec> = ["aes", "jl"]
            .iter()
            .map(|n| small_spec_n(n, 1_000_000))
            .collect();
        let mut machine = Machine::new(SystemConfig::memento());
        let stats = machine.run_timeshared(&specs, 2000);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert!(s.total_cycles() > Cycles::ZERO);
        }
        // HOT was flushed at least once per switch.
        let hot = stats[0].hot.expect("hot stats");
        assert!(hot.flushes > 0);
    }

    #[test]
    fn scheduled_one_core_matches_plain_run() {
        // The headline differential guarantee: a one-core scheduled batch
        // of one invocation is the serial runner, cycle for cycle — every
        // contention mechanism must be exactly inert at N=1.
        let spec = small_spec("aes");
        let serial = Machine::new(SystemConfig::memento()).run(&spec);
        let (mut batch, sched) = Machine::new(SystemConfig::memento()).run_scheduled(&[spec], 42);
        let scheduled = batch.remove(0);
        assert_eq!(serial.total_cycles(), scheduled.total_cycles());
        assert_eq!(serial.mem.dram, scheduled.mem.dram);
        assert_eq!(serial.mem.dram_queue_cycles, 0);
        assert_eq!(scheduled.mem.dram_queue_cycles, 0);
        assert_eq!(serial.hot, scheduled.hot);
        assert_eq!(serial.user_pages_agg, scheduled.user_pages_agg);
        assert_eq!(sched.steals, 0);
        assert_eq!(sched.per_core_jobs, vec![1]);
        assert_eq!(sched.per_core_cycles, vec![scheduled.total_cycles().raw()]);
    }

    #[test]
    fn scheduled_batch_is_seed_deterministic() {
        let specs: Vec<WorkloadSpec> = ["aes", "jl", "ir", "aes"]
            .iter()
            .map(|n| small_spec_n(n, 400_000))
            .collect();
        let cfg = SystemConfig::memento().with_cores(2);
        let (a, sa) = Machine::new(cfg.clone()).run_scheduled(&specs, 7);
        let (b, sb) = Machine::new(cfg).run_scheduled(&specs, 7);
        assert_eq!(sa, sb, "scheduler counters must repeat exactly");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_cycles(), y.total_cycles());
            assert_eq!(x.mem.dram, y.mem.dram);
        }
        // Both cores did work and paid DRAM queueing while co-resident.
        assert!(sa.per_core_jobs.iter().all(|&j| j > 0));
        assert!(a.iter().map(|s| s.mem.dram_queue_cycles).sum::<u64>() > 0);
    }

    #[test]
    fn scheduled_colocation_is_no_faster_than_solo() {
        let spec = small_spec_n("aes", 600_000);
        let solo = Machine::new(SystemConfig::memento()).run(&spec);
        let cfg = SystemConfig::memento().with_cores(2);
        let (pair, _) =
            Machine::new(cfg).run_scheduled(&[spec.clone(), small_spec_n("jl", 600_000)], 1);
        assert!(
            pair[0].total_cycles() >= solo.total_cycles(),
            "contention can only add cycles: colocated {} vs solo {}",
            pair[0].total_cycles(),
            solo.total_cycles()
        );
    }

    #[test]
    fn fragmentation_is_low() {
        let spec = small_spec_n("US", 1_500_000);
        let stats = Machine::new(SystemConfig::memento()).run(&spec);
        let frag = stats.arena_slot_idle_fraction.expect("measured");
        assert!((0.0..=0.95).contains(&frag), "idle fraction {frag}");
        // The comparative claim (Â§6.6): hardware fragmentation within a few
        // percent of the software allocator's.
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let base_frag = base.arena_slot_idle_fraction.expect("measured");
        assert!(
            (frag - base_frag).abs() < 0.25,
            "hardware {frag} vs software {base_frag}"
        );
    }
}
