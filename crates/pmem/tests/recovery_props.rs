//! Property tests of the recovery invariant: for any sequence of random
//! arena mutations checkpointed along the way, a crash injected at any
//! prefix-interleaving of the persist/seal protocol recovers exactly the
//! last *sealed* epoch — never a torn image, never in-flight contents.
//! This is the standalone mirror of the sanitizer's recovery audit.

use memento_pmem::{
    crash_point_for_seed, injection_points, CrashPoint, PmCosts, PmImage, PmPool, PmRecord,
};
use proptest::prelude::*;

/// A deterministic little mutation model: a bank of arenas whose bitmaps
/// and bump pointers evolve under a seeded walk, standing in for the
/// device state between two parks.
#[derive(Clone, Debug)]
struct ArenaModel {
    arenas: Vec<(u64, [u64; 4])>,
    bumps: Vec<u64>,
}

impl ArenaModel {
    fn new(arenas: usize) -> Self {
        ArenaModel {
            arenas: (0..arenas as u64)
                .map(|i| (0x6000_0000 + 0x4000 * i, [0u64; 4]))
                .collect(),
            bumps: vec![0; 4],
        }
    }

    /// Applies one seeded mutation (toggle a bitmap slot or bump a class).
    fn mutate(&mut self, step: u64) {
        let n = self.arenas.len() as u64;
        if step % 5 == 4 {
            let b = (step / 5) as usize % self.bumps.len();
            self.bumps[b] += 1;
        } else {
            let a = (step % n) as usize;
            let slot = (step.wrapping_mul(2654435761) % 256) as usize;
            self.arenas[a].1[slot / 64] ^= 1u64 << (slot % 64);
        }
    }

    /// The checkpoint records for the current state.
    fn records(&self) -> Vec<PmRecord> {
        let mut out = Vec::new();
        for (i, (va, bitmap)) in self.arenas.iter().enumerate() {
            out.push(PmRecord::Arena {
                va: *va,
                class: (i % 8) as u8,
                bitmap: *bitmap,
                header_pa: 0x10_0000 + 0x1000 * i as u64,
            });
            out.push(PmRecord::PageMap {
                va: *va,
                pa: 0x10_0000 + 0x1000 * i as u64,
            });
        }
        for (c, next) in self.bumps.iter().enumerate() {
            out.push(PmRecord::Bump {
                core: 0,
                class: c as u8,
                next: *next,
            });
        }
        out
    }
}

proptest! {
    /// Crash anywhere in the final checkpoint: recovery yields the last
    /// sealed epoch's image (or the pre-crash image for an after-seal
    /// crash), bit-for-bit.
    #[test]
    fn recovery_returns_last_sealed_epoch(
        arenas in 1usize..6,
        mutations in 1u64..60,
        checkpoints in 1usize..4,
        crash_seed in any::<u64>(),
        walk_seed in any::<u64>(),
    ) {
        let mut model = ArenaModel::new(arenas);
        let mut pool = PmPool::new(PmCosts::paper_default());
        let mut sealed: Option<PmImage> = None;
        // Interleave mutations with sealed checkpoints, then attempt one
        // final checkpoint that crashes at a seeded injection point.
        for round in 0..checkpoints {
            for step in 0..mutations {
                model.mutate(walk_seed.wrapping_add(round as u64 * 1_000 + step));
            }
            if round + 1 < checkpoints {
                pool.checkpoint(&model.records());
                sealed = pool.sealed_image();
            }
        }
        let records = model.records();
        let point = crash_point_for_seed(crash_seed, records.len());
        let mut crashed = pool.simulate_crash(&records, point);
        let recovery = crashed.recover();
        let expected_next = sealed.as_ref().map(|i| i.epoch()).unwrap_or(0) + 1;
        match point {
            CrashPoint::AfterSeal => {
                // The new epoch committed before the crash.
                let img = crashed.sealed_image().expect("sealed epoch survives");
                prop_assert_eq!(img.epoch(), expected_next);
                prop_assert_eq!(img, PmImage::normalize(expected_next, &records));
            }
            _ => {
                // In-flight contents must not survive.
                prop_assert_eq!(crashed.sealed_image(), sealed.clone());
                prop_assert_eq!(
                    recovery.epoch.map(|e| e.raw()),
                    sealed.as_ref().map(|i| i.epoch())
                );
            }
        }
        // A second recovery is idempotent: nothing further to discard.
        let again = crashed.recover();
        prop_assert_eq!(again.discarded, 0);
        prop_assert_eq!(again.epoch, recovery.epoch);
    }

    /// Sweeping *every* injection point (not just a seeded one) over a
    /// smaller state: pre-seal crashes always recover the previous epoch.
    #[test]
    fn every_injection_point_is_crash_consistent(
        arenas in 1usize..4,
        mutations in 1u64..30,
        walk_seed in any::<u64>(),
    ) {
        let mut model = ArenaModel::new(arenas);
        let mut pool = PmPool::new(PmCosts::paper_default());
        for step in 0..mutations {
            model.mutate(walk_seed.wrapping_add(step));
        }
        pool.checkpoint(&model.records());
        let sealed = pool.sealed_image().expect("first epoch sealed");
        for step in 0..mutations {
            model.mutate(walk_seed.wrapping_add(7_000 + step));
        }
        let records = model.records();
        for seed in 0..injection_points(records.len()) as u64 {
            let point = crash_point_for_seed(seed, records.len());
            let mut crashed = pool.simulate_crash(&records, point);
            let recovery = crashed.recover();
            match point {
                CrashPoint::AfterSeal => {
                    prop_assert_eq!(recovery.epoch.map(|e| e.raw()), Some(sealed.epoch() + 1));
                }
                _ => {
                    let recovered = crashed.sealed_image();
                    prop_assert_eq!(
                        recovered.as_ref(),
                        Some(&sealed),
                        "point {:?} must recover epoch {}",
                        point,
                        sealed.epoch()
                    );
                }
            }
        }
    }
}
