//! The persistent pool: epoch-sealed checkpoints with detectable commit.
//!
//! [`PmPool`] models a small NVM region holding at most two checkpoint
//! images of one container, written with the checkpoint + detectable-CAS
//! discipline of persistent lock-free frameworks: records are flushed
//! line by line into the *non-live* slot, then a single sealed-epoch word
//! (flush + fence) publishes the new image atomically. The two slots
//! alternate, so a crash at any point during a checkpoint leaves the
//! previously sealed image intact:
//!
//! - crash mid-persist → the partial records sit in an unsealed slot;
//!   recovery detects the missing seal and discards them (torn epoch);
//! - crash mid-seal → the seal word itself is torn (modeled as an invalid
//!   slot, the detectable half of the CAS); recovery falls back to the
//!   other slot exactly as above;
//! - crash after the seal fence → the new epoch is durable and recovery
//!   returns it.
//!
//! Everything is cycle-accounted through [`PmCosts`]; the pool mutates no
//! simulated machine state, so callers charge (or ignore) the returned
//! cycles as their timing model dictates.

use crate::costs::{PmCosts, RestoreKind};
use crate::image::{PmImage, PmRecord};

/// A sealed-epoch identifier. Epochs are per-pool and strictly increasing;
/// epoch 0 means "nothing ever sealed".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PmEpoch(pub u64);

impl PmEpoch {
    /// The raw epoch number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PmEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Where a simulated crash is injected during one checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// After `n` records were flushed durable, before the seal word.
    AfterRecords(usize),
    /// During the seal-word write: the word is torn (detectably invalid).
    MidSeal,
    /// After the seal fence: the new epoch is durable.
    AfterSeal,
}

/// Number of distinct injection points for a checkpoint of `records`
/// records: after 0..=records flushed records, mid-seal, and after-seal.
pub fn injection_points(records: usize) -> usize {
    records + 3
}

/// Maps a seed onto one of the [`injection_points`] for a checkpoint of
/// `records` records (seeded injection for audits: every seed is a valid
/// point, and seeds 0..points sweep them all).
pub fn crash_point_for_seed(seed: u64, records: usize) -> CrashPoint {
    let points = injection_points(records) as u64;
    let p = (seed % points) as usize;
    if p <= records {
        CrashPoint::AfterRecords(p)
    } else if p == records + 1 {
        CrashPoint::MidSeal
    } else {
        CrashPoint::AfterSeal
    }
}

/// One durable seal word: the epoch a slot claims plus a monotone stamp
/// ordering the two slots, and whether the word was completely written
/// (the detectable bit — a torn seal write leaves `valid == false`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SealSlot {
    epoch: u64,
    stamp: u64,
    valid: bool,
}

/// The in-flight (volatile bookkeeping of the) checkpoint being written.
#[derive(Clone, Debug)]
struct Inflight {
    slot: usize,
    epoch: u64,
    /// Normalized records still to be flushed (suffix from `persisted`).
    records: Vec<PmRecord>,
    /// Records already flushed durable into the slot's record area.
    persisted: usize,
}

/// Cumulative pool statistics (durable-side accounting; survives crashes
/// only in the sense the simulation keeps them — they feed reports, not
/// recovery decisions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmStats {
    /// Epochs sealed.
    pub seals: u64,
    /// Recoveries executed.
    pub recoveries: u64,
    /// Torn (unsealed) records discarded across recoveries.
    pub torn_records_discarded: u64,
    /// PM lines flushed.
    pub flushed_lines: u64,
    /// Ordering fences issued.
    pub fences: u64,
}

/// What a recovery found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovery {
    /// The sealed epoch recovered to (`None` when nothing was ever sealed).
    pub epoch: Option<PmEpoch>,
    /// Records in the recovered image.
    pub records: usize,
    /// Torn in-flight records discarded by this recovery.
    pub discarded: usize,
    /// Cycles the restore pays (cheaper of replay and demand-refault).
    pub restore_cycles: u64,
    /// Which restore strategy the cost model picked.
    pub restore_kind: RestoreKind,
}

/// An NVM-backed checkpoint pool for one container.
#[derive(Clone, Debug)]
pub struct PmPool {
    costs: PmCosts,
    /// Durable seal words (survive [`PmPool::crash`]).
    slots: [SealSlot; 2],
    /// Durable record areas, one per slot (survive [`PmPool::crash`]).
    areas: [Vec<PmRecord>; 2],
    /// Volatile: the checkpoint currently being written, if any.
    inflight: Option<Inflight>,
    stats: PmStats,
}

impl PmPool {
    /// An empty pool (no epoch sealed) under `costs`.
    pub fn new(costs: PmCosts) -> Self {
        PmPool {
            costs,
            slots: [SealSlot::default(); 2],
            areas: [Vec::new(), Vec::new()],
            inflight: None,
            stats: PmStats::default(),
        }
    }

    /// The cost model in force.
    pub fn costs(&self) -> PmCosts {
        self.costs
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PmStats {
        self.stats
    }

    /// The slot holding the newest *sealed* image, if any.
    fn live_slot(&self) -> Option<usize> {
        match (self.slots[0], self.slots[1]) {
            (a, b) if a.valid && b.valid => Some(if a.stamp >= b.stamp { 0 } else { 1 }),
            (a, _) if a.valid => Some(0),
            (_, b) if b.valid => Some(1),
            _ => None,
        }
    }

    /// The last sealed epoch (`None` before the first seal).
    pub fn sealed_epoch(&self) -> Option<PmEpoch> {
        self.live_slot().map(|s| PmEpoch(self.slots[s].epoch))
    }

    /// The last sealed image (`None` before the first seal).
    pub fn sealed_image(&self) -> Option<PmImage> {
        self.live_slot()
            .map(|s| PmImage::normalize(self.slots[s].epoch, &self.areas[s]))
    }

    /// Opens a checkpoint for `records` (normalized internally) in the
    /// non-live slot and returns the epoch it will seal under. The slot's
    /// old seal word is invalidated durably *before* any record is
    /// flushed — the ordering that makes every later crash detectable (a
    /// partial record area can never sit under a valid seal). Any
    /// previous in-flight checkpoint is abandoned — its durable records
    /// stay in the slot as unsealed garbage until recovery scrubs them,
    /// exactly like a crash.
    pub fn begin(&mut self, records: &[PmRecord]) -> PmEpoch {
        let epoch = self.sealed_epoch().map(|e| e.raw()).unwrap_or(0) + 1;
        let slot = match self.live_slot() {
            Some(live) => 1 - live,
            None => 0,
        };
        let image = PmImage::normalize(epoch, records);
        self.slots[slot] = SealSlot::default();
        self.stats.flushed_lines += 1;
        self.stats.fences += 1;
        self.areas[slot].clear();
        self.inflight = Some(Inflight {
            slot,
            epoch,
            records: image.records().to_vec(),
            persisted: 0,
        });
        PmEpoch(epoch)
    }

    /// Flushes the next pending record durable (one line + `clwb`).
    /// Returns the cycles spent, or `None` when every record is flushed.
    pub fn persist_step(&mut self) -> Option<u64> {
        let inflight = self.inflight.as_mut()?;
        let rec = *inflight.records.get(inflight.persisted)?;
        self.areas[inflight.slot].push(rec);
        inflight.persisted += 1;
        self.stats.flushed_lines += rec.lines();
        Some(rec.lines() * self.costs.flush_line_cycles)
    }

    /// Flushes every pending record and issues the pre-seal ordering
    /// fence. Returns the cycles spent.
    pub fn persist_all(&mut self) -> u64 {
        let mut cycles = 0;
        while let Some(c) = self.persist_step() {
            cycles += c;
        }
        if self.inflight.is_some() {
            self.stats.fences += 1;
            cycles += self.costs.fence_cycles;
        }
        cycles
    }

    /// Publishes the in-flight checkpoint: one seal-word flush plus the
    /// commit fence. Returns the cycles spent.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is open or records remain unflushed — the
    /// protocol is persist-everything-then-seal, and a caller skipping
    /// flushes would silently publish a torn image.
    pub fn seal(&mut self) -> u64 {
        let inflight = self.inflight.take().expect("seal without begin");
        assert_eq!(
            inflight.persisted,
            inflight.records.len(),
            "seal before every record was persisted"
        );
        let stamp = self.slots[0].stamp.max(self.slots[1].stamp) + 1;
        self.slots[inflight.slot] = SealSlot {
            epoch: inflight.epoch,
            stamp,
            valid: true,
        };
        self.stats.seals += 1;
        self.stats.flushed_lines += 1;
        self.stats.fences += 1;
        self.costs.flush_line_cycles + self.costs.fence_cycles
    }

    /// One full checkpoint: begin + persist + seal. Returns the sealed
    /// epoch and the total persist cycles.
    pub fn checkpoint(&mut self, records: &[PmRecord]) -> (PmEpoch, u64) {
        let epoch = self.begin(records);
        // The slot invalidation `begin` wrote is a durable line + fence.
        let mut cycles = self.costs.flush_line_cycles + self.costs.fence_cycles;
        cycles += self.persist_all();
        cycles += self.seal();
        (epoch, cycles)
    }

    /// Power loss: volatile state vanishes. Durable slots and record
    /// areas survive — including any unsealed partial write, which stays
    /// as unreachable garbage until [`PmPool::recover`] scrubs it.
    pub fn crash(&mut self) {
        self.inflight = None;
    }

    /// Tears the seal word being written (the detectable failure of the
    /// seal CAS) and crashes: used by crash injection for
    /// [`CrashPoint::MidSeal`].
    fn crash_mid_seal(&mut self) {
        if let Some(inflight) = self.inflight.take() {
            // The word reached PM half-written: epoch bits present, but
            // the valid bit never made it — recovery must treat the slot
            // as unsealed.
            self.slots[inflight.slot] = SealSlot {
                epoch: inflight.epoch,
                stamp: 0,
                valid: false,
            };
        }
    }

    /// Post-crash recovery: picks the newest *sealed* slot, scrubs any
    /// unsealed (torn) records from the other slot, and prices the
    /// restore of the surviving image. In-flight epoch contents never
    /// survive — that is the invariant the sanitizer's recovery audit
    /// checks against this method's result.
    pub fn recover(&mut self) -> Recovery {
        self.inflight = None;
        self.stats.recoveries += 1;
        let live = self.live_slot();
        let mut discarded = 0;
        for s in 0..2 {
            if Some(s) != live && !self.slots[s].valid {
                discarded += self.areas[s].len();
                self.areas[s].clear();
                self.slots[s] = SealSlot::default();
            }
        }
        self.stats.torn_records_discarded += discarded as u64;
        match self.sealed_image() {
            Some(image) => {
                let (restore_cycles, restore_kind) = self.costs.restore_cycles(&image);
                Recovery {
                    epoch: Some(PmEpoch(image.epoch())),
                    records: image.len(),
                    discarded,
                    restore_cycles,
                    restore_kind,
                }
            }
            None => Recovery {
                epoch: None,
                records: 0,
                discarded,
                restore_cycles: 0,
                restore_kind: RestoreKind::Replay,
            },
        }
    }

    /// Clones the pool, runs one checkpoint of `records` against the
    /// clone, and crashes it at `point`. The returned pool is the
    /// post-crash durable state, ready for [`PmPool::recover`]; `self` is
    /// untouched. `AfterRecords(n)` with `n` beyond the record count
    /// clamps to "everything flushed, seal never written".
    pub fn simulate_crash(&self, records: &[PmRecord], point: CrashPoint) -> PmPool {
        let mut pool = self.clone();
        pool.begin(records);
        match point {
            CrashPoint::AfterRecords(n) => {
                for _ in 0..n {
                    if pool.persist_step().is_none() {
                        break;
                    }
                }
                pool.crash();
            }
            CrashPoint::MidSeal => {
                pool.persist_all();
                pool.crash_mid_seal();
            }
            CrashPoint::AfterSeal => {
                pool.persist_all();
                pool.seal();
                pool.crash();
            }
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<PmRecord> {
        (0..n)
            .map(|i| PmRecord::PageMap {
                va: 0x1000 * (i + 1),
                pa: i + 1,
            })
            .collect()
    }

    #[test]
    fn checkpoint_seals_and_recovers_identically() {
        let mut pool = PmPool::new(PmCosts::paper_default());
        let recs = records(4);
        let (epoch, cycles) = pool.checkpoint(&recs);
        assert_eq!(epoch, PmEpoch(1));
        assert!(cycles > 0);
        let mut crashed = pool.clone();
        crashed.crash();
        let r = crashed.recover();
        assert_eq!(r.epoch, Some(PmEpoch(1)));
        assert_eq!(r.records, 4);
        assert_eq!(r.discarded, 0);
        assert_eq!(crashed.sealed_image(), pool.sealed_image());
    }

    #[test]
    fn pre_seal_crashes_recover_previous_epoch_never_torn() {
        let mut pool = PmPool::new(PmCosts::paper_default());
        let first = records(3);
        pool.checkpoint(&first);
        let sealed = pool.sealed_image().unwrap();
        let second = records(5);
        for point in 0..injection_points(second.len()) {
            let cp = crash_point_for_seed(point as u64, second.len());
            let mut crashed = pool.simulate_crash(&second, cp);
            let r = crashed.recover();
            match cp {
                CrashPoint::AfterSeal => {
                    assert_eq!(r.epoch, Some(PmEpoch(2)), "{cp:?}");
                    assert_eq!(crashed.sealed_image().unwrap().len(), 5);
                }
                _ => {
                    assert_eq!(r.epoch, Some(PmEpoch(1)), "{cp:?}");
                    assert_eq!(
                        crashed.sealed_image().unwrap(),
                        sealed,
                        "{cp:?}: pre-seal crash must recover the sealed epoch"
                    );
                }
            }
        }
    }

    #[test]
    fn first_epoch_crash_recovers_to_nothing() {
        let pool = PmPool::new(PmCosts::paper_default());
        let recs = records(2);
        let mut crashed = pool.simulate_crash(&recs, CrashPoint::AfterRecords(1));
        let r = crashed.recover();
        assert_eq!(r.epoch, None);
        assert_eq!(r.discarded, 1, "the one flushed record is torn garbage");
        assert!(crashed.sealed_image().is_none());
    }

    #[test]
    fn mid_seal_crash_is_detected_and_discarded() {
        let mut pool = PmPool::new(PmCosts::paper_default());
        pool.checkpoint(&records(2));
        let mut crashed = pool.simulate_crash(&records(4), CrashPoint::MidSeal);
        let r = crashed.recover();
        assert_eq!(r.epoch, Some(PmEpoch(1)));
        assert_eq!(r.discarded, 4, "every flushed record of the torn epoch");
    }

    #[test]
    fn epochs_increase_and_slots_alternate() {
        let mut pool = PmPool::new(PmCosts::paper_default());
        for i in 1..=5u64 {
            let (epoch, _) = pool.checkpoint(&records(i));
            assert_eq!(epoch, PmEpoch(i));
            assert_eq!(pool.sealed_image().unwrap().len() as u64, i);
        }
        assert_eq!(pool.stats().seals, 5);
    }

    #[test]
    fn seed_mapping_covers_every_point() {
        let n = 4;
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..injection_points(n) as u64 {
            seen.insert(format!("{:?}", crash_point_for_seed(seed, n)));
        }
        assert_eq!(seen.len(), injection_points(n));
        // Seeds beyond the point count wrap around.
        assert_eq!(
            crash_point_for_seed(injection_points(n) as u64, n),
            CrashPoint::AfterRecords(0)
        );
    }
}
