//! Persistent ephemeral memory: NVM-backed checkpoints of a parked
//! container's Memento state.
//!
//! ROADMAP item 5: arenas and the hardware page table persist across
//! container park/restore (battery-backed DRAM, CXL-attached memory, or
//! NVM), so a "cold" start replays a checkpoint instead of re-faulting
//! its working set. This crate models the persistence mechanics and their
//! cycle costs; it knows nothing about the allocator itself:
//!
//! - [`PmRecord`]/[`PmImage`] — a container's device-visible state
//!   (arena bitmaps, AAC bump pointers, HOT-resident headers, Memento
//!   page-table mappings) flattened into cache-line-sized records.
//! - [`PmPool`] — a two-slot checkpoint area written with the
//!   checkpoint-plus-detectable-CAS discipline: records flush line by line into the
//!   non-live slot, then a single sealed-epoch word ([`PmEpoch`])
//!   publishes the image atomically. Crashes at any point — including a
//!   torn seal write — are detectable, and [`PmPool::recover`] always
//!   returns the last *sealed* epoch, discarding in-flight contents.
//! - [`PmCosts`] — the cycle prices: flush/fence per dirty line on
//!   persist, replay-vs-demand-refault on restore.
//! - [`CrashPoint`]/[`PmPool::simulate_crash`] — seeded crash injection
//!   for the sanitizer's recovery audit and the crate's own proptests.
//!
//! The integration layer (`memento-system`) captures records from a live
//! machine, owns one pool per warm container, and charges the returned
//! cycles; the cluster layer prices `KeepAlive::ParkToPM` from the same
//! model via profile calibration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod image;
pub mod pool;

pub use costs::{PmCosts, RestoreKind};
pub use image::{PmImage, PmRecord};
pub use pool::{crash_point_for_seed, injection_points, CrashPoint, PmEpoch, PmPool, Recovery};
