//! Checkpoint images: the device-visible Memento state of one parked
//! container, flattened into cache-line-sized records.
//!
//! A record is the unit of persistence: each one occupies (at most) one
//! 64-byte PM line, so the persist cost model can charge one `clwb` per
//! record and the restore cost model one line replay per record. The four
//! record kinds mirror the four hardware structures a park must carry
//! across power loss for a restore to skip the cold boot: in-memory arena
//! headers (VA + allocation bitmap), AAC bump pointers, HOT-resident
//! header copies (which may be dirtier than memory), and the Memento page
//! table's mappings.

use std::fmt;

/// One cache-line-sized record in a checkpoint image.
///
/// All fields are plain integers — the crate models persistence mechanics
/// and costs, not the allocator itself, so it stays independent of the
/// core crate's types (`class` is a size-class index, addresses are raw).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PmRecord {
    /// An in-memory arena header: base VA, size-class index, allocation
    /// bitmap, and the physical address of the header page. 48 bytes of
    /// payload — one PM line.
    Arena {
        /// Arena base VA.
        va: u64,
        /// Size-class index.
        class: u8,
        /// Allocation bitmap (bit i ⇒ slot i live).
        bitmap: [u64; 4],
        /// Physical address of the header page.
        header_pa: u64,
    },
    /// An AAC bump pointer: the next arena index for `(core, class)`.
    Bump {
        /// Core the bump pointer belongs to.
        core: u32,
        /// Size-class index.
        class: u8,
        /// Next arena index the AAC would hand out.
        next: u64,
    },
    /// A HOT-resident header copy. Cached entries may be dirtier than the
    /// in-memory header, so the checkpoint must carry the cached bitmap —
    /// otherwise a restore would resurrect stale slots.
    HotHeader {
        /// Core whose HOT caches the entry.
        core: u32,
        /// Size-class index (the HOT slot).
        class: u8,
        /// Arena base VA the entry caches.
        va: u64,
        /// Cached allocation bitmap.
        bitmap: [u64; 4],
        /// Physical address of the backing header page.
        header_pa: u64,
    },
    /// One Memento page-table mapping (VA page → PA frame). Restores that
    /// replay the image rebuild these eagerly; restores that demand-refault
    /// pay per page instead — the record count is what the cost model's
    /// refault alternative charges against.
    PageMap {
        /// Page VA.
        va: u64,
        /// Backing frame PA.
        pa: u64,
    },
}

impl PmRecord {
    /// A total ordering key that is unique per logical slot: two records
    /// with equal keys describe the same persistent location, so the later
    /// write wins when an image is normalized.
    pub fn key(&self) -> (u8, u64, u64) {
        match *self {
            PmRecord::Arena { va, .. } => (0, va, 0),
            PmRecord::Bump { core, class, .. } => (1, core as u64, class as u64),
            PmRecord::HotHeader { core, class, .. } => (2, core as u64, class as u64),
            PmRecord::PageMap { va, .. } => (3, va, 0),
        }
    }

    /// Dirty PM lines this record occupies (every kind fits one line).
    pub fn lines(&self) -> u64 {
        1
    }
}

impl fmt::Display for PmRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmRecord::Arena { va, class, .. } => write!(f, "arena({va:#x}, sc{class})"),
            PmRecord::Bump { core, class, next } => write!(f, "bump(c{core}, sc{class})={next}"),
            PmRecord::HotHeader {
                core, class, va, ..
            } => write!(f, "hot(c{core}, sc{class})={va:#x}"),
            PmRecord::PageMap { va, pa } => write!(f, "pte({va:#x}->{pa:#x})"),
        }
    }
}

/// A sealed checkpoint image: the records of one epoch, normalized (sorted
/// by [`PmRecord::key`], later duplicates winning) so images compare and
/// replay deterministically regardless of capture order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmImage {
    epoch: u64,
    records: Vec<PmRecord>,
}

impl PmImage {
    /// Builds a normalized image for `epoch` from records in capture
    /// order: sorted by key, with the last record for each key retained.
    pub fn normalize(epoch: u64, records: &[PmRecord]) -> Self {
        let mut indexed: Vec<(usize, PmRecord)> = records.iter().copied().enumerate().collect();
        // Stable by key, then capture position: the last capture of a key
        // ends up last in its run and survives the dedup below.
        indexed.sort_by_key(|(i, r)| (r.key(), *i));
        let mut out: Vec<PmRecord> = Vec::with_capacity(indexed.len());
        for (_, r) in indexed {
            match out.last_mut() {
                Some(prev) if prev.key() == r.key() => *prev = r,
                _ => out.push(r),
            }
        }
        PmImage {
            epoch,
            records: out,
        }
    }

    /// The epoch this image was sealed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The normalized records.
    pub fn records(&self) -> &[PmRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the image carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total dirty PM lines the image occupies.
    pub fn lines(&self) -> u64 {
        self.records.iter().map(PmRecord::lines).sum()
    }

    /// Pages a demand-refault restore would fault back in (the page-table
    /// mappings carried by the image).
    pub fn mapped_pages(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, PmRecord::PageMap { .. }))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_dedups_last_write_wins() {
        let records = [
            PmRecord::PageMap { va: 0x2000, pa: 1 },
            PmRecord::Bump {
                core: 0,
                class: 3,
                next: 1,
            },
            PmRecord::Bump {
                core: 0,
                class: 3,
                next: 2,
            },
            PmRecord::Arena {
                va: 0x1000,
                class: 3,
                bitmap: [1, 0, 0, 0],
                header_pa: 0x8000,
            },
        ];
        let img = PmImage::normalize(7, &records);
        assert_eq!(img.epoch(), 7);
        assert_eq!(img.len(), 3, "duplicate bump collapsed");
        assert!(matches!(
            img.records()[0],
            PmRecord::Arena { va: 0x1000, .. }
        ));
        assert!(matches!(img.records()[1], PmRecord::Bump { next: 2, .. }));
        assert_eq!(img.mapped_pages(), 1);
        assert_eq!(img.lines(), 3);
    }

    #[test]
    fn normalization_is_capture_order_independent() {
        let a = [
            PmRecord::PageMap { va: 0x3000, pa: 5 },
            PmRecord::PageMap { va: 0x1000, pa: 9 },
        ];
        let b = [
            PmRecord::PageMap { va: 0x1000, pa: 9 },
            PmRecord::PageMap { va: 0x3000, pa: 5 },
        ];
        assert_eq!(PmImage::normalize(1, &a), PmImage::normalize(1, &b));
    }
}
