//! The cycle cost model for persist and restore.
//!
//! Persist is priced per dirty line: one `clwb`-shaped flush per record
//! line plus ordering fences at the protocol's two commit points (after
//! the record batch, after the seal word). Restore is priced both ways a
//! recovery could bring the image back — eager replay of every image line
//! versus demand-refaulting the mapped pages — and the model picks the
//! cheaper, which is the choice a restore policy would make given the
//! image shape (header-heavy images replay; page-heavy images are where
//! replay wins by avoiding per-page fault work).

use crate::image::PmImage;

/// Which restore strategy the cost model picked for an image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RestoreKind {
    /// Eagerly replay every image line into the hardware structures.
    #[default]
    Replay,
    /// Map lazily and demand-refault the pages on first touch.
    Refault,
}

impl std::fmt::Display for RestoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreKind::Replay => f.write_str("replay"),
            RestoreKind::Refault => f.write_str("refault"),
        }
    }
}

/// Cycle prices for the PM operations the pool issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmCosts {
    /// Flushing one 64-byte line to PM (`clwb` + write-queue drain share).
    pub flush_line_cycles: u64,
    /// One ordering fence (`sfence`).
    pub fence_cycles: u64,
    /// Reading one image line back and applying it during replay.
    pub replay_line_cycles: u64,
    /// Demand-refaulting one mapped page on restore (machine-specific:
    /// the integration layer sets this from its kernel cost table).
    pub refault_page_cycles: u64,
}

impl PmCosts {
    /// Defaults in line with the simulator's DRAM-relative scale: PM line
    /// flushes cost a few DRAM accesses, fences drain the write queue,
    /// replay reads are PM-read priced.
    pub fn paper_default() -> Self {
        PmCosts {
            flush_line_cycles: 120,
            fence_cycles: 60,
            replay_line_cycles: 90,
            refault_page_cycles: 1200,
        }
    }

    /// Persist cost of one full checkpoint of `image`: slot invalidation,
    /// per-line flushes, batch fence, seal-word flush, commit fence.
    pub fn persist_cycles(&self, image: &PmImage) -> u64 {
        (image.lines() + 2) * self.flush_line_cycles + 3 * self.fence_cycles
    }

    /// Restore cost of `image` and the strategy that achieves it: the
    /// cheaper of eager line replay and per-page demand refault. Images
    /// with no mapped pages always replay (there is nothing to fault).
    pub fn restore_cycles(&self, image: &PmImage) -> (u64, RestoreKind) {
        let replay = image.lines() * self.replay_line_cycles + self.fence_cycles;
        let pages = image.mapped_pages();
        if pages == 0 {
            return (replay, RestoreKind::Replay);
        }
        // A refaulting restore still replays the non-page records (bump
        // pointers, HOT headers) — only the page-table lines go lazy.
        let eager_lines = image.lines() - pages;
        let refault = eager_lines * self.replay_line_cycles
            + self.fence_cycles
            + pages * self.refault_page_cycles;
        if replay <= refault {
            (replay, RestoreKind::Replay)
        } else {
            (refault, RestoreKind::Refault)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::PmRecord;

    fn image(pages: u64, bumps: u64) -> PmImage {
        let mut records = Vec::new();
        for i in 0..pages {
            records.push(PmRecord::PageMap {
                va: 0x1000 * (i + 1),
                pa: i + 1,
            });
        }
        for i in 0..bumps {
            records.push(PmRecord::Bump {
                core: 0,
                class: i as u8,
                next: 1,
            });
        }
        PmImage::normalize(1, &records)
    }

    #[test]
    fn persist_charges_every_line_plus_protocol_overhead() {
        let costs = PmCosts::paper_default();
        let img = image(3, 2);
        assert_eq!(
            costs.persist_cycles(&img),
            (5 + 2) * costs.flush_line_cycles + 3 * costs.fence_cycles
        );
    }

    #[test]
    fn restore_picks_replay_when_refault_is_dearer() {
        let costs = PmCosts::paper_default();
        // refault_page_cycles >> replay_line_cycles, so page-bearing
        // images replay.
        let (cycles, kind) = costs.restore_cycles(&image(8, 1));
        assert_eq!(kind, RestoreKind::Replay);
        assert_eq!(cycles, 9 * costs.replay_line_cycles + costs.fence_cycles);
    }

    #[test]
    fn restore_refaults_when_faults_are_cheap() {
        let costs = PmCosts {
            refault_page_cycles: 10,
            ..PmCosts::paper_default()
        };
        let (cycles, kind) = costs.restore_cycles(&image(8, 1));
        assert_eq!(kind, RestoreKind::Refault);
        assert_eq!(
            cycles,
            costs.replay_line_cycles + costs.fence_cycles + 8 * 10
        );
    }

    #[test]
    fn pageless_images_always_replay() {
        let costs = PmCosts {
            refault_page_cycles: 0,
            ..PmCosts::paper_default()
        };
        let (_, kind) = costs.restore_cycles(&image(0, 4));
        assert_eq!(kind, RestoreKind::Replay);
    }
}
