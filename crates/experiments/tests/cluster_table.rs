//! Byte-identity net for the cluster engine rewrite: the rendered
//! evaluation table must match, byte for byte, the capture taken from
//! the pre-flattening BTreeMap-backed engine. Any drift in event
//! ordering, placement tie-breaking, latency accounting, or footprint
//! tracking shows up here as a table diff.

use memento_experiments::cluster::{run_for_jobs, ClusterParams};

/// Captured from the event-heap/BTreeMap engine before the flat-array
/// rewrite (same params as below, jobs=1).
const EXPECTED: &str = include_str!("../../../tests/fixtures/cluster_table_small.txt");

fn fixture_params() -> ClusterParams {
    ClusterParams {
        nodes: 4,
        queue_capacity: 16,
        invocations: 600,
        seed: 7,
    }
}

#[test]
fn flat_engine_reproduces_pre_rewrite_table_byte_for_byte() {
    let report = run_for_jobs(&["aes", "html"], 8, 1, fixture_params()).expect("known workloads");
    let rendered = format!("{report}\n");
    assert_eq!(
        rendered, EXPECTED,
        "cluster table drifted from the pre-rewrite capture"
    );
}

#[test]
fn fixture_table_is_job_count_independent() {
    let report = run_for_jobs(&["aes", "html"], 8, 3, fixture_params()).expect("known workloads");
    let rendered = format!("{report}\n");
    assert_eq!(rendered, EXPECTED, "table must not depend on --jobs");
}
