//! Fig. 9: where Memento's saved cycles come from — hardware object
//! allocation (obj-alloc), hardware frees (obj-free), hardware page
//! management (page-mgmt), and main-memory bypass.
//!
//! Attribution follows the buckets the simulator charges: for each
//! component, saving = baseline bucket − Memento bucket(s); the bypass
//! share is measured directly by toggling the mechanism off.

use crate::context::{ConfigKind, EvalContext};
use crate::table::Table;
use memento_simcore::cycles::CycleBucket;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// One workload's gain attribution (shares sum to ~100).
#[derive(Clone, Copy, Debug, Default)]
pub struct GainShares {
    /// Share from hardware object allocation.
    pub obj_alloc: f64,
    /// Share from hardware object frees.
    pub obj_free: f64,
    /// Share from hardware page management.
    pub page_mgmt: f64,
    /// Share from main-memory bypass.
    pub bypass: f64,
}

/// One Fig. 9 bar.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Workload name.
    pub name: String,
    /// Paper grouping.
    pub category: Category,
    /// Attribution shares (percent of saved cycles).
    pub shares: GainShares,
}

/// Fig. 9 results.
#[derive(Clone, Debug)]
pub struct BreakdownResult {
    /// Per-workload bars (function workloads, as the paper plots).
    pub rows: Vec<BreakdownRow>,
    /// func-avg shares.
    pub func_avg: GainShares,
    /// data-avg shares.
    pub data_avg: GainShares,
    /// pltf-avg shares.
    pub pltf_avg: GainShares,
}

fn attribute(ctx: &mut EvalContext, spec: &WorkloadSpec) -> GainShares {
    let base = ctx.run(spec, ConfigKind::Baseline).clone();
    let mem = ctx.run(spec, ConfigKind::Memento).clone();
    let nobypass = ctx.run(spec, ConfigKind::MementoNoBypass).clone();

    // Bypass saving measured by ablation.
    let bypass = nobypass
        .total_cycles()
        .raw()
        .saturating_sub(mem.total_cycles().raw()) as f64;

    // Component savings from bucket deltas (baseline software path vs. the
    // Memento hardware path that replaced it).
    let b = |s: &memento_system::RunStats, bucket| s.bucket(bucket).raw() as f64;
    let alloc = (b(&base, CycleBucket::UserAlloc)
        - b(&mem, CycleBucket::UserAlloc)
        - b(&mem, CycleBucket::HwAlloc))
    .max(0.0);
    let free = (b(&base, CycleBucket::UserFree)
        - b(&mem, CycleBucket::UserFree)
        - b(&mem, CycleBucket::HwFree))
    .max(0.0);
    let page = (b(&base, CycleBucket::KernelMm)
        - b(&mem, CycleBucket::KernelMm)
        - b(&mem, CycleBucket::HwPage))
    .max(0.0);

    let total = alloc + free + page + bypass;
    if total <= 0.0 {
        return GainShares::default();
    }
    GainShares {
        obj_alloc: alloc * 100.0 / total,
        obj_free: free * 100.0 / total,
        page_mgmt: page * 100.0 / total,
        bypass: bypass * 100.0 / total,
    }
}

fn avg_shares(rows: &[BreakdownRow], cat: Category) -> GainShares {
    let group: Vec<&GainShares> = rows
        .iter()
        .filter(|r| r.category == cat)
        .map(|r| &r.shares)
        .collect();
    if group.is_empty() {
        return GainShares::default();
    }
    let n = group.len() as f64;
    GainShares {
        obj_alloc: group.iter().map(|s| s.obj_alloc).sum::<f64>() / n,
        obj_free: group.iter().map(|s| s.obj_free).sum::<f64>() / n,
        page_mgmt: group.iter().map(|s| s.page_mgmt).sum::<f64>() / n,
        bypass: group.iter().map(|s| s.bypass).sum::<f64>() / n,
    }
}

/// Runs Fig. 9 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> BreakdownResult {
    let rows: Vec<BreakdownRow> = specs
        .iter()
        .map(|spec| BreakdownRow {
            name: spec.name.clone(),
            category: spec.category,
            shares: attribute(ctx, spec),
        })
        .collect();
    BreakdownResult {
        func_avg: avg_shares(&rows, Category::Function),
        data_avg: avg_shares(&rows, Category::DataProc),
        pltf_avg: avg_shares(&rows, Category::Platform),
        rows,
    }
}

/// Runs Fig. 9 over the full suite.
pub fn run(ctx: &mut EvalContext) -> BreakdownResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for BreakdownResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9 — Performance-gain breakdown (% of saved cycles)")?;
        let mut t = Table::new(vec![
            "workload",
            "obj-alloc",
            "obj-free",
            "page-mgmt",
            "bypass",
        ]);
        let fmt_row = |name: &str, s: &GainShares| {
            vec![
                name.to_owned(),
                format!("{:.0}", s.obj_alloc),
                format!("{:.0}", s.obj_free),
                format!("{:.0}", s.page_mgmt),
                format!("{:.0}", s.bypass),
            ]
        };
        for r in self
            .rows
            .iter()
            .filter(|r| r.category == Category::Function)
        {
            t.row(fmt_row(&r.name, &r.shares));
        }
        t.row(fmt_row("func-avg", &self.func_avg));
        t.row(fmt_row("data-avg", &self.data_avg));
        t.row(fmt_row("pltf-avg", &self.pltf_avg));
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_hundred() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("html")];
        let result = run_for(&mut ctx, &specs);
        let s = &result.rows[0].shares;
        let total = s.obj_alloc + s.obj_free + s.page_mgmt + s.bypass;
        assert!((total - 100.0).abs() < 1e-6, "total {total}");
        // Both object management and page management must contribute
        // (the paper's argument for needing both mechanisms).
        assert!(s.obj_alloc > 0.0);
        assert!(s.page_mgmt > 0.0);
        assert!(result.to_string().contains("Fig. 9"));
    }
}
