//! Shared normalized-ratio arithmetic for figure runners.
//!
//! Fig. 11 and the §6.6 footprint studies report Memento (or populate)
//! page counts normalized to a baseline. A zero-page baseline has no
//! meaningful normalization: the old `m / b.max(1)` fallback silently
//! reported an *absolute* page count as a "ratio", skewing category
//! averages. The helper makes the undefined case explicit so callers can
//! skip the row (with a warning) instead of averaging garbage.

/// Ratio of `m` (measured) to `b` (baseline) page counts.
///
/// - both zero → `Some(1.0)` (nothing allocated on either side: unchanged)
/// - baseline zero, measured nonzero → `None` (no normalization exists)
/// - otherwise → `Some(m / b)`
pub fn page_ratio(m: u64, b: u64) -> Option<f64> {
    match (m, b) {
        (0, 0) => Some(1.0),
        (_, 0) => None,
        (m, b) => Some(m as f64 / b as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_zero_is_unchanged() {
        assert_eq!(page_ratio(0, 0), Some(1.0));
    }

    #[test]
    fn zero_baseline_with_pages_is_undefined() {
        // The old `.max(1)` fallback would have returned 37.0 here —
        // an absolute count masquerading as a ratio.
        assert_eq!(page_ratio(37, 0), None);
    }

    #[test]
    fn ordinary_division_otherwise() {
        assert_eq!(page_ratio(0, 4), Some(0.0));
        assert_eq!(page_ratio(3, 4), Some(0.75));
        assert_eq!(page_ratio(8, 4), Some(2.0));
    }
}
