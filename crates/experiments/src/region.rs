//! Region-scale policy-matrix study: placement, keep-alive, cold-start,
//! reclamation, and autoscaling policies crossed over bursty arrival
//! traces, for baseline vs. Memento fleets.
//!
//! The cluster experiment (§ [`crate::cluster`]) answers "what does the
//! same fixed fleet do under more load"; this study answers the region
//! operator's question: **which policy bundle sits on the tail-latency /
//! peak-footprint Pareto front once traffic stops being a flat Poisson
//! stream?** Five bundles build on each other:
//!
//! 1. `fixed-fleet` — the PR-8 status quo: fixed TTL keep-alive, full
//!    cold boots, no reclamation, a static fleet.
//! 2. `autoscale` — a target-utilization node autoscaler (cold spin-up
//!    delay, scale-down drain) over the same policies.
//! 3. `+snapshot` — REAP-style snapshot restores replace cold boots:
//!    the restore replays the calibrated stable-working-set prefetch,
//!    landing strictly between a warm hit and a cold boot.
//! 4. `+squeeze` — Squeezy-style pressure-driven reclamation: when the
//!    fleet footprint crosses a watermark, idle-warm containers are
//!    squeezed to their unreclaimable floor; the next warm start pays a
//!    re-fault cost (hardware pool re-grant for Memento, demand faults
//!    for the baseline — the paper's cost edge at region scale).
//! 5. `kiss` — KiSS-style size-aware keep-alive on top of bundle 4:
//!    big idle footprints expire sooner than small ones under a shared
//!    frame-cycle budget.
//! 6. `park-to-pm` (opt-in via [`RegionParams::park_to_pm`]) — idle
//!    containers checkpoint their Memento state to persistent memory and
//!    shed their entire DRAM footprint; a warm hit replays the sealed
//!    image (Memento) or demand-refaults the working set (baseline,
//!    which persists an empty image). Off by default so the five-bundle
//!    matrix — and the golden snapshot pinned to it — is unchanged.
//!
//! Each bundle runs under a flat Poisson trace and a flash-crowd-on-
//! diurnal trace (Lewis–Shedler thinning, byte-deterministic), for both
//! machine architectures, via calibrated Profiled-engine fleets. Every
//! (trace, config) group gets a Pareto front minimizing (p99 latency,
//! peak footprint); the headline is whether a Memento point with
//! reclamation enabled sits on or inside the baseline front under the
//! bursty trace.

use crate::error::{scaled_specs, ExperimentError};
use crate::runner;
use crate::table::Table;
use memento_cluster::{
    calibrate, generate_trace, simulate, Arrival, ArrivalConfig, ArrivalTrace, Autoscaler,
    AutoscalerConfig, ClusterConfig, ColdStart, DiurnalTrace, EmpiricalTrace, Engine, FlashCrowd,
    KeepAlive, Placement, ProfileTable, Reclamation, ServiceProfile, UniformTrace, WorkloadMix,
};
use memento_system::{stats, SystemConfig};
use memento_workloads::spec::WorkloadSpec;
use std::fmt;

/// Cycles per microsecond at the simulated core frequency.
fn cycles_per_us() -> f64 {
    stats::CORE_FREQ_HZ / 1e6
}

/// Region shape and traffic knobs.
#[derive(Clone, Copy, Debug)]
pub struct RegionParams {
    /// Nodes committed at t = 0 (autoscaled bundles float between
    /// `min_nodes` and `max_nodes` around this).
    pub nodes: usize,
    /// Autoscaler floor.
    pub min_nodes: usize,
    /// Autoscaler ceiling.
    pub max_nodes: usize,
    /// Bounded per-node admission queue depth.
    pub queue_capacity: usize,
    /// Invocations offered per cell run.
    pub invocations: u64,
    /// Arrival-process seed (shared by every cell).
    pub seed: u64,
    /// Include the sixth `park-to-pm` bundle. Off by default: the
    /// five-bundle matrix (and every golden capture of it) is reproduced
    /// byte-for-byte when this is false.
    pub park_to_pm: bool,
    /// Replay the checked-in Azure-style day curve instead of the
    /// synthetic diurnal base under the bursty trace (satellite of the
    /// PR 9 "Azure-trace replay" follow-on). Off by default for the same
    /// golden-stability reason.
    pub empirical_trace: bool,
}

impl Default for RegionParams {
    fn default() -> Self {
        RegionParams {
            nodes: 8,
            min_nodes: 2,
            max_nodes: 16,
            queue_capacity: 32,
            invocations: 1_000_000,
            seed: 7,
            park_to_pm: false,
            empirical_trace: false,
        }
    }
}

/// One (trace, policy, config) cell of the matrix.
#[derive(Clone, Debug)]
pub struct RegionRow {
    /// Trace label ("uniform" / "flash").
    pub trace: String,
    /// Policy-bundle label.
    pub policy: String,
    /// "baseline" or "memento".
    pub config: String,
    /// True when the bundle squeezes under pressure.
    pub reclaims: bool,
    /// Median end-to-end latency (queue wait + service), µs.
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Peak fleet memory footprint, MB.
    pub peak_mb: f64,
    /// Invocations served to completion.
    pub completed: u64,
    /// Arrivals rejected at admission.
    pub rejected: u64,
    /// Snapshot restores served.
    pub restores: u64,
    /// Containers squeezed by pressure reclamation.
    pub squeezed: u64,
    /// Idle containers checkpointed to persistent memory (0 unless the
    /// `park-to-pm` bundle is enabled).
    pub pm_parks: u64,
    /// Warm starts served by replaying a PM image (0 unless the
    /// `park-to-pm` bundle is enabled).
    pub pm_restores: u64,
    /// Most nodes ever committed at once.
    pub peak_nodes: u64,
    /// Drain-time conservation + lifecycle audits passed.
    pub clean: bool,
    /// Non-dominated within its (trace, config) group on
    /// (p99, peak footprint).
    pub on_front: bool,
}

/// The region evaluation across the whole matrix.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// Region shape used.
    pub params: RegionParams,
    /// Workload names in the mix.
    pub workloads: Vec<String>,
    /// One row per cell: trace-major, then policy, then config.
    pub rows: Vec<RegionRow>,
    /// Headline: under the bursty trace, some Memento point with
    /// reclamation enabled is on or inside the baseline Pareto front.
    pub memento_on_flash_front: bool,
}

impl RegionReport {
    /// Rows on their group's Pareto front, in matrix order.
    pub fn front_rows(&self) -> Vec<&RegionRow> {
        self.rows.iter().filter(|r| r.on_front).collect()
    }
}

/// `a` dominates `b` when it is no worse on both objectives and strictly
/// better on at least one (both minimized).
fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Marks the non-dominated members of `points` (minimizing both axes).
fn pareto_front(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&p| !points.iter().any(|&q| dominates(q, p)))
        .collect()
}

/// Policy bundles in presentation order. Each closure derives the cell's
/// dynamic policies from the calibrated mean service time, the mix's
/// summed idle footprint, and the worst cold boot in the table.
struct Bundle {
    label: &'static str,
    reclaims: bool,
}

const BUNDLES: [Bundle; 5] = [
    Bundle {
        label: "fixed-fleet",
        reclaims: false,
    },
    Bundle {
        label: "autoscale",
        reclaims: false,
    },
    Bundle {
        label: "+snapshot",
        reclaims: false,
    },
    Bundle {
        label: "+squeeze",
        reclaims: true,
    },
    Bundle {
        label: "kiss",
        reclaims: true,
    },
];

/// The opt-in sixth bundle: snapshot cold starts and autoscaling like
/// bundle 3, but idle containers park to persistent memory instead of
/// holding a DRAM warm pool. It does not squeeze (`reclaims: false`) —
/// parking sheds the whole idle footprint, so there is nothing left for
/// a watermark pass to take.
const PM_BUNDLE: Bundle = Bundle {
    label: "park-to-pm",
    reclaims: false,
};

/// The bundle list for a run: the five-bundle PR 9 matrix, plus
/// `park-to-pm` when opted in.
fn bundles(params: &RegionParams) -> Vec<&'static Bundle> {
    let mut all: Vec<&'static Bundle> = BUNDLES.iter().collect();
    if params.park_to_pm {
        all.push(&PM_BUNDLE);
    }
    all
}

/// Derived per-config knobs every bundle shares.
struct Knobs {
    fixed_ttl: u64,
    size_aware: KeepAlive,
    watermark: u64,
    autoscaler: AutoscalerConfig,
    /// Park-to-PM retention TTL. Parked images cost no DRAM, so they can
    /// be retained far longer than a DRAM warm pool before eviction pays.
    pm_ttl: u64,
}

fn knobs(params: &RegionParams, profiles: &[ServiceProfile]) -> Knobs {
    let service_sum: u64 = profiles.iter().map(|p| p.warm_cycles).sum();
    let mean_service = service_sum as f64 / profiles.len().max(1) as f64;
    let fixed_ttl = (mean_service * 20.0) as u64;
    let idle_sum: u64 = profiles.iter().map(|p| p.idle_frames).sum();
    // Median idle footprint sets the size-aware budget so a typical
    // container's TTL matches the fixed policy; clamp keeps outliers
    // within 8x either way.
    let mut idles: Vec<u64> = profiles.iter().map(|p| p.idle_frames).collect();
    idles.sort_unstable();
    let median_idle = idles[idles.len() / 2].max(1);
    let max_cold = profiles.iter().map(|p| p.cold_cycles).max().unwrap_or(1);
    Knobs {
        fixed_ttl,
        size_aware: KeepAlive::SizeAware {
            budget_frame_cycles: fixed_ttl * median_idle,
            min_cycles: (fixed_ttl / 8).max(1),
            max_cycles: fixed_ttl * 8,
        },
        // Half the fully-scaled fleet's worst-case warm pool: pressure
        // the fleet actually reaches under bursts, far above any single
        // node's floor.
        watermark: (params.max_nodes as u64 * idle_sum) / 2,
        autoscaler: AutoscalerConfig {
            interval_cycles: (mean_service * 4.0) as u64,
            target_load_pct: 70,
            min_nodes: params.min_nodes,
            max_nodes: params.max_nodes,
            spinup_cycles: 8 * max_cold,
        },
        pm_ttl: fixed_ttl * 8,
    }
}

fn cell_config(params: &RegionParams, k: &Knobs, bundle: &Bundle) -> ClusterConfig {
    let autoscaled = bundle.label != "fixed-fleet";
    ClusterConfig {
        nodes: params.nodes,
        queue_capacity: params.queue_capacity,
        cores_per_node: 1,
        placement: Placement::LeastLoaded,
        keep_alive: match bundle.label {
            "kiss" => k.size_aware,
            "park-to-pm" => KeepAlive::ParkToPM {
                ttl_cycles: k.pm_ttl,
            },
            _ => KeepAlive::Fixed(k.fixed_ttl),
        },
        cold_start: if matches!(bundle.label, "fixed-fleet" | "autoscale") {
            ColdStart::Boot
        } else {
            ColdStart::Snapshot
        },
        reclamation: if bundle.reclaims {
            Reclamation::Squeeze {
                watermark_frames: k.watermark,
            }
        } else {
            Reclamation::None
        },
        autoscaler: if autoscaled {
            Autoscaler::TargetUtilization(k.autoscaler)
        } else {
            Autoscaler::None
        },
        record_timeline: false,
    }
}

fn summarize(
    trace: &str,
    policy: &str,
    config: &str,
    reclaims: bool,
    result: &memento_cluster::ClusterResult,
) -> RegionRow {
    let (p50, p95, p99) = result.latency_percentiles();
    RegionRow {
        trace: trace.to_owned(),
        policy: policy.to_owned(),
        config: config.to_owned(),
        reclaims,
        p50_us: p50 as f64 / cycles_per_us(),
        p95_us: p95 as f64 / cycles_per_us(),
        p99_us: p99 as f64 / cycles_per_us(),
        peak_mb: result.peak_fleet_frames as f64 * 4096.0 / (1024.0 * 1024.0),
        completed: result.completed,
        rejected: result.rejected,
        restores: result.restores,
        squeezed: result.squeezed,
        pm_parks: result.pm_parks,
        pm_restores: result.pm_restores,
        peak_nodes: result.peak_active_nodes,
        clean: result.is_clean(),
        on_front: false,
    }
}

/// Runs the region matrix over already-scaled specs on `jobs` worker
/// threads.
pub fn run_specs(
    specs: Vec<WorkloadSpec>,
    jobs: usize,
    params: RegionParams,
) -> Result<RegionReport, ExperimentError> {
    let workloads: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let mix = WorkloadMix::uniform(specs.clone())?;

    // Calibrate per-(config, workload) profiles from real machines, one
    // shard each — the same fan-out the cluster experiment uses.
    let calib_points: Vec<(SystemConfig, WorkloadSpec)> =
        [SystemConfig::baseline(), SystemConfig::memento()]
            .iter()
            .flat_map(|cfg| specs.iter().map(move |s| (cfg.clone(), s.clone())))
            .collect();
    let profiles: Vec<ServiceProfile> =
        runner::map_ordered(jobs, &calib_points, |(cfg, spec)| calibrate(cfg, spec, 3));
    let (base_profiles, mem_profiles) = profiles.split_at(specs.len());
    let tables = [
        (
            "baseline",
            knobs(&params, base_profiles),
            ProfileTable::from_profiles(base_profiles.to_vec()),
        ),
        (
            "memento",
            knobs(&params, mem_profiles),
            ProfileTable::from_profiles(mem_profiles.to_vec()),
        ),
    ];

    // Offered load is 0.9x the *baseline* fixed fleet's warm capacity —
    // the same scale the cluster study uses — so the diurnal trough
    // breathes easily and the flash bursts genuinely overload.
    let mean_service: f64 = base_profiles
        .iter()
        .map(|p| p.warm_cycles as f64)
        // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
        .sum::<f64>()
        / base_profiles.len().max(1) as f64;
    let arrival = ArrivalConfig {
        seed: params.seed,
        count: params.invocations,
        mean_interarrival_cycles: mean_service / (params.nodes as f64 * 0.9),
    };
    // The bursty trace: flash crowds over a day curve — the synthetic
    // triangle-wave diurnal by default, or the checked-in Azure-style
    // hourly table when `empirical_trace` is set.
    let day_cycles = (mean_service * 20_000.0) as u64;
    let period_cycles = (mean_service * 2_000.0) as u64;
    let burst_cycles = (mean_service * 200.0) as u64;
    let (bursty_label, bursty): (&str, Box<dyn ArrivalTrace>) = if params.empirical_trace {
        (
            "azure",
            Box::new(FlashCrowd {
                base: EmpiricalTrace::azure_day(day_cycles),
                period_cycles,
                burst_cycles,
                multiplier: 3,
            }),
        )
    } else {
        (
            "flash",
            Box::new(FlashCrowd {
                base: DiurnalTrace {
                    day_cycles,
                    trough_ppm: 250_000,
                    peak_ppm: 1_000_000,
                },
                period_cycles,
                burst_cycles,
                multiplier: 3,
            }),
        )
    };
    let traces: [(&str, &dyn ArrivalTrace); 2] =
        [("uniform", &UniformTrace), (bursty_label, bursty.as_ref())];
    let arrival_sets: Vec<(&str, Vec<Arrival>)> = traces
        .iter()
        .map(|(label, trace)| Ok((*label, generate_trace(&arrival, &mix, *trace)?)))
        .collect::<Result<_, ExperimentError>>()?;

    // One shard per (trace, bundle, config) cell, trace-major so rows
    // land in presentation order.
    let run_bundles = bundles(&params);
    let configs = tables.len();
    let cell_points: Vec<(usize, usize, usize)> = (0..arrival_sets.len())
        .flat_map(|ti| {
            (0..run_bundles.len()).flat_map(move |bi| (0..configs).map(move |ci| (ti, bi, ci)))
        })
        .collect();
    let cell_results = runner::map_ordered(jobs, &cell_points, |&(ti, bi, ci)| {
        let (trace_label, arrivals) = &arrival_sets[ti];
        let bundle = run_bundles[bi];
        let (config_label, k, table) = &tables[ci];
        let cfg = cell_config(&params, k, bundle);
        let result = simulate(Engine::Profiled(table.clone()), &cfg, &mix, arrivals)?;
        Ok::<RegionRow, ExperimentError>(summarize(
            trace_label,
            bundle.label,
            config_label,
            bundle.reclaims,
            &result,
        ))
    });
    let mut rows = Vec::with_capacity(cell_results.len());
    for r in cell_results {
        rows.push(r?);
    }

    // Pareto fronts per (trace, config) group, minimizing (p99, peak).
    for (trace_label, _) in &arrival_sets {
        for (config_label, _, _) in &tables {
            let idx: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.trace == *trace_label && r.config == *config_label)
                .map(|(i, _)| i)
                .collect();
            let pts: Vec<(f64, f64)> = idx
                .iter()
                .map(|&i| (rows[i].p99_us, rows[i].peak_mb))
                .collect();
            for (&i, on) in idx.iter().zip(pareto_front(&pts)) {
                rows[i].on_front = on;
            }
        }
    }

    // Headline acceptance: a footprint-shedding Memento point (squeeze,
    // KiSS, or park-to-PM) under the bursty trace that no baseline point
    // (any policy) dominates.
    let baseline_flash: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.trace == bursty_label && r.config == "baseline")
        .map(|r| (r.p99_us, r.peak_mb))
        .collect();
    let memento_on_flash_front = rows
        .iter()
        .filter(|r| {
            r.trace == bursty_label
                && r.config == "memento"
                && (r.reclaims || r.policy == PM_BUNDLE.label)
        })
        .any(|r| {
            !baseline_flash
                .iter()
                .any(|&b| dominates(b, (r.p99_us, r.peak_mb)))
        });

    Ok(RegionReport {
        params,
        workloads,
        rows,
        memento_on_flash_front,
    })
}

/// Runs the region matrix over `names` (scaled by `scale_divisor`) on
/// `jobs` worker threads.
pub fn run_for_jobs(
    names: &[&str],
    scale_divisor: u64,
    jobs: usize,
    params: RegionParams,
) -> Result<RegionReport, ExperimentError> {
    run_specs(scaled_specs(names, scale_divisor)?, jobs, params)
}

/// The default region mix: the same idle-heavy slice the cluster study
/// uses, so the two extensions read against each other.
pub const DEFAULT_MIX: [&str; 8] = crate::cluster::DEFAULT_MIX;

/// Runs the default region matrix at the context's scale and job count.
/// Invocations scale down with the context's divisor (floor 10 000) so
/// the full evaluation offers the headline million-invocation matrix
/// while smoke runs stay in CI budget.
pub fn run(ctx: &crate::context::EvalContext) -> Result<RegionReport, ExperimentError> {
    let specs = DEFAULT_MIX
        .iter()
        .map(|n| ctx.try_workload(n))
        .collect::<Result<Vec<_>, _>>()?;
    let params = RegionParams {
        invocations: (RegionParams::default().invocations / ctx.scale_divisor()).max(10_000),
        ..RegionParams::default()
    };
    run_specs(specs, ctx.jobs(), params)
}

impl fmt::Display for RegionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Region policy matrix: {} nodes ({}..{} autoscaled), queue depth {}, \
             {} invocations/cell, mix [{}]",
            self.params.nodes,
            self.params.min_nodes,
            self.params.max_nodes,
            self.params.queue_capacity,
            self.params.invocations,
            self.workloads.join(", ")
        )?;
        writeln!(
            f,
            "(open-loop traces via thinning; latency includes queue wait; \
             * marks the (trace, config) Pareto front on p99 x peak footprint)"
        )?;
        // PM columns appear only when the park-to-pm bundle ran, so the
        // five-bundle table renders byte-identically to its PR 9 form.
        let with_pm = self.rows.iter().any(|r| r.pm_parks > 0);
        let mut headers = vec![
            "trace", "policy", "config", "p50 µs", "p95 µs", "p99 µs", "peak MB", "restores",
            "squeezed",
        ];
        if with_pm {
            headers.push("pm parks");
        }
        headers.extend(["peak nodes", "rejected"]);
        let mut t = Table::new(headers);
        for row in &self.rows {
            let mut cells = vec![
                row.trace.clone(),
                format!("{}{}", row.policy, if row.on_front { " *" } else { "" }),
                row.config.clone(),
                format!("{:.1}", row.p50_us),
                format!("{:.1}", row.p95_us),
                format!("{:.1}", row.p99_us),
                format!("{:.2}", row.peak_mb),
                row.restores.to_string(),
                row.squeezed.to_string(),
            ];
            if with_pm {
                cells.push(row.pm_parks.to_string());
            }
            cells.extend([row.peak_nodes.to_string(), row.rejected.to_string()]);
            t.row(cells);
        }
        write!(f, "{t}")?;
        let bursty = self
            .rows
            .iter()
            .map(|r| r.trace.as_str())
            .find(|t| *t != "uniform")
            .unwrap_or("flash");
        write!(
            f,
            "\nunder the {bursty} trace, a reclaiming memento point {} the baseline Pareto front",
            if self.memento_on_flash_front {
                "sits on or inside"
            } else {
                "is dominated by"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> RegionParams {
        RegionParams {
            invocations: 12_000,
            ..RegionParams::default()
        }
    }

    fn quick_report() -> RegionReport {
        run_for_jobs(&DEFAULT_MIX, 16, 2, quick_params()).expect("known workloads")
    }

    #[test]
    fn pareto_front_marks_exactly_the_non_dominated() {
        let pts = [(1.0, 9.0), (2.0, 2.0), (3.0, 3.0), (9.0, 1.0), (2.0, 2.0)];
        assert_eq!(
            pareto_front(&pts),
            vec![true, true, false, true, true],
            "duplicates of a front point stay on the front"
        );
        assert!(dominates((1.0, 1.0), (1.0, 2.0)));
        assert!(
            !dominates((1.0, 1.0), (1.0, 1.0)),
            "equal points never dominate"
        );
    }

    #[test]
    fn matrix_covers_every_cell_and_audits_clean() {
        let report = quick_report();
        assert_eq!(
            report.rows.len(),
            2 * BUNDLES.len() * 2,
            "2 traces x {} bundles x 2 configs",
            BUNDLES.len()
        );
        for row in &report.rows {
            assert!(
                row.clean,
                "{}/{}/{} audits must pass",
                row.trace, row.policy, row.config
            );
            assert!(
                row.completed > 0,
                "{}/{}/{}",
                row.trace,
                row.policy,
                row.config
            );
            match row.policy {
                ref p if p == "fixed-fleet" || p == "autoscale" => {
                    assert_eq!(row.restores, 0, "boot bundles never restore")
                }
                _ => assert!(row.restores > 0, "snapshot bundles must restore"),
            }
            if !row.reclaims {
                assert_eq!(row.squeezed, 0, "no watermark, no squeezes");
            }
            if row.policy == "fixed-fleet" {
                assert_eq!(row.peak_nodes, report.params.nodes as u64);
            }
        }
        // Every (trace, config) group has a non-empty front.
        for trace in ["uniform", "flash"] {
            for config in ["baseline", "memento"] {
                assert!(
                    report
                        .rows
                        .iter()
                        .any(|r| r.trace == trace && r.config == config && r.on_front),
                    "{trace}/{config} front must be non-empty"
                );
            }
        }
    }

    #[test]
    fn memento_reclaimer_reaches_the_flash_pareto_front() {
        // The acceptance headline at test scale: under the bursty trace
        // some reclaiming Memento bundle must be undominated by every
        // baseline policy — the parked-container squeeze path holds
        // fewer frames at comparable tail latency.
        let report = quick_report();
        assert!(
            report.memento_on_flash_front,
            "a reclaiming memento point must reach the baseline front:\n{report}"
        );
        assert!(report.to_string().contains("sits on or inside"));
    }

    #[test]
    fn report_is_byte_identical_across_job_counts() {
        // Full feature surface on: the sixth bundle and the empirical
        // trace must shard exactly like the PR 9 matrix.
        let renders: Vec<String> = [1, 3, 7]
            .iter()
            .map(|&jobs| {
                run_for_jobs(
                    &["aes", "html", "Redis"],
                    32,
                    jobs,
                    RegionParams {
                        invocations: 6_000,
                        park_to_pm: true,
                        empirical_trace: true,
                        ..RegionParams::default()
                    },
                )
                .expect("known workloads")
                .to_string()
            })
            .collect();
        assert_eq!(renders[0], renders[1], "jobs=1 vs jobs=3");
        assert_eq!(renders[0], renders[2], "jobs=1 vs jobs=7");
    }

    #[test]
    fn park_to_pm_bundle_extends_the_matrix_and_sheds_footprint() {
        let report = run_for_jobs(
            &["aes", "html", "Redis"],
            32,
            2,
            RegionParams {
                invocations: 8_000,
                park_to_pm: true,
                ..RegionParams::default()
            },
        )
        .expect("known workloads");
        assert_eq!(
            report.rows.len(),
            2 * (BUNDLES.len() + 1) * 2,
            "2 traces x 6 bundles x 2 configs"
        );
        let rendered = report.to_string();
        assert!(
            rendered.contains("pm parks"),
            "PM column appears: {rendered}"
        );
        for row in report.rows.iter().filter(|r| r.policy == "park-to-pm") {
            assert!(row.clean, "{}/{} audits must pass", row.trace, row.config);
            assert!(row.pm_parks > 0, "{}/{} must park", row.trace, row.config);
            assert!(
                row.pm_restores > 0,
                "{}/{} must serve warm hits from PM",
                row.trace,
                row.config
            );
            assert_eq!(row.squeezed, 0, "parking leaves nothing to squeeze");
            assert!(row.restores > 0, "cold paths still snapshot-restore");
        }
        // Under the steady trace — where the peak is set by the warm pool,
        // not by burst-concurrent actives — parking the idle pool must
        // beat the keep-warm snapshot bundle on peak footprint.
        for config in ["baseline", "memento"] {
            let peak_of = |policy: &str| {
                report
                    .rows
                    .iter()
                    .find(|r| r.trace == "uniform" && r.config == config && r.policy == policy)
                    .map(|r| r.peak_mb)
                    .expect("cell exists")
            };
            assert!(
                peak_of("park-to-pm") < peak_of("+snapshot"),
                "uniform/{config}: parked fleet must hold fewer frames"
            );
        }
        // With baseline park-to-pm points in play the headline must still
        // hold: some footprint-shedding memento point stays undominated.
        assert!(
            report.memento_on_flash_front,
            "memento must keep its place on the bursty front:\n{report}"
        );
        // No six-bundle row perturbs the original five-bundle numbers:
        // re-running without the flag reproduces the PR 9 table verbatim.
        let five = run_for_jobs(
            &["aes", "html", "Redis"],
            32,
            2,
            RegionParams {
                invocations: 8_000,
                ..RegionParams::default()
            },
        )
        .expect("known workloads");
        assert!(!five.to_string().contains("park-to-pm"));
        assert!(!five.to_string().contains("pm parks"));
        for (a, b) in five
            .rows
            .iter()
            .zip(report.rows.iter().filter(|r| r.policy != "park-to-pm"))
        {
            assert_eq!(a.policy, b.policy);
            assert_eq!((a.p99_us, a.peak_mb), (b.p99_us, b.peak_mb));
            assert_eq!(a.completed, b.completed);
        }
    }

    #[test]
    fn empirical_trace_flag_replays_the_azure_day_curve() {
        let report = run_for_jobs(
            &["aes", "html"],
            32,
            2,
            RegionParams {
                invocations: 6_000,
                empirical_trace: true,
                ..RegionParams::default()
            },
        )
        .expect("known workloads");
        assert!(
            report.rows.iter().any(|r| r.trace == "azure"),
            "bursty rows must carry the azure label"
        );
        assert!(
            report.rows.iter().all(|r| r.trace != "flash"),
            "the synthetic diurnal base is replaced, not added"
        );
        assert!(report.to_string().contains("under the azure trace"));
        for row in &report.rows {
            assert!(row.clean, "{}/{} audits", row.trace, row.policy);
        }
    }

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let err = run_for_jobs(&["ghost"], 8, 1, quick_params()).expect_err("must fail");
        assert_eq!(err, ExperimentError::UnknownWorkload("ghost".into()));
    }
}
