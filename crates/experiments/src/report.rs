//! Full-evaluation report: every table and figure in one pass, plus a
//! JSON export for EXPERIMENTS.md regeneration.

use crate::context::EvalContext;
use crate::{
    arena_list, bandwidth, breakdown, characterization, comparisons, config_table, hot,
    memusage, pricing, sensitivity, speedup,
};
use serde_json::json;
use std::fmt;

/// The complete evaluation.
pub struct FullReport {
    /// Table 3.
    pub config: config_table::ConfigTable,
    /// Figs. 2/3 + Table 1.
    pub characterization: characterization::CharacterizationResult,
    /// Table 2.
    pub mm_breakdown: characterization::MmBreakdownResult,
    /// Fig. 8.
    pub speedup: speedup::SpeedupResult,
    /// Fig. 9.
    pub breakdown: breakdown::BreakdownResult,
    /// Fig. 10.
    pub bandwidth: bandwidth::BandwidthResult,
    /// Fig. 11.
    pub memusage: memusage::MemUsageResult,
    /// Fig. 12.
    pub hot: hot::HotResult,
    /// Fig. 13.
    pub arena_list: arena_list::ArenaListResult,
    /// Fig. 14.
    pub pricing: pricing::PricingResult,
    /// §6.1.
    pub iso: comparisons::IsoStorageResult,
    /// §6.7.
    pub mallacc: comparisons::MallaccResult,
    /// §6.6 populate.
    pub populate: sensitivity::PopulateResult,
    /// §6.6 fragmentation.
    pub fragmentation: sensitivity::FragmentationResult,
}

/// Runs the complete evaluation (reusing memoized runs across figures).
pub fn run(ctx: &mut EvalContext) -> FullReport {
    FullReport {
        config: config_table::run(),
        characterization: characterization::run(ctx),
        mm_breakdown: characterization::mm_breakdown(ctx),
        speedup: speedup::run(ctx),
        breakdown: breakdown::run(ctx),
        bandwidth: bandwidth::run(ctx),
        memusage: memusage::run(ctx),
        hot: hot::run(ctx),
        arena_list: arena_list::run(ctx),
        pricing: pricing::run(ctx),
        iso: comparisons::iso_storage(ctx),
        mallacc: comparisons::mallacc(ctx),
        populate: sensitivity::populate(ctx),
        fragmentation: sensitivity::fragmentation(ctx),
    }
}

impl FullReport {
    /// Key headline numbers as JSON (for archival/regression tracking).
    pub fn summary_json(&self) -> serde_json::Value {
        json!({
            "func_avg_speedup": self.speedup.func_avg,
            "data_avg_speedup": self.speedup.data_avg,
            "pltf_avg_speedup": self.speedup.pltf_avg,
            "func_bandwidth_reduction": self.bandwidth.func_avg,
            "bypass_bandwidth_share": self.bandwidth.bypass_avg,
            "hot_alloc_hit": self.hot.func_alloc_avg,
            "hot_free_hit": self.hot.func_free_avg,
            "max_arena_list_alloc_rate": self.arena_list.max_alloc_rate,
            "runtime_pricing_saving": self.pricing.runtime_saving_avg,
            "end_to_end_pricing_saving": self.pricing.end_to_end_saving_avg,
            "iso_storage_avg": self.iso.iso_avg,
            "mallacc_avg": self.mallacc.mallacc_avg,
            "mallacc_memento_avg": self.mallacc.memento_avg,
            "speedups": self.speedup.rows.iter()
                .map(|r| json!({"name": r.name, "speedup": r.speedup}))
                .collect::<Vec<_>>(),
        })
    }
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.config)?;
        writeln!(f)?;
        writeln!(f, "{}", self.characterization)?;
        writeln!(f)?;
        writeln!(f, "{}", self.mm_breakdown)?;
        writeln!(f)?;
        writeln!(f, "{}", self.speedup)?;
        writeln!(f)?;
        writeln!(f, "{}", self.breakdown)?;
        writeln!(f)?;
        writeln!(f, "{}", self.bandwidth)?;
        writeln!(f)?;
        writeln!(f, "{}", self.memusage)?;
        writeln!(f)?;
        writeln!(f, "{}", self.hot)?;
        writeln!(f)?;
        writeln!(f, "{}", self.arena_list)?;
        writeln!(f)?;
        writeln!(f, "{}", self.pricing)?;
        writeln!(f)?;
        writeln!(f, "{}", self.iso)?;
        writeln!(f)?;
        writeln!(f, "{}", self.mallacc)?;
        writeln!(f)?;
        writeln!(f, "{}", self.populate)?;
        writeln!(f)?;
        write!(f, "{}", self.fragmentation)
    }
}
