//! Full-evaluation report: every table and figure in one pass, plus a
//! JSON export for EXPERIMENTS.md regeneration.

use crate::context::EvalContext;
use crate::{
    arena_list, bandwidth, breakdown, characterization, cluster, comparisons, config_table, hot,
    memusage, multicore, pricing, region, sensitivity, speedup,
};
use memento_simcore::json::Value;
use std::fmt;

/// The complete evaluation.
pub struct FullReport {
    /// Table 3.
    pub config: config_table::ConfigTable,
    /// Figs. 2/3 + Table 1.
    pub characterization: characterization::CharacterizationResult,
    /// Table 2.
    pub mm_breakdown: characterization::MmBreakdownResult,
    /// Fig. 8.
    pub speedup: speedup::SpeedupResult,
    /// Fig. 9.
    pub breakdown: breakdown::BreakdownResult,
    /// Fig. 10.
    pub bandwidth: bandwidth::BandwidthResult,
    /// Fig. 11.
    pub memusage: memusage::MemUsageResult,
    /// Fig. 12.
    pub hot: hot::HotResult,
    /// Fig. 13.
    pub arena_list: arena_list::ArenaListResult,
    /// Fig. 14.
    pub pricing: pricing::PricingResult,
    /// §6.1.
    pub iso: comparisons::IsoStorageResult,
    /// §6.7.
    pub mallacc: comparisons::MallaccResult,
    /// §6.6 populate.
    pub populate: sensitivity::PopulateResult,
    /// §6.6 fragmentation.
    pub fragmentation: sensitivity::FragmentationResult,
    /// Extension: cluster-scale traffic (tail latency + fleet footprint).
    pub cluster: cluster::ClusterReport,
    /// Extension: multi-core contention (work-stealing co-location).
    pub multicore: multicore::MulticoreResult,
    /// Extension: region policy matrix (autoscaling, snapshot restores,
    /// pressure reclamation, size-aware keep-alive; Pareto fronts).
    pub region: region::RegionReport,
}

/// Prefetches every simulation point the full report needs, fanning them
/// across the context's worker pool in one balanced sweep. Figures then
/// read the memo cache, so the report is byte-identical at any job count.
fn prefetch_all(ctx: &mut EvalContext) {
    use crate::context::ConfigKind;
    use memento_workloads::spec::{Category, Language};

    let suite = ctx.workloads();
    let mut points: Vec<crate::sharding::SimPoint> = Vec::new();
    for spec in &suite {
        for kind in [
            ConfigKind::Baseline,
            ConfigKind::Memento,
            ConfigKind::MementoNoBypass,
        ] {
            points.push(crate::sharding::SimPoint::new(spec.clone(), kind));
        }
        if spec.category == Category::Function {
            // §6.1 iso-storage and §6.6 populate cover the functions.
            points.push(crate::sharding::SimPoint::new(
                spec.clone(),
                ConfigKind::IsoStorage,
            ));
            points.push(crate::sharding::SimPoint::new(
                spec.clone(),
                ConfigKind::BaselinePopulate,
            ));
            if spec.language == Language::Cpp {
                // §6.7 Mallacc covers the C++ functions.
                points.push(crate::sharding::SimPoint::new(
                    spec.clone(),
                    ConfigKind::IdealMallacc,
                ));
            }
        }
    }
    ctx.prefetch(points);
}

/// Runs the complete evaluation (reusing memoized runs across figures).
pub fn run(ctx: &mut EvalContext) -> FullReport {
    prefetch_all(ctx);
    FullReport {
        config: config_table::run(),
        characterization: characterization::run(ctx),
        mm_breakdown: characterization::mm_breakdown(ctx),
        speedup: speedup::run(ctx),
        breakdown: breakdown::run(ctx),
        bandwidth: bandwidth::run(ctx),
        memusage: memusage::run(ctx),
        hot: hot::run(ctx),
        arena_list: arena_list::run(ctx),
        pricing: pricing::run(ctx),
        iso: comparisons::iso_storage(ctx),
        mallacc: comparisons::mallacc(ctx),
        populate: sensitivity::populate(ctx),
        fragmentation: sensitivity::fragmentation(ctx),
        cluster: cluster::run(ctx).expect("default cluster mix is drawn from the suite"),
        // The contention study builds whole multi-core machines rather
        // than reading the memo cache, so it runs at twice the context's
        // divisor — matching the standalone study's `/2` at full fidelity.
        multicore: multicore::run_for_jobs(
            &["html", "US", "bfs-go", "jl"],
            ctx.scale_divisor().saturating_mul(2),
            ctx.jobs(),
        )
        .expect("default contention mix is drawn from the suite"),
        region: region::run(ctx).expect("default region mix is drawn from the suite"),
    }
}

impl FullReport {
    /// Key headline numbers as JSON (for archival/regression tracking).
    pub fn summary_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("func_avg_speedup", self.speedup.func_avg)
            .set("data_avg_speedup", self.speedup.data_avg)
            .set("pltf_avg_speedup", self.speedup.pltf_avg)
            .set("func_bandwidth_reduction", self.bandwidth.func_avg)
            .set("bypass_bandwidth_share", self.bandwidth.bypass_avg)
            .set("hot_alloc_hit", self.hot.func_alloc_avg)
            .set("hot_free_hit", self.hot.func_free_avg)
            .set("max_arena_list_alloc_rate", self.arena_list.max_alloc_rate)
            .set("runtime_pricing_saving", self.pricing.runtime_saving_avg)
            .set(
                "end_to_end_pricing_saving",
                self.pricing.end_to_end_saving_avg,
            )
            .set("iso_storage_avg", self.iso.iso_avg)
            .set("mallacc_avg", self.mallacc.mallacc_avg)
            .set("mallacc_memento_avg", self.mallacc.memento_avg)
            .set("memusage_func_total", self.memusage.func_avg.2)
            .set("memusage_data_total", self.memusage.data_avg.2)
            .set("memusage_pltf_total", self.memusage.pltf_avg.2)
            .set("pool_refills", self.memusage.pool.refills as f64)
            .set(
                "pool_frames_granted",
                self.memusage.pool.frames_granted as f64,
            )
            .set(
                "pool_frames_recycled",
                self.memusage.pool.frames_recycled as f64,
            )
            .set(
                "pool_frames_returned",
                self.memusage.pool.frames_returned as f64,
            )
            .set("pool_overflows", self.memusage.pool.overflows as f64)
            .set(
                "speedups",
                Value::Array(
                    self.speedup
                        .rows
                        .iter()
                        .map(|r| {
                            let mut row = Value::object();
                            row.set("name", r.name.as_str()).set("speedup", r.speedup);
                            row
                        })
                        .collect(),
                ),
            );
        let peak = self.cluster.peak_load();
        doc.set("cluster_peak_load", peak.utilization)
            .set("cluster_baseline_p99_us", peak.baseline.p99_us)
            .set("cluster_memento_p99_us", peak.memento.p99_us)
            .set("cluster_baseline_peak_mb", peak.baseline.peak_mb)
            .set("cluster_memento_peak_mb", peak.memento.peak_mb)
            .set("cluster_baseline_rejected", peak.baseline.rejected as f64)
            .set("cluster_memento_rejected", peak.memento.rejected as f64);
        doc.set("multicore_cores", self.multicore.cores as f64)
            .set("multicore_solo_avg", self.multicore.solo_avg)
            .set("multicore_colocated_avg", self.multicore.colocated_avg)
            .set("multicore_slowdown_avg", self.multicore.slowdown_avg)
            .set("multicore_steals", self.multicore.sched.steals as f64)
            .set(
                "multicore_dram_queue_cycles",
                self.multicore.dram_queue_cycles as f64,
            )
            .set(
                "multicore_slowdowns",
                Value::Array(
                    self.multicore
                        .rows
                        .iter()
                        .map(|r| {
                            let mut row = Value::object();
                            row.set("name", r.name.as_str())
                                .set("colocated", r.colocated)
                                .set("slowdown", r.slowdown);
                            row
                        })
                        .collect(),
                ),
            );
        doc.set("region_invocations", self.region.params.invocations as f64)
            .set(
                "region_memento_on_flash_front",
                if self.region.memento_on_flash_front {
                    1.0
                } else {
                    0.0
                },
            )
            .set(
                "region_fronts",
                Value::Array(
                    self.region
                        .front_rows()
                        .iter()
                        .map(|r| {
                            let mut row = Value::object();
                            row.set("trace", r.trace.as_str())
                                .set("policy", r.policy.as_str())
                                .set("config", r.config.as_str())
                                .set("p99_us", r.p99_us)
                                .set("peak_mb", r.peak_mb);
                            row
                        })
                        .collect(),
                ),
            );
        doc
    }
}

/// Harness timing summary for a finished evaluation: overall wall-clock,
/// throughput (points/sec, simulated cycles/sec), and the slowest shards.
/// Printed *after* the deterministic tables — wall-clock is the one output
/// allowed to differ between runs and job counts.
pub struct TimingSummary {
    timing: crate::runner::RunnerTiming,
}

/// Builds the timing summary from everything `ctx` has executed so far.
pub fn timing_summary(ctx: &EvalContext) -> TimingSummary {
    TimingSummary {
        timing: ctx.timing().clone(),
    }
}

impl fmt::Display for TimingSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.timing)?;
        let mut slowest: Vec<_> = self.timing.shards.iter().collect();
        slowest.sort_by_key(|s| std::cmp::Reverse(s.wall));
        if !slowest.is_empty() {
            writeln!(f, "top shards by wall-clock:")?;
        }
        for s in slowest.iter().take(5) {
            writeln!(
                f,
                "  {:<28} {:>8.3} s  {:>12} cycles",
                s.key,
                s.wall.as_secs_f64(),
                s.sim_cycles
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.config)?;
        writeln!(f)?;
        writeln!(f, "{}", self.characterization)?;
        writeln!(f)?;
        writeln!(f, "{}", self.mm_breakdown)?;
        writeln!(f)?;
        writeln!(f, "{}", self.speedup)?;
        writeln!(f)?;
        writeln!(f, "{}", self.breakdown)?;
        writeln!(f)?;
        writeln!(f, "{}", self.bandwidth)?;
        writeln!(f)?;
        writeln!(f, "{}", self.memusage)?;
        writeln!(f)?;
        writeln!(f, "{}", self.hot)?;
        writeln!(f)?;
        writeln!(f, "{}", self.arena_list)?;
        writeln!(f)?;
        writeln!(f, "{}", self.pricing)?;
        writeln!(f)?;
        writeln!(f, "{}", self.iso)?;
        writeln!(f)?;
        writeln!(f, "{}", self.mallacc)?;
        writeln!(f)?;
        writeln!(f, "{}", self.populate)?;
        writeln!(f)?;
        writeln!(f, "{}", self.fragmentation)?;
        writeln!(f)?;
        writeln!(f, "{}", self.cluster)?;
        writeln!(f)?;
        writeln!(f, "{}", self.multicore)?;
        writeln!(f)?;
        write!(f, "{}", self.region)
    }
}
