//! Fig. 11: normalized aggregate memory usage (user / kernel / total),
//! Memento relative to the baseline.
//!
//! Long-running categories are measured over a warm container's
//! steady-state window ([`crate::context::STEADY_INVOCATIONS`]): the pool
//! serves warm invocations from recycled frames, so only genuinely fresh
//! OS grants count toward the aggregate — the paper's §6.3 direction.

use crate::context::EvalContext;
use crate::ratio::page_ratio;
use crate::table::Table;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// One Fig. 11 bar triple.
#[derive(Clone, Debug)]
pub struct MemUsageRow {
    /// Workload name.
    pub name: String,
    /// Paper grouping.
    pub category: Category,
    /// Memento/baseline ratio of aggregate user pages.
    pub user: f64,
    /// Memento/baseline ratio of aggregate kernel pages.
    pub kernel: f64,
    /// Memento/baseline ratio of total aggregate pages.
    pub total: f64,
}

/// Physical-page lifecycle counters summed over the Memento runs behind
/// the figure (from the device's page-allocator statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Pool refill batches requested from the OS.
    pub refills: u64,
    /// Frames granted fresh by the OS.
    pub frames_granted: u64,
    /// Frames reclaimed from freed arenas back into the pool.
    pub frames_recycled: u64,
    /// Frames handed back to the OS (overflow return + detach).
    pub frames_returned: u64,
    /// High-water overflow returns performed.
    pub overflows: u64,
}

/// Fig. 11 results.
#[derive(Clone, Debug)]
pub struct MemUsageResult {
    /// Per-workload ratios.
    pub rows: Vec<MemUsageRow>,
    /// Workloads dropped because the baseline allocated zero pages while
    /// Memento allocated some (no meaningful normalization exists).
    pub skipped: Vec<String>,
    /// Pool lifecycle counters aggregated over the Memento runs.
    pub pool: PoolCounters,
    /// (user, kernel, total) means over functions.
    pub func_avg: (f64, f64, f64),
    /// Means over data-processing applications.
    pub data_avg: (f64, f64, f64),
    /// Means over platform operations.
    pub pltf_avg: (f64, f64, f64),
}

fn avg(rows: &[MemUsageRow], cat: Category) -> (f64, f64, f64) {
    let group: Vec<&MemUsageRow> = rows.iter().filter(|r| r.category == cat).collect();
    if group.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    let n = group.len() as f64;
    (
        group.iter().map(|r| r.user).sum::<f64>() / n,
        group.iter().map(|r| r.kernel).sum::<f64>() / n,
        group.iter().map(|r| r.total).sum::<f64>() / n,
    )
}

/// Runs Fig. 11 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> MemUsageResult {
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    let mut pool = PoolCounters::default();
    for spec in specs {
        let (base, mem) = ctx.pair(spec);
        if let Some(ps) = mem.page {
            pool.refills += ps.pool_refills;
            pool.frames_granted += ps.frames_granted;
            pool.frames_recycled += ps.frames_recycled;
            pool.frames_returned += ps.frames_returned;
            pool.overflows += ps.pool_overflows;
        }
        let user = page_ratio(mem.user_pages_agg, base.user_pages_agg);
        let kernel = page_ratio(mem.kernel_pages_agg, base.kernel_pages_agg);
        let total = page_ratio(
            mem.user_pages_agg + mem.kernel_pages_agg,
            base.user_pages_agg + base.kernel_pages_agg,
        );
        match (user, kernel, total) {
            (Some(user), Some(kernel), Some(total)) => rows.push(MemUsageRow {
                name: spec.name.clone(),
                category: spec.category,
                user,
                kernel,
                total,
            }),
            _ => {
                eprintln!(
                    "memusage: skipping {}: baseline allocated 0 pages but \
                     Memento allocated some; no ratio exists",
                    spec.name
                );
                skipped.push(spec.name.clone());
            }
        }
    }
    MemUsageResult {
        func_avg: avg(&rows, Category::Function),
        data_avg: avg(&rows, Category::DataProc),
        pltf_avg: avg(&rows, Category::Platform),
        rows,
        skipped,
        pool,
    }
}

/// Runs Fig. 11 over the full suite.
pub fn run(ctx: &mut EvalContext) -> MemUsageResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for MemUsageResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 11 — Normalized aggregate memory usage (baseline = 1.0)"
        )?;
        let mut t = Table::new(vec!["workload", "user", "kernel", "total"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.2}", r.user),
                format!("{:.2}", r.kernel),
                format!("{:.2}", r.total),
            ]);
        }
        for (label, (u, k, tot)) in [
            ("func-avg", self.func_avg),
            ("data-avg", self.data_avg),
            ("pltf-avg", self.pltf_avg),
        ] {
            t.row(vec![
                label.into(),
                format!("{u:.2}"),
                format!("{k:.2}"),
                format!("{tot:.2}"),
            ]);
        }
        write!(f, "{t}")?;
        if !self.skipped.is_empty() {
            writeln!(f)?;
            write!(
                f,
                "skipped (zero-page baseline): {}",
                self.skipped.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::page_ratio;

    #[test]
    fn memusage_matches_paper_directions() {
        let mut ctx = EvalContext::new();
        let mut py = ctx.workload("aes");
        py.total_instructions = 2_000_000;
        let result = run_for(&mut ctx, &[py]);
        // Paper §6.3: "Memento increases userspace memory usage for Python
        // and Golang workloads" (per-class arenas trade memory for a
        // simpler hardware design).
        let py_row = &result.rows[0];
        assert!(
            py_row.user > 1.0,
            "Python user usage should rise, got {}",
            py_row.user
        );
        assert!(result.to_string().contains("Fig. 11"));
    }

    #[test]
    fn memusage_steady_state_total_drops() {
        // Warm-container steady state: Redis (jemalloc data proc) at full
        // length. The pool recycles frames across invocations while the
        // baseline keeps allocating; total usage must drop (§6.3: ~23%
        // savings for data processing).
        let mut ctx = EvalContext::new();
        let steady = ctx.workload("Redis");
        let result = run_for(&mut ctx, &[steady]);
        let redis_row = &result.rows[0];
        assert!(
            redis_row.total < 1.0,
            "steady-state total should drop, got {}",
            redis_row.total
        );
        assert!(
            result.pool.frames_recycled > 0,
            "warm invocations must be served from recycled frames"
        );

        // And the data-processing group average shows the same direction
        // at the scale-64 CI fidelity.
        let mut quick = EvalContext::scaled(64);
        let data: Vec<_> = quick
            .workloads()
            .into_iter()
            .filter(|s| s.category == Category::DataProc)
            .collect();
        let group = run_for(&mut quick, &data);
        assert!(
            group.data_avg.2 < 1.0,
            "data-proc average total should show §6.3-direction savings, got {}",
            group.data_avg.2
        );
    }

    #[test]
    fn zero_page_baseline_skips_row_instead_of_faking_ratio() {
        // The shared helper is what run_for consults; the m>0, b==0 case
        // must be reported as undefined, never as an absolute count.
        assert_eq!(page_ratio(12, 0), None);
        assert_eq!(page_ratio(0, 0), Some(1.0));
    }
}
