//! Fig. 11: normalized aggregate memory usage (user / kernel / total),
//! Memento relative to the baseline.

use crate::context::EvalContext;
use crate::table::Table;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// One Fig. 11 bar triple.
#[derive(Clone, Debug)]
pub struct MemUsageRow {
    /// Workload name.
    pub name: String,
    /// Paper grouping.
    pub category: Category,
    /// Memento/baseline ratio of aggregate user pages.
    pub user: f64,
    /// Memento/baseline ratio of aggregate kernel pages.
    pub kernel: f64,
    /// Memento/baseline ratio of total aggregate pages.
    pub total: f64,
}

/// Fig. 11 results.
#[derive(Clone, Debug)]
pub struct MemUsageResult {
    /// Per-workload ratios.
    pub rows: Vec<MemUsageRow>,
    /// (user, kernel, total) means over functions.
    pub func_avg: (f64, f64, f64),
    /// Means over data-processing applications.
    pub data_avg: (f64, f64, f64),
    /// Means over platform operations.
    pub pltf_avg: (f64, f64, f64),
}

fn avg(rows: &[MemUsageRow], cat: Category) -> (f64, f64, f64) {
    let group: Vec<&MemUsageRow> = rows.iter().filter(|r| r.category == cat).collect();
    if group.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    let n = group.len() as f64;
    (
        group.iter().map(|r| r.user).sum::<f64>() / n,
        group.iter().map(|r| r.kernel).sum::<f64>() / n,
        group.iter().map(|r| r.total).sum::<f64>() / n,
    )
}

/// Runs Fig. 11 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> MemUsageResult {
    let rows: Vec<MemUsageRow> = specs
        .iter()
        .map(|spec| {
            let (base, mem) = ctx.pair(spec);
            let ratio = |m: u64, b: u64| {
                if m == 0 && b == 0 {
                    1.0 // nothing allocated on either side: unchanged
                } else {
                    m as f64 / b.max(1) as f64
                }
            };
            MemUsageRow {
                name: spec.name.clone(),
                category: spec.category,
                user: ratio(mem.user_pages_agg, base.user_pages_agg),
                kernel: ratio(mem.kernel_pages_agg, base.kernel_pages_agg),
                total: ratio(
                    mem.user_pages_agg + mem.kernel_pages_agg,
                    base.user_pages_agg + base.kernel_pages_agg,
                ),
            }
        })
        .collect();
    MemUsageResult {
        func_avg: avg(&rows, Category::Function),
        data_avg: avg(&rows, Category::DataProc),
        pltf_avg: avg(&rows, Category::Platform),
        rows,
    }
}

/// Runs Fig. 11 over the full suite.
pub fn run(ctx: &mut EvalContext) -> MemUsageResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for MemUsageResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 11 — Normalized aggregate memory usage (baseline = 1.0)"
        )?;
        let mut t = Table::new(vec!["workload", "user", "kernel", "total"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.2}", r.user),
                format!("{:.2}", r.kernel),
                format!("{:.2}", r.total),
            ]);
        }
        for (label, (u, k, tot)) in [
            ("func-avg", self.func_avg),
            ("data-avg", self.data_avg),
            ("pltf-avg", self.pltf_avg),
        ] {
            t.row(vec![
                label.into(),
                format!("{u:.2}"),
                format!("{k:.2}"),
                format!("{tot:.2}"),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memusage_matches_paper_directions() {
        let mut ctx = EvalContext::new();
        let mut py = ctx.workload("aes");
        py.total_instructions = 2_000_000;
        let result = run_for(&mut ctx, &[py]);
        // Paper §6.3: "Memento increases userspace memory usage for Python
        // and Golang workloads" (per-class arenas trade memory for a
        // simpler hardware design).
        let py_row = &result.rows[0];
        assert!(
            py_row.user > 1.0,
            "Python user usage should rise, got {}",
            py_row.user
        );
        assert!(result.to_string().contains("Fig. 11"));
    }

    #[test]
    #[ignore = "steady-state pool page recycling is not modeled yet: the \
                Memento pool keeps acquiring frames across the measurement \
                window instead of reusing warm ones, so the paper's §6.3 \
                23% data-proc savings direction does not hold"]
    fn memusage_steady_state_total_drops() {
        let mut ctx = EvalContext::new();
        // Redis runs at full length: the steady-state window only
        // stabilizes once the warm-up has populated the heap.
        let steady = ctx.workload("Redis");
        let result = run_for(&mut ctx, &[steady]);
        // At steady state the pool recycles pages while the baseline keeps
        // allocating: total usage drops (paper: 23% savings for data proc).
        let redis_row = &result.rows[0];
        assert!(
            redis_row.total < 1.0,
            "steady-state total should drop, got {}",
            redis_row.total
        );
    }
}
