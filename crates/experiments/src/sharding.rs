//! Deterministic decomposition of an evaluation into independent shards.
//!
//! A [`SimPoint`] is one independent simulation — a (workload, system
//! configuration) pair. Each point gets a stable shard id hashed from its
//! key alone (never from scheduling order or wall-clock), so a sweep can be
//! farmed out to any number of worker threads and still aggregate into
//! byte-identical tables: results are slotted by shard, not by completion
//! order, and every source of randomness in a shard derives from
//! [`SimPoint::shard_seed`] / the spec's own seed rather than global state.

use crate::context::ConfigKind;
use memento_workloads::spec::WorkloadSpec;

/// One independent simulation point: a workload under a system design point.
#[derive(Clone, Debug)]
pub struct SimPoint {
    /// The workload to run (already scaled by the owning context).
    pub spec: WorkloadSpec,
    /// The system design point to run it under.
    pub kind: ConfigKind,
}

impl SimPoint {
    /// Builds the point for `spec` under `kind`.
    pub fn new(spec: WorkloadSpec, kind: ConfigKind) -> Self {
        SimPoint { spec, kind }
    }

    /// The memoization key: workload name + design point.
    pub fn key(&self) -> (String, ConfigKind) {
        (self.spec.name.clone(), self.kind)
    }

    /// Stable shard id: FNV-1a over the point key. Identical across runs,
    /// processes, and `--jobs` settings — it depends only on what the
    /// point *is*.
    pub fn shard_id(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.spec.name.as_bytes());
        eat(b"/");
        eat(format!("{:?}", self.kind).as_bytes());
        h
    }

    /// Per-shard RNG seed: the shard id folded into the workload's own
    /// seed via SplitMix64, so distinct design points of one workload get
    /// decorrelated streams while staying fully reproducible.
    pub fn shard_seed(&self) -> u64 {
        let mut z = self.shard_id() ^ self.spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Builds the deterministic execution plan for a sweep: duplicates (same
/// key) removed, order fixed by shard id. The plan — not submission order,
/// not thread scheduling — defines which worker computes what, which is
/// what makes parallel and serial sweeps indistinguishable downstream.
pub fn plan(points: Vec<SimPoint>) -> Vec<SimPoint> {
    let mut points = points;
    points.sort_by_key(|p| (p.shard_id(), p.kind as u8));
    points.dedup_by(|a, b| a.key() == b.key());
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_workloads::suite;

    fn point(name: &str, kind: ConfigKind) -> SimPoint {
        SimPoint::new(suite::by_name(name).expect("known"), kind)
    }

    #[test]
    fn shard_ids_are_stable_and_distinct() {
        let a = point("aes", ConfigKind::Baseline);
        let b = point("aes", ConfigKind::Memento);
        let c = point("html", ConfigKind::Baseline);
        assert_eq!(a.shard_id(), point("aes", ConfigKind::Baseline).shard_id());
        assert_ne!(a.shard_id(), b.shard_id());
        assert_ne!(a.shard_id(), c.shard_id());
        assert_ne!(a.shard_seed(), b.shard_seed());
    }

    #[test]
    fn plan_dedups_and_orders_deterministically() {
        let mk = |names: &[&str]| {
            let pts: Vec<SimPoint> = names
                .iter()
                .flat_map(|n| {
                    [ConfigKind::Baseline, ConfigKind::Memento]
                        .into_iter()
                        .map(|k| point(n, k))
                })
                .collect();
            plan(pts)
        };
        let forward = mk(&["aes", "html", "aes", "US"]);
        let reverse = mk(&["US", "aes", "html", "html"]);
        assert_eq!(forward.len(), 6, "3 workloads x 2 kinds after dedup");
        let keys: Vec<_> = forward.iter().map(SimPoint::key).collect();
        let rkeys: Vec<_> = reverse.iter().map(SimPoint::key).collect();
        assert_eq!(keys, rkeys, "plan order ignores submission order");
    }
}
