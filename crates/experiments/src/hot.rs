//! Fig. 12: Hardware Object Table hit rates for `obj-alloc` and
//! `obj-free`, plus AAC behaviour (§6.4).

use crate::context::{ConfigKind, EvalContext};
use crate::table::Table;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// One Fig. 12 bar pair.
#[derive(Clone, Debug)]
pub struct HotRow {
    /// Workload name.
    pub name: String,
    /// Paper grouping.
    pub category: Category,
    /// `obj-alloc` HOT hit rate.
    pub alloc_hit: f64,
    /// `obj-free` HOT hit rate.
    pub free_hit: f64,
    /// `obj-free` operations observed.
    pub frees: u64,
    /// AAC hit rate (§6.4: uniformly high).
    pub aac_hit: f64,
}

/// Fig. 12 results.
#[derive(Clone, Debug)]
pub struct HotResult {
    /// Per-workload hit rates.
    pub rows: Vec<HotRow>,
    /// Mean alloc hit rate over functions.
    pub func_alloc_avg: f64,
    /// Mean free hit rate over functions (weighted by free count).
    pub func_free_avg: f64,
}

/// Runs Fig. 12 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> HotResult {
    let rows: Vec<HotRow> = specs
        .iter()
        .map(|spec| {
            let stats = ctx.run(spec, ConfigKind::Memento);
            let hot = stats.hot.expect("memento run has HOT stats");
            let page = stats.page.expect("memento run has page stats");
            HotRow {
                name: spec.name.clone(),
                category: spec.category,
                alloc_hit: hot.alloc.hit_rate(),
                free_hit: hot.free.hit_rate(),
                frees: hot.free.total(),
                aac_hit: page.aac.hit_rate(),
            }
        })
        .collect();
    let funcs: Vec<&HotRow> = rows
        .iter()
        .filter(|r| r.category == Category::Function)
        .collect();
    let func_alloc_avg = if funcs.is_empty() {
        1.0
    } else {
        funcs.iter().map(|r| r.alloc_hit).sum::<f64>() / funcs.len() as f64
    };
    let total_frees: u64 = funcs.iter().map(|r| r.frees).sum();
    let func_free_avg = if total_frees == 0 {
        1.0
    } else {
        funcs
            .iter()
            .map(|r| r.free_hit * r.frees as f64)
            .sum::<f64>()
            / total_frees as f64
    };
    HotResult {
        rows,
        func_alloc_avg,
        func_free_avg,
    }
}

/// Runs Fig. 12 over the full suite.
pub fn run(ctx: &mut EvalContext) -> HotResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for HotResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 12 — Hardware object table hit rate (%)")?;
        let mut t = Table::new(vec!["workload", "obj-alloc", "obj-free", "(aac)"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.1}", r.alloc_hit * 100.0),
                format!("{:.1}", r.free_hit * 100.0),
                format!("{:.1}", r.aac_hit * 100.0),
            ]);
        }
        t.row(vec![
            "func-avg".into(),
            format!("{:.1}", self.func_alloc_avg * 100.0),
            format!("{:.1}", self.func_free_avg * 100.0),
            String::new(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_hit_rates_high() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("aes"), ctx.workload("US")];
        let result = run_for(&mut ctx, &specs);
        for r in &result.rows {
            assert!(r.alloc_hit > 0.95, "{}: alloc hit {}", r.name, r.alloc_hit);
            // The AAC is only exercised on arena allocations; tiny quick
            // runs may only take compulsory misses.
            assert!((0.0..=1.0).contains(&r.aac_hit));
        }
        assert!(result.to_string().contains("Fig. 12"));
    }
}
