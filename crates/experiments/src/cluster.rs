//! Cluster-scale traffic evaluation: baseline vs. Memento fleets under
//! the same open-loop traffic, at several load levels.
//!
//! This is the experiment the paper's platform-scale motivation (§2) asks
//! for but single-machine runs cannot answer: with millions of sub-second
//! invocations arriving over a fleet, what happens to **tail latency**
//! (p50/p95/p99, queue wait included) and to the **fleet memory
//! footprint** (warm pools pinned across nodes)? Both fleets are offered
//! byte-identical arrival sequences; only the machine architecture under
//! the containers differs.
//!
//! Load levels are expressed as a fraction of the *baseline* fleet's warm
//! service capacity, so "1.15×" means traffic the baseline provably cannot
//! sustain — queues grow until the bounded admission rejects — while the
//! faster Memento containers keep the same offered load just inside
//! capacity.
//!
//! The default mix is deliberately idle-heavy (data-processing, platform,
//! and Go workloads whose warm pools dominate fleet memory): that is the
//! regime the paper's motivation describes, where most of a fleet's
//! resident frames belong to containers waiting warm, and where Memento's
//! parked containers — pool reserve shed back to the OS, only page tables
//! and live heap pinned — hold several-fold fewer frames than a software
//! allocator's cached free lists.
//!
//! The per-(workload, config) service costs come from
//! [`memento_cluster::calibrate`]d real-machine profiles; calibrations and
//! the per-(config, load) fleet simulations fan out across `--jobs`
//! worker threads like every other experiment, and results are slotted by
//! shard index so tables are byte-identical at any job count.

use crate::error::{scaled_specs, ExperimentError};
use crate::runner;
use crate::table::Table;
use memento_cluster::{
    calibrate, generate_arrivals, simulate, ArrivalConfig, ClusterConfig, Engine, KeepAlive,
    Placement, ProfileTable, ServiceProfile, WorkloadMix,
};
use memento_system::{stats, SystemConfig};
use memento_workloads::spec::WorkloadSpec;
use std::fmt;

/// Cycles per microsecond at the simulated core frequency.
fn cycles_per_us() -> f64 {
    stats::CORE_FREQ_HZ / 1e6
}

/// Fleet shape and traffic knobs for the cluster experiment.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Nodes in the fleet.
    pub nodes: usize,
    /// Bounded per-node queue depth.
    pub queue_capacity: usize,
    /// Invocations offered per (config, load) run.
    pub invocations: u64,
    /// Arrival-process seed (shared by both fleets at each load).
    pub seed: u64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            nodes: 8,
            queue_capacity: 32,
            invocations: 3_000,
            seed: 7,
        }
    }
}

/// One fleet's outcome at one load level.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Invocations served to completion.
    pub completed: u64,
    /// Arrivals rejected at admission (bounded queues).
    pub rejected: u64,
    /// Cold starts paid.
    pub cold_starts: u64,
    /// Warm starts served from the keep-alive pool.
    pub warm_starts: u64,
    /// Median end-to-end latency (queue wait + service), µs.
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Peak fleet memory footprint, MB.
    pub peak_mb: f64,
    /// Drain-time conservation audits passed.
    pub clean: bool,
}

/// Baseline vs. Memento at one load level.
#[derive(Clone, Debug)]
pub struct LoadRow {
    /// Load label ("0.5×" …), relative to baseline fleet capacity.
    pub label: String,
    /// Offered load as a fraction of baseline warm-service capacity.
    pub utilization: f64,
    /// Mean inter-arrival gap, µs.
    pub interarrival_us: f64,
    /// Baseline fleet outcome.
    pub baseline: FleetSummary,
    /// Memento fleet outcome.
    pub memento: FleetSummary,
}

/// The cluster evaluation across all load levels.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Fleet shape used.
    pub params: ClusterParams,
    /// Workload names in the mix.
    pub workloads: Vec<String>,
    /// One row per load level, lowest load first.
    pub rows: Vec<LoadRow>,
}

impl ClusterReport {
    /// The highest-load row — the headline operating point.
    pub fn peak_load(&self) -> &LoadRow {
        self.rows.last().expect("report always has load rows")
    }
}

/// Load levels as fractions of baseline fleet capacity. The top level
/// saturates the baseline while Memento's faster warm path keeps the same
/// traffic just under its own capacity.
const LOAD_LEVELS: [(&str, f64); 3] = [("0.5×", 0.5), ("0.9×", 0.9), ("1.15×", 1.15)];

/// Warm invocations per calibration (the last is taken as steady state).
const CALIBRATION_WARM_SAMPLES: usize = 3;

fn summarize(result: &memento_cluster::ClusterResult) -> FleetSummary {
    let (p50, p95, p99) = result.latency_percentiles();
    FleetSummary {
        completed: result.completed,
        rejected: result.rejected,
        cold_starts: result.cold_starts,
        warm_starts: result.warm_starts,
        p50_us: p50 as f64 / cycles_per_us(),
        p95_us: p95 as f64 / cycles_per_us(),
        p99_us: p99 as f64 / cycles_per_us(),
        peak_mb: result.peak_fleet_frames as f64 * 4096.0 / (1024.0 * 1024.0),
        clean: result.is_clean(),
    }
}

/// Runs the cluster evaluation over already-scaled specs on `jobs` worker
/// threads.
pub fn run_specs(
    specs: Vec<WorkloadSpec>,
    jobs: usize,
    params: ClusterParams,
) -> Result<ClusterReport, ExperimentError> {
    let workloads: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let mix = WorkloadMix::uniform(specs.clone())?;

    // Calibrate per-(config, workload) service profiles from real
    // machines; each calibration is one shard.
    let calib_points: Vec<(SystemConfig, WorkloadSpec)> =
        [SystemConfig::baseline(), SystemConfig::memento()]
            .iter()
            .flat_map(|cfg| specs.iter().map(move |s| (cfg.clone(), s.clone())))
            .collect();
    let profiles: Vec<ServiceProfile> = runner::map_ordered(jobs, &calib_points, |(cfg, spec)| {
        calibrate(cfg, spec, CALIBRATION_WARM_SAMPLES)
    });
    let (base_profiles, mem_profiles) = profiles.split_at(specs.len());
    let base_table = ProfileTable::from_profiles(base_profiles.to_vec());
    let mem_table = ProfileTable::from_profiles(mem_profiles.to_vec());

    // Baseline fleet capacity sets the load scale: with `nodes` servers
    // and mean warm service time S, saturation is one arrival every
    // S / nodes cycles.
    let mean_service: f64 = base_profiles
        .iter()
        .map(|p| p.warm_cycles as f64)
        // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
        .sum::<f64>()
        / base_profiles.len().max(1) as f64;
    let keep_alive = KeepAlive::Fixed((mean_service * 20.0) as u64);

    // Both configs at a load see the same arrival sequence, so generate
    // it once per load here rather than once per (load, config) shard —
    // arrival synthesis is a deterministic function of (seed, load) and
    // re-deriving it inside each shard doubled that work.
    let arrival_sets = LOAD_LEVELS
        .iter()
        .map(|&(_, utilization)| {
            let arrival = ArrivalConfig {
                seed: params.seed,
                count: params.invocations,
                mean_interarrival_cycles: mean_service / (params.nodes as f64 * utilization),
            };
            generate_arrivals(&arrival, &mix)
        })
        .collect::<Result<Vec<_>, _>>()?;

    // One shard per (load, config) fleet run.
    let sim_points: Vec<(usize, bool)> = (0..LOAD_LEVELS.len())
        .flat_map(|li| [(li, false), (li, true)])
        .collect();
    let sim_results = runner::map_ordered(jobs, &sim_points, |&(li, memento)| {
        let cluster = ClusterConfig {
            nodes: params.nodes,
            queue_capacity: params.queue_capacity,
            cores_per_node: 1,
            placement: Placement::LeastLoaded,
            keep_alive,
            cold_start: memento_cluster::ColdStart::Boot,
            reclamation: memento_cluster::Reclamation::None,
            autoscaler: memento_cluster::Autoscaler::None,
            record_timeline: false,
        };
        let table = if memento { &mem_table } else { &base_table };
        let result = simulate(
            Engine::Profiled(table.clone()),
            &cluster,
            &mix,
            &arrival_sets[li],
        )?;
        Ok::<FleetSummary, ExperimentError>(summarize(&result))
    });

    let mut summaries = Vec::with_capacity(sim_results.len());
    for r in sim_results {
        summaries.push(r?);
    }
    let rows = LOAD_LEVELS
        .iter()
        .enumerate()
        .map(|(li, (label, utilization))| LoadRow {
            label: (*label).to_owned(),
            utilization: *utilization,
            interarrival_us: mean_service / (params.nodes as f64 * utilization) / cycles_per_us(),
            baseline: summaries[2 * li].clone(),
            memento: summaries[2 * li + 1].clone(),
        })
        .collect();
    Ok(ClusterReport {
        params,
        workloads,
        rows,
    })
}

/// Runs the cluster evaluation over `names` (scaled by `scale_divisor`)
/// on `jobs` worker threads.
pub fn run_for_jobs(
    names: &[&str],
    scale_divisor: u64,
    jobs: usize,
    params: ClusterParams,
) -> Result<ClusterReport, ExperimentError> {
    run_specs(scaled_specs(names, scale_divisor)?, jobs, params)
}

/// The default cluster mix: the idle-heavy slice of the suite
/// (data-processing, platform, and Go workloads) whose warm pools
/// dominate a fleet's resident memory.
pub const DEFAULT_MIX: [&str; 8] = ["html", "US", "CM", "MI", "Redis", "Silo", "SQLite3", "up"];

/// Runs the default cluster evaluation at the context's scale and job
/// count.
pub fn run(ctx: &crate::context::EvalContext) -> Result<ClusterReport, ExperimentError> {
    let specs = DEFAULT_MIX
        .iter()
        .map(|n| ctx.try_workload(n))
        .collect::<Result<Vec<_>, _>>()?;
    run_specs(specs, ctx.jobs(), ClusterParams::default())
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cluster traffic: {} nodes, queue depth {}, {} invocations/run, mix [{}]",
            self.params.nodes,
            self.params.queue_capacity,
            self.params.invocations,
            self.workloads.join(", ")
        )?;
        writeln!(
            f,
            "(open-loop Poisson arrivals; load relative to baseline fleet capacity; \
             latency includes queue wait)"
        )?;
        let mut t = Table::new(vec![
            "load", "config", "p50 µs", "p95 µs", "p99 µs", "peak MB", "cold", "warm", "rejected",
        ]);
        for row in &self.rows {
            for (config, s) in [("baseline", &row.baseline), ("memento", &row.memento)] {
                t.row(vec![
                    format!("{} ({:.1} µs)", row.label, row.interarrival_us),
                    config.to_owned(),
                    format!("{:.1}", s.p50_us),
                    format!("{:.1}", s.p95_us),
                    format!("{:.1}", s.p99_us),
                    format!("{:.2}", s.peak_mb),
                    s.cold_starts.to_string(),
                    s.warm_starts.to_string(),
                    s.rejected.to_string(),
                ]);
            }
        }
        write!(f, "{t}")?;
        let peak = self.peak_load();
        write!(
            f,
            "\nat {} load: p99 {:.1} µs -> {:.1} µs ({:.2}x), peak footprint {:.2} MB -> {:.2} MB ({:.2}x)",
            peak.label,
            peak.baseline.p99_us,
            peak.memento.p99_us,
            peak.baseline.p99_us / peak.memento.p99_us.max(1e-9),
            peak.baseline.peak_mb,
            peak.memento.peak_mb,
            peak.memento.peak_mb / peak.baseline.peak_mb.max(1e-9),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_report() -> ClusterReport {
        // The exact default configuration, scaled down 8× so the
        // acceptance assertions exercise what the shipped experiment
        // reports.
        run_for_jobs(&DEFAULT_MIX, 8, 2, ClusterParams::default()).expect("known workloads")
    }

    #[test]
    fn memento_wins_tail_latency_and_footprint_at_peak_load() {
        let report = quick_report();
        assert_eq!(report.rows.len(), 3, "three load levels");
        for row in &report.rows {
            assert!(row.baseline.clean && row.memento.clean, "audits must pass");
            assert!(row.baseline.completed > 0 && row.memento.completed > 0);
        }
        let peak = report.peak_load();
        assert!(
            peak.memento.p99_us < peak.baseline.p99_us,
            "memento p99 {:.1} must beat baseline {:.1} at {} load",
            peak.memento.p99_us,
            peak.baseline.p99_us,
            peak.label
        );
        assert!(
            peak.memento.peak_mb < peak.baseline.peak_mb,
            "memento peak footprint {:.2} MB must beat baseline {:.2} MB",
            peak.memento.peak_mb,
            peak.baseline.peak_mb
        );
        assert!(report.to_string().contains("p99"));
    }

    #[test]
    fn tail_latency_grows_with_load() {
        let report = quick_report();
        let p99s: Vec<f64> = report.rows.iter().map(|r| r.baseline.p99_us).collect();
        assert!(
            p99s[0] <= p99s[2],
            "baseline p99 must not shrink as offered load grows: {p99s:?}"
        );
    }

    #[test]
    fn report_is_byte_identical_across_job_counts() {
        // The hoisted arrival sets and slot-ordered shard results must
        // make the rendered table independent of worker-thread count.
        let params = ClusterParams {
            invocations: 800,
            ..ClusterParams::default()
        };
        let renders: Vec<String> = [1, 2, 5]
            .iter()
            .map(|&jobs| {
                run_for_jobs(&["aes", "html"], 16, jobs, params)
                    .expect("known workloads")
                    .to_string()
            })
            .collect();
        assert_eq!(renders[0], renders[1], "jobs=1 vs jobs=2");
        assert_eq!(renders[0], renders[2], "jobs=1 vs jobs=5");
    }

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let err = run_for_jobs(&["ghost"], 8, 1, ClusterParams::default()).expect_err("must fail");
        assert_eq!(err, ExperimentError::UnknownWorkload("ghost".into()));
    }
}
