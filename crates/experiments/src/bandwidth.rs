//! Fig. 10: normalized main-memory bandwidth reduction, with the bypass
//! mechanism's contribution highlighted (the paper's yellow caps).

use crate::context::{ConfigKind, EvalContext};
use crate::table::Table;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// One Fig. 10 bar.
#[derive(Clone, Debug)]
pub struct BandwidthRow {
    /// Workload name.
    pub name: String,
    /// Paper grouping.
    pub category: Category,
    /// Total DRAM-traffic reduction: 1 − memento/baseline.
    pub reduction: f64,
    /// Portion of the reduction contributed by main-memory bypass.
    pub bypass_share: f64,
}

/// Fig. 10 results.
#[derive(Clone, Debug)]
pub struct BandwidthResult {
    /// Per-workload bars.
    pub rows: Vec<BandwidthRow>,
    /// Mean reduction over function workloads.
    pub func_avg: f64,
    /// Mean reduction over data-processing applications.
    pub data_avg: f64,
    /// Mean reduction over platform operations.
    pub pltf_avg: f64,
    /// Mean bypass contribution over all workloads.
    pub bypass_avg: f64,
}

fn mean(rows: &[BandwidthRow], cat: Category) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| r.category == cat)
        .map(|r| r.reduction)
        .collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs Fig. 10 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> BandwidthResult {
    let rows: Vec<BandwidthRow> = specs
        .iter()
        .map(|spec| {
            let base = ctx.run(spec, ConfigKind::Baseline).dram_bytes() as f64;
            let mem = ctx.run(spec, ConfigKind::Memento).dram_bytes() as f64;
            let nobypass = ctx.run(spec, ConfigKind::MementoNoBypass).dram_bytes() as f64;
            let base = base.max(1.0);
            BandwidthRow {
                name: spec.name.clone(),
                category: spec.category,
                reduction: 1.0 - mem / base,
                bypass_share: ((nobypass - mem) / base).max(0.0),
            }
        })
        .collect();
    let bypass_avg = rows.iter().map(|r| r.bypass_share).sum::<f64>() / rows.len().max(1) as f64;
    BandwidthResult {
        func_avg: mean(&rows, Category::Function),
        data_avg: mean(&rows, Category::DataProc),
        pltf_avg: mean(&rows, Category::Platform),
        bypass_avg,
        rows,
    }
}

/// Runs Fig. 10 over the full suite.
pub fn run(ctx: &mut EvalContext) -> BandwidthResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for BandwidthResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 10 — Normalized memory-bandwidth reduction (bypass share highlighted)"
        )?;
        let mut t = Table::new(vec!["workload", "reduction", "of which bypass"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.3}", r.reduction),
                format!("{:.3}", r.bypass_share),
            ]);
        }
        t.row(vec![
            "func-avg".into(),
            format!("{:.3}", self.func_avg),
            String::new(),
        ]);
        t.row(vec![
            "data-avg".into(),
            format!("{:.3}", self.data_avg),
            String::new(),
        ]);
        t.row(vec![
            "pltf-avg".into(),
            format!("{:.3}", self.pltf_avg),
            String::new(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_reduction_positive_for_alloc_heavy() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("html")];
        let result = run_for(&mut ctx, &specs);
        let r = &result.rows[0];
        assert!(r.reduction > 0.0, "reduction {}", r.reduction);
        assert!(r.bypass_share >= 0.0);
        assert!(r.bypass_share <= r.reduction + 0.05);
        assert!(result.to_string().contains("Fig. 10"));
    }
}
