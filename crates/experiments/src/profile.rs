//! Per-run profiling: one traced simulation rendered as a cycle flame
//! table, a metrics appendix, and a heap-profile sample table.
//!
//! This is the reporting end of the observability layer: the machine
//! mirrors every cycle charge into `memento_obs` during the run, and this
//! module turns the result into the three plain-text views EXPERIMENTS.md
//! calls the profiling appendix. The run itself produces byte-identical
//! [`RunStats`] to an untraced run — tracing only *observes*.

use crate::context::{ConfigKind, STEADY_WARMUP};
use memento_obs::profile::render_samples;
use memento_system::{Machine, RunStats};
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;
use std::path::Path;

/// Everything one profiled run produces, pre-rendered for printing.
pub struct ProfileReport {
    /// Workload/config the run profiled (header for the appendix).
    pub title: String,
    /// The run's ordinary statistics — byte-identical to an untraced run.
    pub stats: RunStats,
    /// Flame-style per-phase cycle breakdown from the tracer.
    pub flame: String,
    /// Counters + histograms rendered by the metrics registry.
    pub metrics: String,
    /// Heap-profile samples (live bytes, pool frames, HOT residency).
    pub samples: String,
    /// Total cycles attributed across all trace spans. Reconciles with the
    /// machine's cycle ledger by construction: every ledger charge becomes
    /// exactly one span of the same length.
    pub charged_cycles: u64,
}

/// Runs `spec` under `kind` with tracing enabled and renders the
/// profiling views. When `trace_path` is given the machine also writes the
/// Chrome/Perfetto `trace_event` JSON there at run end (open it in
/// `ui.perfetto.dev`); otherwise the trace stays in memory.
pub fn profile_run(
    spec: &WorkloadSpec,
    kind: ConfigKind,
    trace_path: Option<&Path>,
) -> ProfileReport {
    let cfg = kind.system_config();
    let cfg = match trace_path {
        Some(p) => cfg.traced(p),
        None => cfg.traced_in_memory(),
    };
    let mut machine = Machine::new(cfg);
    let stats = if spec.category == Category::Function {
        machine.run(spec)
    } else {
        machine.run_steady(spec, STEADY_WARMUP)
    };
    let obs = machine
        .observability()
        .expect("profile_run enables tracing");
    ProfileReport {
        title: format!("{}/{:?}", spec.name, kind),
        flame: obs.tracer().flame_table(),
        metrics: obs.metrics().render(),
        samples: render_samples(obs.samples()),
        charged_cycles: obs.tracer().total_charged(),
        stats,
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Profile — {}", self.title)?;
        writeln!(
            f,
            "total cycles {}  (traced/attributed {})",
            self.stats.total_cycles().raw(),
            self.charged_cycles
        )?;
        writeln!(f)?;
        writeln!(f, "{}", self.flame)?;
        writeln!(f, "metrics appendix")?;
        writeln!(f, "{}", self.metrics)?;
        if !self.samples.is_empty() {
            writeln!(f, "heap-profile samples")?;
            write!(f, "{}", self.samples)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalContext;

    #[test]
    fn profile_renders_all_sections() {
        let ctx = EvalContext::quick();
        let mut spec = ctx.workload("aes");
        spec.total_instructions = 200_000;
        let report = profile_run(&spec, ConfigKind::Memento, None);
        assert!(report.charged_cycles > 0, "spans were attributed");
        let text = report.to_string();
        assert!(text.contains("Profile — aes/Memento"));
        assert!(text.contains("metrics appendix"));
        assert!(text.contains("tlb.l1.hits"), "layer stats ingested");
        assert!(text.contains("user"), "flame table has the user phase");
    }

    #[test]
    fn profiled_stats_match_untraced_run() {
        let ctx = EvalContext::quick();
        let mut spec = ctx.workload("aes");
        spec.total_instructions = 200_000;
        let report = profile_run(&spec, ConfigKind::Baseline, None);
        let plain = EvalContext::simulate(&crate::sharding::SimPoint::new(
            spec.clone(),
            ConfigKind::Baseline,
        ));
        assert_eq!(
            report.stats.total_cycles(),
            plain.total_cycles(),
            "tracing must be cycle-invisible"
        );
    }
}
