//! Fig. 8: normalized speedup of Memento over the baseline, per workload
//! plus func-avg / data-avg / pltf-avg.

use crate::context::EvalContext;
use crate::table::{f3, Table};
use memento_system::stats;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// One Fig. 8 bar.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Workload name.
    pub name: String,
    /// Paper grouping.
    pub category: Category,
    /// Baseline cycles / Memento cycles.
    pub speedup: f64,
}

/// Fig. 8 results.
#[derive(Clone, Debug)]
pub struct SpeedupResult {
    /// Per-workload bars in suite order.
    pub rows: Vec<SpeedupRow>,
    /// Geometric-mean speedup over the function workloads.
    pub func_avg: f64,
    /// Geometric-mean speedup over the data-processing applications.
    pub data_avg: f64,
    /// Geometric-mean speedup over the platform operations.
    pub pltf_avg: f64,
}

impl SpeedupResult {
    /// Speedup of one workload.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.speedup)
    }

    fn avg(&self, cat: Category) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.category == cat)
            .map(|r| r.speedup)
            .collect();
        stats::geomean(&v)
    }
}

/// Runs Fig. 8 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> SpeedupResult {
    use crate::context::ConfigKind;
    ctx.prefetch_kinds(specs, &[ConfigKind::Baseline, ConfigKind::Memento]);
    let rows: Vec<SpeedupRow> = specs
        .iter()
        .map(|spec| {
            let (base, mem) = ctx.pair(spec);
            SpeedupRow {
                name: spec.name.clone(),
                category: spec.category,
                speedup: stats::speedup(&base, &mem),
            }
        })
        .collect();
    let mut result = SpeedupResult {
        rows,
        func_avg: 1.0,
        data_avg: 1.0,
        pltf_avg: 1.0,
    };
    result.func_avg = result.avg(Category::Function);
    result.data_avg = result.avg(Category::DataProc);
    result.pltf_avg = result.avg(Category::Platform);
    result
}

/// Runs Fig. 8 over the full suite.
pub fn run(ctx: &mut EvalContext) -> SpeedupResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for SpeedupResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8 — Normalized speedup (baseline = 1.0)")?;
        let mut t = Table::new(vec!["workload", "speedup"]);
        for r in &self.rows {
            t.row(vec![r.name.clone(), f3(r.speedup)]);
        }
        t.row(vec!["func-avg".into(), f3(self.func_avg)]);
        t.row(vec!["data-avg".into(), f3(self.data_avg)]);
        t.row(vec!["pltf-avg".into(), f3(self.pltf_avg)]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_speedups_positive() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("aes"), ctx.workload("Redis")];
        let result = run_for(&mut ctx, &specs);
        assert_eq!(result.rows.len(), 2);
        for r in &result.rows {
            assert!(r.speedup > 1.0, "{} not sped up: {}", r.name, r.speedup);
        }
        assert!(result.get("aes").is_some());
        assert!(result.get("nope").is_none());
        assert!(result.to_string().contains("Fig. 8"));
    }
}
