//! Table 3: the simulated configuration, printed from the live config
//! structs so the table can never drift from the code.

use memento_core::page_alloc::PageAllocatorConfig;
use memento_core::{MementoCosts, NUM_SIZE_CLASSES};
use memento_system::SystemConfig;
use std::fmt;

/// Table 3 contents.
#[derive(Clone, Debug)]
pub struct ConfigTable {
    cfg: SystemConfig,
    page: PageAllocatorConfig,
    costs: MementoCosts,
}

/// Builds Table 3 from the paper-default configuration.
pub fn run() -> ConfigTable {
    ConfigTable {
        cfg: SystemConfig::memento(),
        page: PageAllocatorConfig::paper_default(),
        costs: MementoCosts::calibrated(),
    }
}

impl fmt::Display for ConfigTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.cfg.mem;
        writeln!(f, "Table 3 — Simulated configuration")?;
        writeln!(
            f,
            "CPU    4-issue OOO abstraction (CPI {}), 3 GHz",
            self.cfg.cpi
        )?;
        writeln!(f, "TLB    L1 64-entry 4-way; L2 2048-entry 12-way")?;
        writeln!(
            f,
            "L1d    {} KB, {}-way, {} cycles, LRU",
            m.l1d.size_bytes / 1024,
            m.l1d.assoc,
            m.l1d.latency.raw()
        )?;
        writeln!(
            f,
            "L1i    {} KB, {}-way, {} cycles, LRU",
            m.l1i.size_bytes / 1024,
            m.l1i.assoc,
            m.l1i.latency.raw()
        )?;
        writeln!(
            f,
            "HOT    {} entries (3.4 KB), direct-mapped, {} cycles",
            NUM_SIZE_CLASSES, self.costs.hot_access
        )?;
        writeln!(
            f,
            "L2     {} KB, {}-way, {} cycles, LRU",
            m.l2.size_bytes / 1024,
            m.l2.assoc,
            m.l2.latency.raw()
        )?;
        writeln!(
            f,
            "LLC    {} MB slice, {}-way, {} cycles, LRU",
            m.llc.size_bytes / (1024 * 1024),
            m.llc.assoc,
            m.llc.latency.raw()
        )?;
        writeln!(
            f,
            "AAC    {}-entry, direct-mapped, {} cycle",
            self.page.aac_entries, self.costs.aac_hit
        )?;
        writeln!(
            f,
            "DRAM   {} GB, DDR4-3200-style, {} banks (row hit {} cy / miss {} cy)",
            self.cfg.phys_mem_bytes >> 30,
            m.dram.banks,
            m.dram.row_hit.raw(),
            m.dram.row_miss.raw()
        )?;
        write!(f, "OS     kernel model calibrated against Linux 5.18 paths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_paper_geometry() {
        let s = run().to_string();
        assert!(s.contains("32 KB, 8-way, 2 cycles"));
        assert!(s.contains("256 KB, 8-way, 14 cycles"));
        assert!(s.contains("2 MB slice, 16-way, 40 cycles"));
        assert!(s.contains("64 entries (3.4 KB)"));
        assert!(s.contains("32-entry, direct-mapped, 1 cycle"));
        assert!(s.contains("16 banks"));
    }
}
