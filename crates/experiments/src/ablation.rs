//! Ablations of Memento's own design choices (the knobs DESIGN.md calls
//! out): the optional eager-replenish optimization of §3.1, the hardware
//! page-pool refill batch, and the AAC pointer-slot capacity.

use crate::error::{scaled_specs, ExperimentError};
use crate::runner;
use crate::table::{f3, Table};
use memento_core::device::MementoConfig;
use memento_core::page_alloc::PageAllocatorConfig;
use memento_system::{stats, Machine, Mode, RunStats, SystemConfig};
use memento_workloads::spec::WorkloadSpec;
use std::fmt;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Geometric-mean speedup over the baseline across the workload set.
    pub speedup: f64,
    /// Mean HOT-miss-path share of `obj-alloc` operations.
    pub alloc_miss_rate: f64,
}

/// Ablation results.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Variant rows (first row is the paper-default configuration).
    pub rows: Vec<AblationRow>,
}

fn memento_with(mcfg: MementoConfig) -> SystemConfig {
    SystemConfig {
        mode: Mode::Memento(mcfg),
        ..SystemConfig::baseline()
    }
}

/// Aggregates one variant's per-spec runs against the shared baselines.
fn summarize(baselines: &[RunStats], runs: &[RunStats]) -> (f64, f64) {
    let speedups: Vec<f64> = baselines
        .iter()
        .zip(runs)
        .map(|(base, mem)| stats::speedup(base, mem))
        .collect();
    let miss_rates: Vec<f64> = runs
        .iter()
        .map(|mem| 1.0 - mem.hot.expect("memento run").alloc.hit_rate())
        .collect();
    (
        stats::geomean(&speedups),
        // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
        miss_rates.iter().sum::<f64>() / miss_rates.len().max(1) as f64,
    )
}

/// The ablation variants: label + Memento configuration.
fn variants() -> Vec<(String, MementoConfig)> {
    let default = MementoConfig::paper_default();
    let mut v = vec![
        ("paper default".to_owned(), default),
        // §3.1's optional optimization: eagerly replenish the next arena
        // so HOT-miss latency is hidden off the critical path.
        (
            "eager replenish".to_owned(),
            MementoConfig {
                eager_replenish: true,
                ..default
            },
        ),
        // No bypass (Fig. 9/10's ablation).
        (
            "no bypass".to_owned(),
            MementoConfig {
                bypass_enabled: false,
                ..default
            },
        ),
    ];
    // Pool refill batch: tiny (4) and large (64) grants.
    for batch in [4u64, 64] {
        v.push((
            format!("pool batch {batch}"),
            MementoConfig {
                page_alloc: PageAllocatorConfig {
                    refill_batch: batch,
                    low_water: (batch / 4).max(1) as usize,
                    ..default.page_alloc
                },
                ..default
            },
        ));
    }
    // AAC slots per entry: 1 (near-no caching) vs the default 8.
    v.push((
        "aac 1 slot".to_owned(),
        MementoConfig {
            page_alloc: PageAllocatorConfig {
                aac_slots: 1,
                ..default.page_alloc
            },
            ..default
        },
    ));
    v
}

/// Runs the ablation suite over `names` (scaled by `scale_divisor`) on
/// `jobs` worker threads. Every (variant, workload) pair is one shard and
/// each baseline runs once (shared across variants, which a serial
/// per-variant sweep would re-run); aggregation is in fixed variant order,
/// so output is identical at any jobs count.
pub fn run_for_jobs(
    names: &[&str],
    scale_divisor: u64,
    jobs: usize,
) -> Result<AblationResult, ExperimentError> {
    let specs: Vec<WorkloadSpec> = scaled_specs(names, scale_divisor)?;
    let variants = variants();

    // One work item per simulation: the shared baselines first, then every
    // variant x spec cell.
    let mut points: Vec<(SystemConfig, WorkloadSpec)> = specs
        .iter()
        .map(|s| (SystemConfig::baseline(), s.clone()))
        .collect();
    for (_, mcfg) in &variants {
        points.extend(specs.iter().map(|s| (memento_with(*mcfg), s.clone())));
    }
    let results = runner::map_ordered(jobs, &points, |(cfg, spec)| {
        Machine::new(cfg.clone()).run(spec)
    });

    let (baselines, variant_runs) = results.split_at(specs.len());
    let rows = variants
        .iter()
        .zip(variant_runs.chunks(specs.len()))
        .map(|((label, _), runs)| {
            let (speedup, alloc_miss_rate) = summarize(baselines, runs);
            AblationRow {
                variant: label.clone(),
                speedup,
                alloc_miss_rate,
            }
        })
        .collect();
    Ok(AblationResult { rows })
}

/// Runs the ablation suite over `names` (worker count from the
/// environment).
pub fn run_for(names: &[&str], scale_divisor: u64) -> Result<AblationResult, ExperimentError> {
    run_for_jobs(names, scale_divisor, runner::effective_jobs(None))
}

/// Default ablation set.
pub fn run() -> Result<AblationResult, ExperimentError> {
    run_for(&["html", "US", "bfs-go"], 2)
}

/// §4 future-work extension study: an enhanced GC that proactively frees
/// dead ephemeral objects through `obj-free` instead of deferring to the
/// sweep, on the Golang workloads.
#[derive(Clone, Debug)]
pub struct ProactiveGcResult {
    /// `(workload, memento speedup, memento+proactive speedup, LLC miss
    /// ratio proactive/deferred)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Runs the proactive-GC extension comparison over Go workloads.
pub fn proactive_gc_for(
    names: &[&str],
    scale_divisor: u64,
) -> Result<ProactiveGcResult, ExperimentError> {
    let specs: Vec<WorkloadSpec> = scaled_specs(names, scale_divisor)?;
    // Three independent systems per workload; each is one shard.
    let points: Vec<(SystemConfig, WorkloadSpec)> = specs
        .iter()
        .flat_map(|spec| {
            [
                SystemConfig::baseline(),
                SystemConfig::memento(),
                SystemConfig::memento_proactive_gc(),
            ]
            .map(|cfg| (cfg, spec.clone()))
        })
        .collect();
    let results = runner::map_ordered(runner::effective_jobs(None), &points, |(cfg, spec)| {
        Machine::new(cfg.clone()).run(spec)
    });
    let rows = specs
        .iter()
        .zip(results.chunks(3))
        .map(|(spec, runs)| {
            let (base, memento, proactive) = (&runs[0], &runs[1], &runs[2]);
            let llc_ratio = (proactive.mem.llc.demand.misses.max(1)) as f64
                / (memento.mem.llc.demand.misses.max(1)) as f64;
            (
                spec.name.clone(),
                stats::speedup(base, memento),
                stats::speedup(base, proactive),
                llc_ratio,
            )
        })
        .collect();
    Ok(ProactiveGcResult { rows })
}

/// Default proactive-GC study over the Go functions.
pub fn proactive_gc() -> Result<ProactiveGcResult, ExperimentError> {
    proactive_gc_for(&["html-go", "bfs-go", "aes-go"], 2)
}

impl fmt::Display for ProactiveGcResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4 extension — GC with proactive ephemeral frees via obj-free (Golang)"
        )?;
        let mut t = Table::new(vec!["workload", "Memento", "+proactive", "LLC-miss ratio"]);
        for (name, m, p, llc) in &self.rows {
            t.row(vec![name.clone(), f3(*m), f3(*p), f3(*llc)]);
        }
        write!(f, "{t}")
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Design-choice ablations (geomean speedup over baseline)")?;
        let mut t = Table::new(vec!["variant", "speedup", "HOT alloc-miss"]);
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                f3(r.speedup),
                format!("{:.3}%", r.alloc_miss_rate * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let err = run_for(&["nope"], 8).expect_err("must fail");
        assert_eq!(err, ExperimentError::UnknownWorkload("nope".into()));
        assert!(proactive_gc_for(&["also-nope"], 8).is_err());
    }

    #[test]
    fn proactive_gc_is_sane() {
        let result = proactive_gc_for(&["aes-go"], 8).expect("known workloads");
        let (_, memento, proactive, llc_ratio) = result.rows[0].clone();
        assert!(memento > 1.0);
        assert!(proactive > 1.0);
        // Proactive frees recycle ephemeral slots, so cache pressure must
        // not grow (the paper's motivating intuition).
        assert!(llc_ratio < 1.15, "LLC miss ratio {llc_ratio}");
        assert!(result.to_string().contains("proactive"));
    }

    #[test]
    fn ablations_order_sanely() {
        let result = run_for(&["html"], 8).expect("known workloads");
        let get = |label: &str| {
            result
                .rows
                .iter()
                .find(|r| r.variant == label)
                .map(|r| r.speedup)
                .expect("variant present")
        };
        let default = get("paper default");
        assert!(default > 1.0);
        assert!(get("no bypass") <= default + 1e-9, "bypass can only help");
        assert!(
            get("eager replenish") >= default - 1e-9,
            "hiding miss latency can only help"
        );
        // Pool batch size is a memory/perf trade-off, not a perf cliff.
        assert!((get("pool batch 4") - default).abs() < 0.05);
        assert!((get("aac 1 slot") - default).abs() < 0.05);
    }
}
