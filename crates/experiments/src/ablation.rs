//! Ablations of Memento's own design choices (the knobs DESIGN.md calls
//! out): the optional eager-replenish optimization of §3.1, the hardware
//! page-pool refill batch, and the AAC pointer-slot capacity.

use crate::table::{f3, Table};
use memento_core::device::MementoConfig;
use memento_core::page_alloc::PageAllocatorConfig;
use memento_system::{stats, Machine, Mode, SystemConfig};
use memento_workloads::spec::WorkloadSpec;
use memento_workloads::suite;
use std::fmt;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Geometric-mean speedup over the baseline across the workload set.
    pub speedup: f64,
    /// Mean HOT-miss-path share of `obj-alloc` operations.
    pub alloc_miss_rate: f64,
}

/// Ablation results.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Variant rows (first row is the paper-default configuration).
    pub rows: Vec<AblationRow>,
}

fn memento_with(mcfg: MementoConfig) -> SystemConfig {
    SystemConfig {
        mode: Mode::Memento(mcfg),
        ..SystemConfig::baseline()
    }
}

fn measure(cfg: SystemConfig, specs: &[WorkloadSpec]) -> (f64, f64) {
    let mut speedups = Vec::new();
    let mut miss_rates = Vec::new();
    for spec in specs {
        let base = Machine::new(SystemConfig::baseline()).run(spec);
        let mem = Machine::new(cfg.clone()).run(spec);
        speedups.push(stats::speedup(&base, &mem));
        let hot = mem.hot.expect("memento run");
        miss_rates.push(1.0 - hot.alloc.hit_rate());
    }
    (
        stats::geomean(&speedups),
        miss_rates.iter().sum::<f64>() / miss_rates.len().max(1) as f64,
    )
}

/// Runs the ablation suite over `names` (scaled by `scale_divisor`).
pub fn run_for(names: &[&str], scale_divisor: u64) -> AblationResult {
    let specs: Vec<WorkloadSpec> = names
        .iter()
        .map(|n| {
            let mut s = suite::by_name(n).expect("known workload");
            s.total_instructions /= scale_divisor;
            s
        })
        .collect();

    let mut rows = Vec::new();
    let default = MementoConfig::paper_default();

    let (s, m) = measure(memento_with(default), &specs);
    rows.push(AblationRow {
        variant: "paper default".into(),
        speedup: s,
        alloc_miss_rate: m,
    });

    // §3.1's optional optimization: eagerly replenish the next arena so
    // HOT-miss latency is hidden off the critical path.
    let (s, m) = measure(
        memento_with(MementoConfig {
            eager_replenish: true,
            ..default
        }),
        &specs,
    );
    rows.push(AblationRow {
        variant: "eager replenish".into(),
        speedup: s,
        alloc_miss_rate: m,
    });

    // No bypass (Fig. 9/10's ablation).
    let (s, m) = measure(
        memento_with(MementoConfig {
            bypass_enabled: false,
            ..default
        }),
        &specs,
    );
    rows.push(AblationRow {
        variant: "no bypass".into(),
        speedup: s,
        alloc_miss_rate: m,
    });

    // Pool refill batch: tiny (4) and large (64) grants.
    for batch in [4u64, 64] {
        let (s, m) = measure(
            memento_with(MementoConfig {
                page_alloc: PageAllocatorConfig {
                    refill_batch: batch,
                    low_water: (batch / 4).max(1) as usize,
                    ..default.page_alloc
                },
                ..default
            }),
            &specs,
        );
        rows.push(AblationRow {
            variant: format!("pool batch {batch}"),
            speedup: s,
            alloc_miss_rate: m,
        });
    }

    // AAC slots per entry: 1 (near-no caching) vs the default 8.
    let (s, m) = measure(
        memento_with(MementoConfig {
            page_alloc: PageAllocatorConfig {
                aac_slots: 1,
                ..default.page_alloc
            },
            ..default
        }),
        &specs,
    );
    rows.push(AblationRow {
        variant: "aac 1 slot".into(),
        speedup: s,
        alloc_miss_rate: m,
    });

    AblationResult { rows }
}

/// Default ablation set.
pub fn run() -> AblationResult {
    run_for(&["html", "US", "bfs-go"], 2)
}

/// §4 future-work extension study: an enhanced GC that proactively frees
/// dead ephemeral objects through `obj-free` instead of deferring to the
/// sweep, on the Golang workloads.
#[derive(Clone, Debug)]
pub struct ProactiveGcResult {
    /// `(workload, memento speedup, memento+proactive speedup, LLC miss
    /// ratio proactive/deferred)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Runs the proactive-GC extension comparison over Go workloads.
pub fn proactive_gc_for(names: &[&str], scale_divisor: u64) -> ProactiveGcResult {
    let mut rows = Vec::new();
    for name in names {
        let mut spec = suite::by_name(name).expect("known workload");
        spec.total_instructions /= scale_divisor;
        let base = Machine::new(SystemConfig::baseline()).run(&spec);
        let memento = Machine::new(SystemConfig::memento()).run(&spec);
        let proactive = Machine::new(SystemConfig::memento_proactive_gc()).run(&spec);
        let llc_ratio = (proactive.mem.llc.demand.misses.max(1)) as f64
            / (memento.mem.llc.demand.misses.max(1)) as f64;
        rows.push((
            spec.name.clone(),
            stats::speedup(&base, &memento),
            stats::speedup(&base, &proactive),
            llc_ratio,
        ));
    }
    ProactiveGcResult { rows }
}

/// Default proactive-GC study over the Go functions.
pub fn proactive_gc() -> ProactiveGcResult {
    proactive_gc_for(&["html-go", "bfs-go", "aes-go"], 2)
}

impl fmt::Display for ProactiveGcResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4 extension — GC with proactive ephemeral frees via obj-free (Golang)"
        )?;
        let mut t = Table::new(vec![
            "workload",
            "Memento",
            "+proactive",
            "LLC-miss ratio",
        ]);
        for (name, m, p, llc) in &self.rows {
            t.row(vec![name.clone(), f3(*m), f3(*p), f3(*llc)]);
        }
        write!(f, "{t}")
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Design-choice ablations (geomean speedup over baseline)")?;
        let mut t = Table::new(vec!["variant", "speedup", "HOT alloc-miss"]);
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                f3(r.speedup),
                format!("{:.3}%", r.alloc_miss_rate * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proactive_gc_is_sane() {
        let result = proactive_gc_for(&["aes-go"], 8);
        let (_, memento, proactive, llc_ratio) = result.rows[0].clone();
        assert!(memento > 1.0);
        assert!(proactive > 1.0);
        // Proactive frees recycle ephemeral slots, so cache pressure must
        // not grow (the paper's motivating intuition).
        assert!(llc_ratio < 1.15, "LLC miss ratio {llc_ratio}");
        assert!(result.to_string().contains("proactive"));
    }

    #[test]
    fn ablations_order_sanely() {
        let result = run_for(&["html"], 8);
        let get = |label: &str| {
            result
                .rows
                .iter()
                .find(|r| r.variant == label)
                .map(|r| r.speedup)
                .expect("variant present")
        };
        let default = get("paper default");
        assert!(default > 1.0);
        assert!(
            get("no bypass") <= default + 1e-9,
            "bypass can only help"
        );
        assert!(
            get("eager replenish") >= default - 1e-9,
            "hiding miss latency can only help"
        );
        // Pool batch size is a memory/perf trade-off, not a perf cliff.
        assert!((get("pool batch 4") - default).abs() < 0.05);
        assert!((get("aac 1 slot") - default).abs() < 0.05);
    }
}
