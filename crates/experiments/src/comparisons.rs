//! §6.1 iso-storage comparison and §6.7 idealized-Mallacc comparison.

use crate::context::{ConfigKind, EvalContext};
use crate::table::{f3, Table};
use memento_system::stats;
use memento_workloads::spec::{Language, WorkloadSpec};
use std::fmt;

/// §6.1: what happens if the HOT's SRAM is given to the L1D instead
/// (hypothetical 36 KB 9-way L1D at unchanged latency).
#[derive(Clone, Debug)]
pub struct IsoStorageResult {
    /// `(workload, iso-storage speedup, memento speedup)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Mean iso-storage speedup.
    pub iso_avg: f64,
    /// Mean Memento speedup on the same set.
    pub memento_avg: f64,
}

/// Runs the iso-storage comparison over `specs`.
pub fn iso_storage_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> IsoStorageResult {
    ctx.prefetch_kinds(
        specs,
        &[
            ConfigKind::Baseline,
            ConfigKind::IsoStorage,
            ConfigKind::Memento,
        ],
    );
    let rows: Vec<(String, f64, f64)> = specs
        .iter()
        .map(|spec| {
            let base = ctx.run(spec, ConfigKind::Baseline).clone();
            let iso = ctx.run(spec, ConfigKind::IsoStorage).clone();
            let mem = ctx.run(spec, ConfigKind::Memento).clone();
            (
                spec.name.clone(),
                stats::speedup(&base, &iso),
                stats::speedup(&base, &mem),
            )
        })
        .collect();
    let n = rows.len().max(1) as f64;
    IsoStorageResult {
        iso_avg: rows.iter().map(|r| r.1).sum::<f64>() / n,
        memento_avg: rows.iter().map(|r| r.2).sum::<f64>() / n,
        rows,
    }
}

/// Runs the iso-storage comparison over the function suite.
pub fn iso_storage(ctx: &mut EvalContext) -> IsoStorageResult {
    let specs: Vec<WorkloadSpec> = ctx
        .workloads()
        .into_iter()
        .filter(|s| s.category == memento_workloads::spec::Category::Function)
        .collect();
    iso_storage_for(ctx, &specs)
}

impl fmt::Display for IsoStorageResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.1 — Iso-storage comparison (HOT SRAM donated to a 9-way L1D)"
        )?;
        let mut t = Table::new(vec!["workload", "iso-L1D", "Memento"]);
        for (name, iso, mem) in &self.rows {
            t.row(vec![name.clone(), f3(*iso), f3(*mem)]);
        }
        writeln!(f, "{t}")?;
        write!(
            f,
            "avg: iso-storage {:.3} vs Memento {:.3}",
            self.iso_avg, self.memento_avg
        )
    }
}

/// §6.7: idealized Mallacc (zero-latency, always-hit malloc acceleration,
/// userspace only) vs. Memento on the C++ DeathStarBench functions.
#[derive(Clone, Debug)]
pub struct MallaccResult {
    /// `(workload, mallacc speedup, memento speedup)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Mean Mallacc speedup.
    pub mallacc_avg: f64,
    /// Mean Memento speedup on the same workloads.
    pub memento_avg: f64,
}

/// Runs the Mallacc comparison over the C++ members of `specs`.
pub fn mallacc_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> MallaccResult {
    let cpp: Vec<WorkloadSpec> = specs
        .iter()
        .filter(|s| s.language == Language::Cpp)
        .cloned()
        .collect();
    ctx.prefetch_kinds(
        &cpp,
        &[
            ConfigKind::Baseline,
            ConfigKind::IdealMallacc,
            ConfigKind::Memento,
        ],
    );
    let rows: Vec<(String, f64, f64)> = cpp
        .iter()
        .map(|spec| {
            let base = ctx.run(spec, ConfigKind::Baseline).clone();
            let mallacc = ctx.run(spec, ConfigKind::IdealMallacc).clone();
            let mem = ctx.run(spec, ConfigKind::Memento).clone();
            (
                spec.name.clone(),
                stats::speedup(&base, &mallacc),
                stats::speedup(&base, &mem),
            )
        })
        .collect();
    let n = rows.len().max(1) as f64;
    MallaccResult {
        mallacc_avg: rows.iter().map(|r| r.1).sum::<f64>() / n,
        memento_avg: rows.iter().map(|r| r.2).sum::<f64>() / n,
        rows,
    }
}

/// Runs the Mallacc comparison over the DeathStarBench functions.
pub fn mallacc(ctx: &mut EvalContext) -> MallaccResult {
    let specs: Vec<WorkloadSpec> = ["US", "UM", "CM", "MI"]
        .iter()
        .map(|n| ctx.workload(n))
        .collect();
    mallacc_for(ctx, &specs)
}

impl fmt::Display for MallaccResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.7 — Idealized Mallacc vs. Memento (C++ DeathStarBench)"
        )?;
        let mut t = Table::new(vec!["workload", "Mallacc", "Memento"]);
        for (name, mal, mem) in &self.rows {
            t.row(vec![name.clone(), f3(*mal), f3(*mem)]);
        }
        writeln!(f, "{t}")?;
        write!(
            f,
            "avg: Mallacc {:.3} vs Memento {:.3}",
            self.mallacc_avg, self.memento_avg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memento_beats_iso_storage() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("html")];
        let result = iso_storage_for(&mut ctx, &specs);
        let (_, iso, mem) = result.rows[0].clone();
        assert!(
            mem > iso,
            "Memento {mem} must beat the iso-storage L1D {iso}"
        );
        assert!(result.to_string().contains("Iso-storage"));
    }

    #[test]
    fn memento_beats_mallacc_on_cpp() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("US"), ctx.workload("MI")];
        let result = mallacc_for(&mut ctx, &specs);
        assert_eq!(result.rows.len(), 2);
        for (name, mal, _mem) in &result.rows {
            assert!(*mal > 1.0, "{name}: mallacc {mal}");
        }
        // Per-row margins are noisy at quick scale; the average must hold.
        assert!(
            result.memento_avg > result.mallacc_avg,
            "memento {} vs mallacc {}",
            result.memento_avg,
            result.mallacc_avg
        );
        assert!(result.to_string().contains("Mallacc"));
    }
}
