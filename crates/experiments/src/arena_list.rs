//! Fig. 13: arena-list operation frequency — the fraction of
//! `obj-alloc`/`obj-free` operations that performed available/full-list
//! surgery (the paper shows <1 % of allocations and <0.6 % of frees).

use crate::context::{ConfigKind, EvalContext};
use crate::table::Table;
use memento_workloads::spec::WorkloadSpec;
use std::fmt;

/// One Fig. 13 bar pair.
#[derive(Clone, Debug)]
pub struct ArenaListRow {
    /// Workload name.
    pub name: String,
    /// Fraction of allocations with list surgery.
    pub alloc_rate: f64,
    /// Fraction of frees with list surgery.
    pub free_rate: f64,
}

/// Fig. 13 results.
#[derive(Clone, Debug)]
pub struct ArenaListResult {
    /// Per-workload rates.
    pub rows: Vec<ArenaListRow>,
    /// Maximum alloc-side rate (the paper bounds it below 1 %).
    pub max_alloc_rate: f64,
    /// Maximum free-side rate (the paper bounds it below 0.6 %).
    pub max_free_rate: f64,
}

/// Runs Fig. 13 over `specs`.
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> ArenaListResult {
    let rows: Vec<ArenaListRow> = specs
        .iter()
        .map(|spec| {
            let obj = ctx
                .run(spec, ConfigKind::Memento)
                .obj
                .expect("memento run has obj stats");
            ArenaListRow {
                name: spec.name.clone(),
                alloc_rate: obj.alloc_list_ops as f64 / obj.allocs.max(1) as f64,
                free_rate: obj.free_list_ops as f64 / obj.frees.max(1) as f64,
            }
        })
        .collect();
    ArenaListResult {
        max_alloc_rate: rows.iter().map(|r| r.alloc_rate).fold(0.0, f64::max),
        max_free_rate: rows.iter().map(|r| r.free_rate).fold(0.0, f64::max),
        rows,
    }
}

/// Runs Fig. 13 over the full suite.
pub fn run(ctx: &mut EvalContext) -> ArenaListResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for ArenaListResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 13 — Arena list operation frequency (% of obj-alloc / obj-free)"
        )?;
        let mut t = Table::new(vec!["workload", "alloc %", "free %"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.3}", r.alloc_rate * 100.0),
                format!("{:.3}", r.free_rate * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;
        write!(
            f,
            "max: alloc {:.3}% free {:.3}%",
            self.max_alloc_rate * 100.0,
            self.max_free_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_operations_are_rare() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("US"), ctx.workload("html")];
        let result = run_for(&mut ctx, &specs);
        // Paper bound: <1% of allocations, <0.6% of frees... allow slack
        // for the shrunk quick workloads.
        assert!(
            result.max_alloc_rate < 0.02,
            "alloc {}",
            result.max_alloc_rate
        );
        assert!(result.max_free_rate < 0.02, "free {}", result.max_free_rate);
        assert!(result.to_string().contains("Fig. 13"));
    }
}
