//! §6.6 sensitivity studies: `MAP_POPULATE`, multi-process HOT flushing,
//! fragmentation, cold starts, and software-allocator tuning.

use crate::context::{ConfigKind, EvalContext};
use crate::runner;
use crate::table::{f3, Table};
use memento_system::{stats, Machine, SystemConfig};
use memento_workloads::spec::{AllocatorKind, Category, Language, WorkloadSpec};
use std::fmt;

/// `MAP_POPULATE` study: performance and footprint of eagerly populated
/// mmaps, per language.
#[derive(Clone, Debug)]
pub struct PopulateResult {
    /// `(language, speedup of populate over lazy, footprint ratio)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the populate study over the function members of `specs`.
pub fn populate_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> PopulateResult {
    let functions: Vec<WorkloadSpec> = specs
        .iter()
        .filter(|s| s.category == Category::Function)
        .cloned()
        .collect();
    ctx.prefetch_kinds(
        &functions,
        &[ConfigKind::Baseline, ConfigKind::BaselinePopulate],
    );
    let mut rows = Vec::new();
    for lang in [Language::Python, Language::Cpp, Language::Golang] {
        let members: Vec<&WorkloadSpec> = specs
            .iter()
            .filter(|s| s.language == lang && s.category == Category::Function)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut speedups = Vec::new();
        let mut footprints = Vec::new();
        for spec in members {
            let lazy = ctx.run(spec, ConfigKind::Baseline).clone();
            let eager = ctx.run(spec, ConfigKind::BaselinePopulate).clone();
            speedups.push(stats::speedup(&lazy, &eager));
            match crate::ratio::page_ratio(eager.user_pages_agg, lazy.user_pages_agg) {
                Some(fp) => footprints.push(fp),
                None => eprintln!(
                    "populate: skipping {} footprint: lazy baseline allocated \
                     0 pages but populate allocated some; no ratio exists",
                    spec.name
                ),
            }
        }
        if footprints.is_empty() {
            continue;
        }
        rows.push((
            lang.to_string(),
            // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
            speedups.iter().sum::<f64>() / speedups.len() as f64,
            // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
            footprints.iter().sum::<f64>() / footprints.len() as f64,
        ));
    }
    PopulateResult { rows }
}

/// Runs the populate study over the full suite.
pub fn populate(ctx: &mut EvalContext) -> PopulateResult {
    let specs = ctx.workloads();
    populate_for(ctx, &specs)
}

impl fmt::Display for PopulateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§6.6 — Populating pages on mmap (MAP_POPULATE)")?;
        let mut t = Table::new(vec!["language", "speedup vs lazy", "footprint ratio"]);
        for (lang, s, fp) in &self.rows {
            t.row(vec![lang.clone(), f3(*s), format!("{fp:.1}x")]);
        }
        write!(f, "{t}")
    }
}

/// Multi-process study: several functions time-sharing one core; the HOT
/// flush at each context switch is the only Memento-specific overhead.
#[derive(Clone, Debug)]
pub struct MultiprocessResult {
    /// Functions per trial.
    pub functions: usize,
    /// Total HOT flushes performed.
    pub hot_flushes: u64,
    /// HOT-flush cycles as a fraction of total execution.
    pub flush_overhead: f64,
    /// Geometric-mean speedup over the time-shared baseline.
    pub speedup: f64,
}

/// Runs the multi-process study: `names` time-share one core with the
/// given quantum.
pub fn multiprocess_for(
    ctx: &EvalContext,
    names: &[&str],
    quantum_events: usize,
) -> MultiprocessResult {
    let specs: Vec<WorkloadSpec> = names.iter().map(|n| ctx.workload(n)).collect();
    // The time-shared trial is one machine per system; the two systems are
    // independent, so they are the two shards of this sweep.
    let configs = [SystemConfig::baseline(), SystemConfig::memento()];
    let mut trials = runner::map_ordered(ctx.jobs(), &configs, |cfg| {
        Machine::new(cfg.clone()).run_timeshared(&specs, quantum_events)
    });
    let mem_stats = trials.pop().expect("memento trial");
    let base_stats = trials.pop().expect("baseline trial");
    let speedups: Vec<f64> = base_stats
        .iter()
        .zip(&mem_stats)
        .map(|(b, m)| stats::speedup(b, m))
        .collect();
    let hot_flushes: u64 = mem_stats
        .iter()
        .filter_map(|s| s.hot)
        .map(|h| h.flushes)
        .max()
        .unwrap_or(0);
    // Flush cycles are charged to HwFree at context-switch time; estimate
    // the overhead bound from flushed entries (one writeback each).
    let flushed_entries: u64 = mem_stats
        .iter()
        .filter_map(|s| s.hot)
        .map(|h| h.flushed_entries)
        .max()
        .unwrap_or(0);
    let total: u64 = mem_stats.iter().map(|s| s.total_cycles().raw()).sum();
    MultiprocessResult {
        functions: names.len(),
        hot_flushes,
        flush_overhead: (flushed_entries * 50) as f64 / total.max(1) as f64,
        speedup: stats::geomean(&speedups),
    }
}

/// Runs the default multi-process study (§6.6: four functions, one core).
pub fn multiprocess(ctx: &EvalContext) -> MultiprocessResult {
    multiprocess_for(ctx, &["aes", "jl", "bfs", "mk"], 4000)
}

impl fmt::Display for MultiprocessResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.6 — Multi-process environments ({} functions, 1 core)",
            self.functions
        )?;
        writeln!(f, "HOT flushes:          {}", self.hot_flushes)?;
        writeln!(
            f,
            "flush overhead bound: {:.4}% of cycles",
            self.flush_overhead * 100.0
        )?;
        write!(f, "time-shared speedup:  {:.3}", self.speedup)
    }
}

/// Fragmentation study: live small-object bytes over backed heap bytes,
/// hardware vs. the software allocator.
#[derive(Clone, Debug)]
pub struct FragmentationResult {
    /// `(workload, memento idle fraction, baseline idle fraction)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Mean |memento − baseline| gap.
    pub mean_gap: f64,
}

/// Runs the fragmentation study over the function members of `specs`.
pub fn fragmentation_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> FragmentationResult {
    let functions: Vec<WorkloadSpec> = specs
        .iter()
        .filter(|s| s.category == Category::Function)
        .cloned()
        .collect();
    ctx.prefetch_kinds(&functions, &[ConfigKind::Baseline, ConfigKind::Memento]);
    let mut rows = Vec::new();
    for spec in &functions {
        let (base, mem) = ctx.pair(spec);
        if let (Some(b), Some(m)) = (base.arena_slot_idle_fraction, mem.arena_slot_idle_fraction) {
            rows.push((spec.name.clone(), m, b));
        }
    }
    let mean_gap =
        // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
        rows.iter().map(|(_, m, b)| (m - b).abs()).sum::<f64>() / rows.len().max(1) as f64;
    FragmentationResult { rows, mean_gap }
}

/// Runs the fragmentation study over the full suite.
pub fn fragmentation(ctx: &mut EvalContext) -> FragmentationResult {
    let specs = ctx.workloads();
    fragmentation_for(ctx, &specs)
}

impl fmt::Display for FragmentationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.6 — Fragmentation (idle fraction of backed small-object heap)"
        )?;
        let mut t = Table::new(vec!["workload", "Memento", "software"]);
        for (name, m, b) in &self.rows {
            t.row(vec![name.clone(), format!("{:.3}", m), format!("{:.3}", b)]);
        }
        writeln!(f, "{t}")?;
        write!(f, "mean |hardware − software| gap: {:.3}", self.mean_gap)
    }
}

/// Cold-start study: container-setup latency added to both systems.
#[derive(Clone, Debug)]
pub struct ColdstartResult {
    /// `(workload, warm speedup, cold speedup)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the cold-start study: setup latency is half the warm baseline
/// runtime (SOCK/Firecracker-scale container set-up relative to scaled
/// function bodies).
pub fn coldstart_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> ColdstartResult {
    let functions: Vec<WorkloadSpec> = specs
        .iter()
        .filter(|s| s.category == Category::Function)
        .cloned()
        .collect();
    ctx.prefetch_kinds(&functions, &[ConfigKind::Baseline, ConfigKind::Memento]);
    // Cold configs derive from the warm baseline totals, so they cannot be
    // memoized under a ConfigKind; fan the custom runs over the pool
    // directly. One work item per (spec, config) keeps shards balanced.
    let cold_points: Vec<(WorkloadSpec, SystemConfig)> = functions
        .iter()
        .flat_map(|spec| {
            let setup = ctx.run(spec, ConfigKind::Baseline).total_cycles().raw() / 2;
            let mut cfg_b = SystemConfig::baseline();
            cfg_b.coldstart_cycles = setup;
            let mut cfg_m = SystemConfig::memento();
            cfg_m.coldstart_cycles = setup;
            [(spec.clone(), cfg_b), (spec.clone(), cfg_m)]
        })
        .collect();
    let cold_stats = runner::map_ordered(ctx.jobs(), &cold_points, |(spec, cfg)| {
        Machine::new(cfg.clone()).run(spec)
    });
    let rows = functions
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (base, mem) = ctx.pair(spec);
            let warm = stats::speedup(&base, &mem);
            let (cold_b, cold_m) = (&cold_stats[2 * i], &cold_stats[2 * i + 1]);
            (spec.name.clone(), warm, stats::speedup(cold_b, cold_m))
        })
        .collect();
    ColdstartResult { rows }
}

impl fmt::Display for ColdstartResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§6.6 — Warm-start versus cold-start speedups")?;
        let mut t = Table::new(vec!["workload", "warm", "cold"]);
        for (name, warm, cold) in &self.rows {
            t.row(vec![name.clone(), f3(*warm), f3(*cold)]);
        }
        write!(f, "{t}")
    }
}

/// Software-allocator tuning study: enlarging pymalloc arenas.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// `(workload, baseline speedup from 1 MB arenas, Memento speedup change)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the tuning study on the Python members of `specs`: 256 KB vs 1 MB
/// arenas.
pub fn tuning_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> TuningResult {
    let python: Vec<WorkloadSpec> = specs
        .iter()
        .filter(|s| s.allocator == AllocatorKind::PyMalloc && s.category == Category::Function)
        .cloned()
        .collect();
    ctx.prefetch_kinds(&python, &[ConfigKind::Baseline, ConfigKind::Memento]);
    // Tuned-allocator specs live outside the ConfigKind space; run them on
    // the pool directly.
    let tuned_specs: Vec<WorkloadSpec> = python
        .iter()
        .map(|spec| {
            let mut tuned = spec.clone();
            tuned.allocator = AllocatorKind::PyMallocTuned { arena_kb: 1024 };
            tuned
        })
        .collect();
    let tuned_stats = runner::map_ordered(ctx.jobs(), &tuned_specs, |spec| {
        Machine::new(SystemConfig::baseline()).run(spec)
    });
    let rows = python
        .iter()
        .zip(&tuned_stats)
        .map(|(spec, tuned)| {
            let stock = ctx.run(spec, ConfigKind::Baseline).clone();
            let memento = ctx.run(spec, ConfigKind::Memento).clone();
            let baseline_gain = stats::speedup(&stock, tuned);
            // Memento speedup measured against the tuned baseline.
            let memento_vs_tuned = stats::speedup(tuned, &memento);
            (spec.name.clone(), baseline_gain, memento_vs_tuned)
        })
        .collect();
    TuningResult { rows }
}

impl fmt::Display for TuningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§6.6 — Tuning software allocators (pymalloc 256 KB → 1 MB arenas)"
        )?;
        let mut t = Table::new(vec![
            "workload",
            "tuned-baseline speedup",
            "Memento vs tuned",
        ]);
        for (name, b, m) in &self.rows {
            t.row(vec![name.clone(), f3(*b), f3(*m)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_blows_up_go_footprint() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("aes-go"), ctx.workload("aes")];
        let result = populate_for(&mut ctx, &specs);
        let go = result
            .rows
            .iter()
            .find(|(l, _, _)| l == "Golang")
            .expect("golang row");
        let py = result
            .rows
            .iter()
            .find(|(l, _, _)| l == "Python")
            .expect("python row");
        assert!(
            go.2 > py.2,
            "Go footprint blow-up {} must exceed Python's {}",
            go.2,
            py.2
        );
        assert!(result.to_string().contains("MAP_POPULATE"));
    }

    #[test]
    fn multiprocess_flush_overhead_negligible() {
        let ctx = EvalContext::quick();
        let result = multiprocess_for(&ctx, &["aes", "jl"], 2000);
        assert!(result.hot_flushes > 0, "switching must flush the HOT");
        assert!(
            result.flush_overhead < 0.01,
            "flush overhead {} should be negligible",
            result.flush_overhead
        );
        assert!(result.speedup > 1.0);
    }

    #[test]
    fn coldstart_dilutes_but_preserves_wins() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("bfs")];
        let result = coldstart_for(&mut ctx, &specs);
        let (_, warm, cold) = result.rows[0].clone();
        assert!(cold > 1.0);
        assert!(cold < warm);
    }

    #[test]
    fn arena_tuning_is_marginal() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("html")];
        let result = tuning_for(&mut ctx, &specs);
        let (_, tuned_gain, memento_gain) = result.rows[0].clone();
        // Paper: "noticeable but less than 1% speedup" from bigger arenas.
        assert!(
            (0.97..=1.05).contains(&tuned_gain),
            "tuned-baseline gain {tuned_gain} out of band"
        );
        assert!(memento_gain > 1.0, "memento still wins: {memento_gain}");
    }
}
