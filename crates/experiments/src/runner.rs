//! Experiment-facing front of the fixed-size worker pool
//! ([`memento_simcore::pool`]): order-preserving parallel map plus the
//! wall-clock instrumentation layered on top.
//!
//! Determinism contract: [`map_ordered`] returns results in input order no
//! matter how many workers run or how the OS schedules them — workers pull
//! work from a shared index and send `(index, result)` back, and results
//! are slotted by index. Combined with the stable plan from
//! [`crate::sharding`], a parallel sweep is byte-identical to a serial one;
//! only the wall-clock (reported via [`RunnerTiming`], outside the result
//! tables) differs.

use memento_obs::MetricsRegistry;
use std::time::{Duration, Instant};

// The pool itself lives in `memento_simcore::pool` so lower layers (the
// cluster simulator's node-sharded engine) can parallelize under the same
// contract; the experiments-facing names are re-exported here unchanged.
pub use memento_simcore::pool::{effective_jobs, map_ordered, JOBS_ENV};

/// Timing of one executed shard (one simulation point).
#[derive(Clone, Debug)]
pub struct ShardTiming {
    /// Human-readable shard key (`workload/config`).
    pub key: String,
    /// Wall-clock the shard's worker spent on it.
    pub wall: Duration,
    /// Simulated cycles the shard produced.
    pub sim_cycles: u64,
}

/// Timing summary of a parallel sweep. Reported *next to* — never inside —
/// the deterministic result tables, since wall-clock varies run to run.
#[derive(Clone, Debug, Default)]
pub struct RunnerTiming {
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock of the sweep (includes scheduling).
    pub wall: Duration,
    /// Per-shard timings, in plan order.
    pub shards: Vec<ShardTiming>,
}

impl RunnerTiming {
    /// Merges another sweep's timing into this harness-level total. The
    /// largest jobs value wins the label; walls and shards accumulate.
    pub fn merge(&mut self, other: &RunnerTiming) {
        self.jobs = self.jobs.max(other.jobs);
        self.wall += other.wall;
        self.shards.extend(other.shards.iter().cloned());
    }

    /// Sum of per-shard walls — the serial-equivalent work content. On an
    /// oversubscribed machine this includes time shards spent descheduled,
    /// so `shard_time / wall` measures *concurrency*, not core speedup.
    pub fn shard_time(&self) -> Duration {
        self.shards.iter().map(|s| s.wall).sum()
    }

    /// Simulation points completed per wall-clock second.
    pub fn points_per_sec(&self) -> f64 {
        self.shards.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Total simulated cycles produced per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let cycles: u64 = self.shards.iter().map(|s| s.sim_cycles).sum();
        cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The slowest shard, if any ran.
    pub fn slowest(&self) -> Option<&ShardTiming> {
        self.shards.iter().max_by_key(|s| s.wall)
    }
}

impl std::fmt::Display for RunnerTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Harness timing — {} shard(s) on {} worker(s)",
            self.shards.len(),
            self.jobs.max(1)
        )?;
        writeln!(f, "wall-clock:     {:.3} s", self.wall.as_secs_f64())?;
        writeln!(
            f,
            "shard time:     {:.3} s ({:.2}x concurrency)",
            self.shard_time().as_secs_f64(),
            self.shard_time().as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
        )?;
        writeln!(f, "points/sec:     {:.2}", self.points_per_sec())?;
        writeln!(f, "sim cycles/sec: {:.3e}", self.sim_cycles_per_sec())?;
        match self.slowest() {
            Some(s) => write!(
                f,
                "slowest shard:  {} ({:.3} s)",
                s.key,
                s.wall.as_secs_f64()
            ),
            None => write!(f, "slowest shard:  n/a"),
        }
    }
}

/// Runs `f` over `items` like [`map_ordered`] while timing each shard and
/// the sweep; `key` labels each shard for the report. The result carries
/// simulated cycles extracted by `cycles`.
pub fn map_timed<T, R, F, K, C>(
    jobs: usize,
    items: &[T],
    f: F,
    key: K,
    cycles: C,
) -> (Vec<R>, RunnerTiming)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    K: Fn(&T) -> String,
    C: Fn(&R) -> u64,
{
    let start = Instant::now();
    let timed = map_ordered(jobs, items, |item| {
        let t0 = Instant::now();
        let r = f(item);
        (r, t0.elapsed())
    });
    let wall = start.elapsed();
    let mut results = Vec::with_capacity(timed.len());
    let mut shards = Vec::with_capacity(timed.len());
    for (item, (r, shard_wall)) in items.iter().zip(timed) {
        shards.push(ShardTiming {
            key: key(item),
            wall: shard_wall,
            sim_cycles: cycles(&r),
        });
        results.push(r);
    }
    (results, RunnerTiming { jobs, wall, shards })
}

/// Folds per-shard metric registries into one harness-level registry, in
/// plan order.
///
/// Shards see different value ranges, so their histograms come back with
/// *different bucket-vector lengths* — in particular the tail shard of an
/// uneven split (item count not divisible by `--jobs`) is shorter than the
/// full shards. The fold delegates to [`MetricsRegistry::merge`], which
/// resizes before adding; an earlier zip-based merge truncated at the
/// shorter bucket vector and silently dropped every high bucket the tail
/// shard had not touched. `merge_metrics_keeps_uneven_tail_shard_buckets`
/// fails on that implementation.
pub fn merge_metrics(shards: &[MetricsRegistry]) -> MetricsRegistry {
    let mut total = MetricsRegistry::default();
    for shard in shards {
        total.merge(shard);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_summary_accounts_all_shards() {
        let items = vec![1u64, 2, 3];
        let (out, timing) = map_timed(2, &items, |x| x * 100, |x| format!("shard-{x}"), |r| *r);
        assert_eq!(out, vec![100, 200, 300]);
        assert_eq!(timing.shards.len(), 3);
        assert_eq!(timing.shards[0].key, "shard-1");
        assert!(timing.points_per_sec() > 0.0);
        assert!(timing.sim_cycles_per_sec() > 0.0);
        let text = timing.to_string();
        assert!(text.contains("Harness timing"));
        assert!(text.contains("points/sec"));
    }

    /// Five events sharded across two workers split 3/2: the tail shard
    /// only ever sees small values, so its histogram bucket vector is
    /// shorter than the main shard's. Every sample — including the main
    /// shard's high buckets — must survive the harness merge regardless of
    /// fold direction (the old zip-based merge dropped them whenever the
    /// event count was not divisible by the job count).
    #[test]
    fn merge_metrics_keeps_uneven_tail_shard_buckets() {
        let values: [u64; 5] = [3, 700, 90_000, 1, 2];
        let shard_stats = |chunk: &[u64]| {
            let mut reg = MetricsRegistry::new();
            for v in chunk {
                reg.observe("walk.latency", *v);
                reg.add("events", 1);
            }
            reg
        };
        // jobs=2 over 5 items: main shard gets 3 events, tail shard 2.
        let shards: Vec<MetricsRegistry> = values.chunks(3).map(shard_stats).collect();
        assert_eq!(shards.len(), 2);
        let main_len = shards[0]
            .hist("walk.latency")
            .expect("main")
            .buckets()
            .len();
        let tail_len = shards[1]
            .hist("walk.latency")
            .expect("tail")
            .buckets()
            .len();
        assert!(tail_len < main_len, "tail shard must be the short one");

        for order in [vec![0usize, 1], vec![1, 0]] {
            let picked: Vec<MetricsRegistry> = order.iter().map(|i| shards[*i].clone()).collect();
            let total = merge_metrics(&picked);
            assert_eq!(total.counter("events"), 5);
            let h = total.hist("walk.latency").expect("merged histogram");
            assert_eq!(h.count(), 5, "no sample may be dropped (order {order:?})");
            assert_eq!(h.sum(), values.iter().sum::<u64>());
            assert_eq!(h.buckets().len(), main_len, "high buckets preserved");
        }
    }
}
