//! Memoized evaluation context: one simulation per (workload, config).

use crate::runner::{self, RunnerTiming};
use crate::sharding::{self, SimPoint};
use memento_system::{Machine, RunStats, SystemConfig};
use memento_workloads::spec::{Category, WorkloadSpec};
use memento_workloads::suite;
use std::collections::HashMap;

/// Warm-up fraction for long-running workloads (the paper measures
/// data-processing applications and platform services at steady state).
pub const STEADY_WARMUP: f64 = 0.4;

/// Invocations per warm container for the steady-state categories:
/// invocation 0 is the cold start, the measured window covers the rest
/// (see [`Machine::run_invocations`]). Three is the smallest count with a
/// multi-invocation steady window.
pub const STEADY_INVOCATIONS: usize = 3;

/// System design points evaluated across the figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConfigKind {
    /// Software stack (the paper's baseline).
    Baseline,
    /// Full Memento.
    Memento,
    /// Memento with main-memory bypass disabled (Figs. 9/10 attribution).
    MementoNoBypass,
    /// §6.1 iso-storage baseline (HOT SRAM donated to the L1D).
    IsoStorage,
    /// §6.7 idealized Mallacc.
    IdealMallacc,
    /// §6.6 `MAP_POPULATE` baseline.
    BaselinePopulate,
}

impl ConfigKind {
    /// The system configuration for this design point.
    pub fn system_config(self) -> SystemConfig {
        match self {
            ConfigKind::Baseline => SystemConfig::baseline(),
            ConfigKind::Memento => SystemConfig::memento(),
            ConfigKind::MementoNoBypass => SystemConfig::memento_no_bypass(),
            ConfigKind::IsoStorage => SystemConfig::iso_storage(),
            ConfigKind::IdealMallacc => SystemConfig::ideal_mallacc(),
            ConfigKind::BaselinePopulate => SystemConfig::baseline_populate(),
        }
    }
}

/// Memoizing evaluation context shared by all experiment runners.
///
/// The context owns the harness's parallelism: [`EvalContext::prefetch`]
/// fans uncached simulation points across `jobs` worker threads and fills
/// the memo cache, after which every aggregation path reads the cache
/// serially — so result tables are byte-identical at any `jobs` setting.
pub struct EvalContext {
    cache: HashMap<(String, ConfigKind), RunStats>,
    scale_divisor: u64,
    jobs: usize,
    timing: RunnerTiming,
}

impl EvalContext {
    /// Full-fidelity context (the workload sizes behind EXPERIMENTS.md).
    /// Worker count comes from `MEMENTO_JOBS` or the machine; override with
    /// [`EvalContext::with_jobs`].
    pub fn new() -> Self {
        Self::at_scale(1)
    }

    /// Quick context for tests/CI: workloads shrunk 8× (shapes preserved,
    /// absolute numbers noisier).
    pub fn quick() -> Self {
        Self::at_scale(8)
    }

    /// Context at an explicit scale divisor (golden-snapshot tests pin a
    /// small fixed scale so the fixture stays cheap to regenerate).
    pub fn scaled(scale_divisor: u64) -> Self {
        Self::at_scale(scale_divisor.max(1))
    }

    fn at_scale(scale_divisor: u64) -> Self {
        EvalContext {
            cache: HashMap::new(),
            scale_divisor,
            jobs: runner::effective_jobs(None),
            timing: RunnerTiming::default(),
        }
    }

    /// Sets the worker-thread count for parallel sweeps (1 = serial).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The worker-thread count parallel sweeps will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The divisor this context applies to every workload's instruction
    /// count (1 = full fidelity).
    pub fn scale_divisor(&self) -> u64 {
        self.scale_divisor
    }

    /// Accumulated timing over every parallel sweep this context ran.
    pub fn timing(&self) -> &RunnerTiming {
        &self.timing
    }

    /// The workload suite at this context's scale.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        suite::all_workloads()
            .into_iter()
            .map(|mut s| {
                s.total_instructions /= self.scale_divisor;
                s
            })
            .collect()
    }

    /// One workload by paper name, at this context's scale, with unknown
    /// names reported as a typed error.
    pub fn try_workload(&self, name: &str) -> Result<WorkloadSpec, crate::error::ExperimentError> {
        match suite::by_name(name) {
            Some(mut s) => {
                s.total_instructions /= self.scale_divisor;
                Ok(s)
            }
            None => Err(crate::error::ExperimentError::UnknownWorkload(
                name.to_owned(),
            )),
        }
    }

    /// One workload by paper name, at this context's scale.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name; fallible callers use
    /// [`EvalContext::try_workload`].
    pub fn workload(&self, name: &str) -> WorkloadSpec {
        // lint:allow(panic-in-lib): documented panicking variant; fallible callers use try_workload
        self.try_workload(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Simulates one point from scratch (no memoization) — the worker body
    /// every shard executes, identical on the serial and parallel paths.
    /// Functions run cold once; the long-running categories run as a warm
    /// container serving back-to-back invocations and report the
    /// steady-state window (§6.3).
    pub fn simulate(point: &SimPoint) -> RunStats {
        let mut machine = Machine::new(point.kind.system_config());
        if point.spec.category == Category::Function {
            machine.run(&point.spec)
        } else {
            machine
                .run_invocations(&point.spec, STEADY_INVOCATIONS)
                .steady
        }
    }

    /// Fans the uncached members of `points` across the context's worker
    /// pool and memoizes their results. Already-cached points cost nothing;
    /// the plan (dedup + shard-id order) is independent of caller order and
    /// thread scheduling, so any later cache read sees the same stats a
    /// serial sweep would have produced.
    pub fn prefetch(&mut self, points: Vec<SimPoint>) -> RunnerTiming {
        let todo: Vec<SimPoint> = sharding::plan(points)
            .into_iter()
            .filter(|p| !self.cache.contains_key(&p.key()))
            .collect();
        let (stats, timing) = runner::map_timed(
            self.jobs,
            &todo,
            Self::simulate,
            |p| format!("{}/{:?}", p.spec.name, p.kind),
            |r| r.total_cycles().raw(),
        );
        for (point, stat) in todo.iter().zip(stats) {
            self.cache.insert(point.key(), stat);
        }
        self.timing.merge(&timing);
        timing
    }

    /// Convenience: prefetches `specs` under every kind in `kinds`.
    pub fn prefetch_kinds(&mut self, specs: &[WorkloadSpec], kinds: &[ConfigKind]) -> RunnerTiming {
        let points = specs
            .iter()
            .flat_map(|s| kinds.iter().map(|k| SimPoint::new(s.clone(), *k)))
            .collect();
        self.prefetch(points)
    }

    /// Runs (or returns the memoized run of) `spec` under `kind`.
    /// Long-running categories are measured at steady state.
    pub fn run(&mut self, spec: &WorkloadSpec, kind: ConfigKind) -> &RunStats {
        let key = (spec.name.clone(), kind);
        self.cache
            .entry(key)
            .or_insert_with(|| EvalContext::simulate(&SimPoint::new(spec.clone(), kind)))
    }

    /// Convenience: the (baseline, memento) pair for `spec`.
    pub fn pair(&mut self, spec: &WorkloadSpec) -> (RunStats, RunStats) {
        let base = self.run(spec, ConfigKind::Baseline).clone();
        let mem = self.run(spec, ConfigKind::Memento).clone();
        (base, mem)
    }
}

impl Default for EvalContext {
    fn default() -> Self {
        EvalContext::new()
    }
}

/// Group-average helper over workload categories, in the paper's reporting
/// order (func-avg, data-avg, pltf-avg).
pub fn group_label(cat: Category) -> &'static str {
    match cat {
        Category::Function => "func-avg",
        Category::DataProc => "data-avg",
        Category::Platform => "pltf-avg",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_scales_workloads() {
        let full = EvalContext::new();
        let quick = EvalContext::quick();
        let f = full.workload("aes");
        let q = quick.workload("aes");
        assert_eq!(f.total_instructions, q.total_instructions * 8);
    }

    #[test]
    fn runs_are_memoized() {
        let mut ctx = EvalContext::quick();
        let mut spec = ctx.workload("aes");
        spec.total_instructions = 50_000;
        let a = ctx.run(&spec, ConfigKind::Baseline).total_cycles();
        let b = ctx.run(&spec, ConfigKind::Baseline).total_cycles();
        assert_eq!(a, b);
        assert_eq!(ctx.cache.len(), 1);
    }

    #[test]
    fn prefetch_matches_serial_run() {
        let mut serial = EvalContext::quick().with_jobs(1);
        let mut parallel = EvalContext::quick().with_jobs(4);
        let mut spec = serial.workload("aes");
        spec.total_instructions = 100_000;
        let points: Vec<SimPoint> = [ConfigKind::Baseline, ConfigKind::Memento]
            .into_iter()
            .map(|k| SimPoint::new(spec.clone(), k))
            .collect();
        serial.prefetch(points.clone());
        let timing = parallel.prefetch(points);
        assert_eq!(timing.shards.len(), 2);
        for kind in [ConfigKind::Baseline, ConfigKind::Memento] {
            assert_eq!(
                serial.run(&spec, kind).total_cycles(),
                parallel.run(&spec, kind).total_cycles(),
                "{kind:?} diverged between serial and parallel"
            );
        }
        // A second prefetch of the same points is a cached no-op.
        let again = parallel.prefetch(
            [ConfigKind::Baseline, ConfigKind::Memento]
                .into_iter()
                .map(|k| SimPoint::new(spec.clone(), k))
                .collect(),
        );
        assert!(again.shards.is_empty());
    }

    #[test]
    fn config_kinds_materialize() {
        for kind in [
            ConfigKind::Baseline,
            ConfigKind::Memento,
            ConfigKind::MementoNoBypass,
            ConfigKind::IsoStorage,
            ConfigKind::IdealMallacc,
            ConfigKind::BaselinePopulate,
        ] {
            let cfg = kind.system_config();
            assert!(cfg.cores >= 1);
        }
    }
}
