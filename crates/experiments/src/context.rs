//! Memoized evaluation context: one simulation per (workload, config).

use memento_system::{Machine, RunStats, SystemConfig};
use memento_workloads::spec::{Category, WorkloadSpec};
use memento_workloads::suite;
use std::collections::HashMap;

/// Warm-up fraction for long-running workloads (the paper measures
/// data-processing applications and platform services at steady state).
pub const STEADY_WARMUP: f64 = 0.4;

/// System design points evaluated across the figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConfigKind {
    /// Software stack (the paper's baseline).
    Baseline,
    /// Full Memento.
    Memento,
    /// Memento with main-memory bypass disabled (Figs. 9/10 attribution).
    MementoNoBypass,
    /// §6.1 iso-storage baseline (HOT SRAM donated to the L1D).
    IsoStorage,
    /// §6.7 idealized Mallacc.
    IdealMallacc,
    /// §6.6 `MAP_POPULATE` baseline.
    BaselinePopulate,
}

impl ConfigKind {
    /// The system configuration for this design point.
    pub fn system_config(self) -> SystemConfig {
        match self {
            ConfigKind::Baseline => SystemConfig::baseline(),
            ConfigKind::Memento => SystemConfig::memento(),
            ConfigKind::MementoNoBypass => SystemConfig::memento_no_bypass(),
            ConfigKind::IsoStorage => SystemConfig::iso_storage(),
            ConfigKind::IdealMallacc => SystemConfig::ideal_mallacc(),
            ConfigKind::BaselinePopulate => SystemConfig::baseline_populate(),
        }
    }
}

/// Memoizing evaluation context shared by all experiment runners.
pub struct EvalContext {
    cache: HashMap<(String, ConfigKind), RunStats>,
    scale_divisor: u64,
}

impl EvalContext {
    /// Full-fidelity context (the workload sizes behind EXPERIMENTS.md).
    pub fn new() -> Self {
        EvalContext {
            cache: HashMap::new(),
            scale_divisor: 1,
        }
    }

    /// Quick context for tests/CI: workloads shrunk 8× (shapes preserved,
    /// absolute numbers noisier).
    pub fn quick() -> Self {
        EvalContext {
            cache: HashMap::new(),
            scale_divisor: 8,
        }
    }

    /// The workload suite at this context's scale.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        suite::all_workloads()
            .into_iter()
            .map(|mut s| {
                s.total_instructions /= self.scale_divisor;
                s
            })
            .collect()
    }

    /// One workload by paper name, at this context's scale.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn workload(&self, name: &str) -> WorkloadSpec {
        let mut s = suite::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        s.total_instructions /= self.scale_divisor;
        s
    }

    /// Runs (or returns the memoized run of) `spec` under `kind`.
    /// Long-running categories are measured at steady state.
    pub fn run(&mut self, spec: &WorkloadSpec, kind: ConfigKind) -> &RunStats {
        let key = (spec.name.clone(), kind);
        self.cache.entry(key).or_insert_with(|| {
            let mut machine = Machine::new(kind.system_config());
            if spec.category == Category::Function {
                machine.run(spec)
            } else {
                machine.run_steady(spec, STEADY_WARMUP)
            }
        })
    }

    /// Convenience: the (baseline, memento) pair for `spec`.
    pub fn pair(&mut self, spec: &WorkloadSpec) -> (RunStats, RunStats) {
        let base = self.run(spec, ConfigKind::Baseline).clone();
        let mem = self.run(spec, ConfigKind::Memento).clone();
        (base, mem)
    }
}

impl Default for EvalContext {
    fn default() -> Self {
        EvalContext::new()
    }
}

/// Group-average helper over workload categories, in the paper's reporting
/// order (func-avg, data-avg, pltf-avg).
pub fn group_label(cat: Category) -> &'static str {
    match cat {
        Category::Function => "func-avg",
        Category::DataProc => "data-avg",
        Category::Platform => "pltf-avg",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_scales_workloads() {
        let full = EvalContext::new();
        let quick = EvalContext::quick();
        let f = full.workload("aes");
        let q = quick.workload("aes");
        assert_eq!(f.total_instructions, q.total_instructions * 8);
    }

    #[test]
    fn runs_are_memoized() {
        let mut ctx = EvalContext::quick();
        let mut spec = ctx.workload("aes");
        spec.total_instructions = 50_000;
        let a = ctx.run(&spec, ConfigKind::Baseline).total_cycles();
        let b = ctx.run(&spec, ConfigKind::Baseline).total_cycles();
        assert_eq!(a, b);
        assert_eq!(ctx.cache.len(), 1);
    }

    #[test]
    fn config_kinds_materialize() {
        for kind in [
            ConfigKind::Baseline,
            ConfigKind::Memento,
            ConfigKind::MementoNoBypass,
            ConfigKind::IsoStorage,
            ConfigKind::IdealMallacc,
            ConfigKind::BaselinePopulate,
        ] {
            let cfg = kind.system_config();
            assert!(cfg.cores >= 1);
        }
    }
}
