//! Minimal ASCII table rendering for experiment output.

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use memento_experiments::table::Table;
///
/// let mut t = Table::new(vec!["workload", "speedup"]);
/// t.row(vec!["html".into(), "1.27".into()]);
/// let s = t.to_string();
/// assert!(s.contains("workload"));
/// assert!(s.contains("1.27"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]); // short row padded
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(f3(1.23456), "1.235");
    }
}
