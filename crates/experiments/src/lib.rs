//! Experiment runners that regenerate every table and figure of the
//! Memento paper's evaluation (§2.2, §5, §6).
//!
//! Each module reproduces one artifact and returns a typed result with a
//! `Display` implementation that prints the same rows/series the paper
//! reports:
//!
//! | Module | Artifact |
//! |---|---|
//! | [`characterization`] | Fig. 2 (allocation sizes), Fig. 3 (lifetimes), Table 1 (joint), Table 2 (user/kernel split) |
//! | [`config_table`] | Table 3 (simulated configuration) |
//! | [`speedup`] | Fig. 8 (normalized speedup) |
//! | [`breakdown`] | Fig. 9 (gain attribution) |
//! | [`bandwidth`] | Fig. 10 (DRAM-traffic reduction) |
//! | [`memusage`] | Fig. 11 (aggregate memory usage) |
//! | [`hot`] | Fig. 12 (HOT hit rates) |
//! | [`arena_list`] | Fig. 13 (arena-list operation frequency) |
//! | [`pricing`] | Fig. 14 (normalized runtime pricing) |
//! | [`comparisons`] | §6.1 iso-storage, §6.7 idealized Mallacc |
//! | [`sensitivity`] | §6.6 studies: `MAP_POPULATE`, multi-process, fragmentation, cold starts, allocator tuning |
//! | [`multicore`] | extension: work-stealing co-location under shared LLC/DRAM contention |
//! | [`ablation`] | extension: eager replenish / bypass / pool batch / AAC ablations |
//! | [`profile`] | extension: traced run → flame table, metrics appendix, heap samples |
//! | [`cluster`] | extension: fleet-scale traffic, tail latency + fleet footprint |
//!
//! Runs are memoized in an [`EvalContext`] so one sweep feeds every figure.
//!
//! Independent simulation points fan out across a fixed worker pool
//! ([`runner`]) following a deterministic shard plan ([`sharding`]):
//! results are slotted by shard, never by completion order, so tables are
//! byte-identical at any `--jobs` / `MEMENTO_JOBS` setting.
//!
//! # Examples
//!
//! ```no_run
//! use memento_experiments::{speedup, EvalContext};
//!
//! let mut ctx = EvalContext::quick(); // shrunk workloads for CI
//! let fig8 = speedup::run(&mut ctx);
//! println!("{fig8}");
//! assert!(fig8.func_avg > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod arena_list;
pub mod bandwidth;
pub mod breakdown;
pub mod characterization;
pub mod cluster;
pub mod comparisons;
pub mod config_table;
pub mod context;
pub mod error;
pub mod hot;
pub mod memusage;
pub mod multicore;
pub mod pricing;
pub mod profile;
pub mod ratio;
pub mod region;
pub mod report;
pub mod runner;
pub mod sensitivity;
pub mod sharding;
pub mod speedup;
pub mod table;

pub use context::{ConfigKind, EvalContext};
pub use error::ExperimentError;
pub use profile::{profile_run, ProfileReport};
pub use ratio::page_ratio;
pub use runner::{map_ordered, merge_metrics, RunnerTiming};
pub use sharding::SimPoint;
pub use table::Table;
