//! Fig. 14: normalized function runtime pricing under the AWS Lambda
//! billing model (§6.5): GB-seconds at millisecond/MB granularity plus an
//! optional fixed per-invocation charge for end-to-end cost.

use crate::context::EvalContext;
use crate::table::Table;
use memento_system::RunStats;
use memento_workloads::spec::{Category, WorkloadSpec};
use std::fmt;

/// AWS Lambda pricing constants (the paper's §6.5 source, [4]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AwsPricing {
    /// Dollars per GB-second of configured memory.
    pub per_gb_second: f64,
    /// Dollars per invocation (fixed infrastructure charge).
    pub per_invocation: f64,
    /// Minimum billable memory in MB.
    pub min_memory_mb: f64,
}

impl AwsPricing {
    /// Published x86 Lambda rates: $0.0000166667/GB-s, $0.20 per 1M
    /// requests, 128 MB minimum.
    pub fn published() -> Self {
        AwsPricing {
            per_gb_second: 0.0000166667,
            per_invocation: 0.20 / 1.0e6,
            min_memory_mb: 128.0,
        }
    }

    /// Runtime-only cost of one invocation (time × consumed memory, the
    /// paper's §6.5 model: "granularity of milliseconds for runtime and MB
    /// for consumed memory"). Simulated runtimes are scaled down ~10³ from
    /// the real sub-second functions, so time is billed exactly rather
    /// than ceil'd to a millisecond; memory is billed at consumed-MB
    /// granularity without the deployment floor (see
    /// [`AwsPricing::floored_cost`] for the configured-memory variant).
    pub fn runtime_cost(&self, stats: &RunStats) -> f64 {
        let mem_mb = stats.peak_memory_mb().ceil().max(1.0);
        stats.runtime_seconds() * (mem_mb / 1024.0) * self.per_gb_second
    }

    /// Runtime cost under Lambda's real billing (configured-memory floor).
    pub fn floored_cost(&self, stats: &RunStats) -> f64 {
        let mem_mb = stats.peak_memory_mb().ceil().max(self.min_memory_mb);
        stats.runtime_seconds() * (mem_mb / 1024.0) * self.per_gb_second
    }

    /// End-to-end cost including the fixed per-invocation charge.
    pub fn end_to_end_cost(&self, stats: &RunStats) -> f64 {
        self.runtime_cost(stats) + self.per_invocation
    }
}

impl Default for AwsPricing {
    fn default() -> Self {
        AwsPricing::published()
    }
}

/// One Fig. 14 bar.
#[derive(Clone, Debug)]
pub struct PricingRow {
    /// Workload name.
    pub name: String,
    /// Memento/baseline runtime-cost ratio.
    pub runtime_ratio: f64,
    /// Memento/baseline end-to-end ratio (with per-invocation charge).
    pub end_to_end_ratio: f64,
}

/// Fig. 14 results.
#[derive(Clone, Debug)]
pub struct PricingResult {
    /// Per-function ratios.
    pub rows: Vec<PricingRow>,
    /// Mean runtime-cost saving (1 − ratio) over functions.
    pub runtime_saving_avg: f64,
    /// Mean end-to-end saving over functions.
    pub end_to_end_saving_avg: f64,
}

/// Runs Fig. 14 over the function subset of `specs`.
///
/// Billing uses Lambda's configured-memory model ([`AwsPricing::floored_cost`]):
/// at the simulator's scaled-down heap sizes both systems sit below the
/// 128 MB floor, so the cost ratio tracks execution time. (The paper's
/// consumed-MB model additionally credits Memento's 15 % memory saving,
/// which does not materialize at scaled-down heap sizes — see
/// EXPERIMENTS.md.)
pub fn run_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> PricingResult {
    let pricing = AwsPricing::published();
    let rows: Vec<PricingRow> = specs
        .iter()
        .filter(|s| s.category == Category::Function)
        .map(|spec| {
            let (base, mem) = ctx.pair(spec);
            let base_cost = pricing.floored_cost(&base);
            let mem_cost = pricing.floored_cost(&mem);
            PricingRow {
                name: spec.name.clone(),
                runtime_ratio: mem_cost / base_cost,
                end_to_end_ratio: (mem_cost + pricing.per_invocation)
                    / (base_cost + pricing.per_invocation),
            }
        })
        .collect();
    let n = rows.len().max(1) as f64;
    PricingResult {
        runtime_saving_avg: rows.iter().map(|r| 1.0 - r.runtime_ratio).sum::<f64>() / n,
        end_to_end_saving_avg: rows.iter().map(|r| 1.0 - r.end_to_end_ratio).sum::<f64>() / n,
        rows,
    }
}

/// Runs Fig. 14 over the full suite's functions.
pub fn run(ctx: &mut EvalContext) -> PricingResult {
    let specs = ctx.workloads();
    run_for(ctx, &specs)
}

impl fmt::Display for PricingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 14 — Normalized function runtime pricing (baseline = 1.0)"
        )?;
        let mut t = Table::new(vec!["workload", "runtime cost", "end-to-end"]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.3}", r.runtime_ratio),
                format!("{:.3}", r.end_to_end_ratio),
            ]);
        }
        writeln!(f, "{t}")?;
        write!(
            f,
            "avg runtime-cost saving {:.1}%, end-to-end saving {:.1}%",
            self.runtime_saving_avg * 100.0,
            self.end_to_end_saving_avg * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_model_is_monotone() {
        let pricing = AwsPricing::published();
        let mut fast = RunStats {
            name: "fast".into(),
            ..Default::default()
        };
        fast.cycles.charge(
            memento_simcore::cycles::CycleBucket::Compute,
            memento_simcore::cycles::Cycles::new(3_000_000),
        );
        let mut slow = fast.clone();
        slow.cycles.charge(
            memento_simcore::cycles::CycleBucket::Compute,
            memento_simcore::cycles::Cycles::new(30_000_000),
        );
        assert!(pricing.runtime_cost(&slow) > pricing.runtime_cost(&fast));
        assert!(pricing.end_to_end_cost(&fast) > pricing.runtime_cost(&fast));
    }

    #[test]
    fn memento_cuts_runtime_cost() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("html")];
        let result = run_for(&mut ctx, &specs);
        assert_eq!(result.rows.len(), 1);
        assert!(
            result.rows[0].runtime_ratio < 1.0,
            "ratio {}",
            result.rows[0].runtime_ratio
        );
        // End-to-end saving is diluted by the fixed charge.
        assert!(result.end_to_end_saving_avg <= result.runtime_saving_avg);
        assert!(result.to_string().contains("Fig. 14"));
    }
}
