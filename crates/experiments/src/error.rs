//! Typed errors surfaced by experiment runners.
//!
//! Experiment entry points that take workload *names* (`multicore`,
//! `ablation`, `cluster`) validate them up front and return
//! [`ExperimentError::UnknownWorkload`] instead of panicking deep inside a
//! worker thread, so callers (CLI examples, CI steps) can print the bad
//! name and exit cleanly.

use memento_cluster::ClusterError;
use memento_workloads::spec::WorkloadSpec;
use memento_workloads::suite;
use std::error::Error;
use std::fmt;

/// Why an experiment could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum ExperimentError {
    /// A requested workload name is not in the suite.
    UnknownWorkload(String),
    /// The cluster simulator rejected its configuration.
    Cluster(ClusterError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownWorkload(name) => {
                write!(
                    f,
                    "unknown workload '{name}' (see workloads::suite for valid names)"
                )
            }
            ExperimentError::Cluster(e) => write!(f, "cluster setup failed: {e}"),
        }
    }
}

impl Error for ExperimentError {}

impl From<ClusterError> for ExperimentError {
    fn from(e: ClusterError) -> Self {
        ExperimentError::Cluster(e)
    }
}

/// Resolves workload names against the suite at `1/scale_divisor` compute
/// scale, failing on the first unknown name.
pub fn scaled_specs(
    names: &[&str],
    scale_divisor: u64,
) -> Result<Vec<WorkloadSpec>, ExperimentError> {
    names
        .iter()
        .map(|n| match suite::by_name(n) {
            Some(mut s) => {
                s.total_instructions /= scale_divisor.max(1);
                Ok(s)
            }
            None => Err(ExperimentError::UnknownWorkload((*n).to_owned())),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_names_are_reported_not_panicked() {
        let err = scaled_specs(&["aes", "no-such-fn"], 2).expect_err("must fail");
        assert_eq!(err, ExperimentError::UnknownWorkload("no-such-fn".into()));
        assert!(err.to_string().contains("no-such-fn"));
    }

    #[test]
    fn valid_names_resolve_scaled() {
        let full = suite::by_name("aes")
            .expect("known workload")
            .total_instructions;
        let specs = scaled_specs(&["aes"], 4).expect("valid names");
        assert_eq!(specs[0].total_instructions, full / 4);
    }

    #[test]
    fn cluster_errors_convert() {
        let e: ExperimentError = ClusterError::NoNodes.into();
        assert!(e.to_string().contains("cluster setup failed"));
    }
}
