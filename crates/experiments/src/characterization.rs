//! Figs. 2–3 and Tables 1–2: the memory-management characterization of
//! §2.2, regenerated from the workload suite.

use crate::context::{ConfigKind, EvalContext};
use crate::table::{pct, Table};
use memento_workloads::analysis::{self, Characterization};
use memento_workloads::generator::generate;
use memento_workloads::spec::{Category, Language, WorkloadSpec};
use std::fmt;

/// One characterization group (the paper plots Python / C++ / Golang /
/// Data Proc / Serverless Pltf series).
#[derive(Clone, Debug)]
pub struct GroupCharacterization {
    /// Series label.
    pub label: String,
    /// Merged characterization over the group's workloads.
    pub ch: Characterization,
}

/// Fig. 2 + Fig. 3 + Table 1 results.
#[derive(Clone, Debug)]
pub struct CharacterizationResult {
    /// Per-group distributions in the paper's series order.
    pub groups: Vec<GroupCharacterization>,
    /// Table 1 quadrants over the function workloads.
    pub function_quadrants: memento_workloads::analysis::JointQuadrants,
}

fn group_of(spec: &WorkloadSpec) -> &'static str {
    match (spec.category, spec.language) {
        (Category::DataProc, _) => "Data Proc",
        (Category::Platform, _) => "Serverless Pltf",
        (_, Language::Python) => "Python",
        (_, Language::Cpp) => "C++",
        (_, Language::Golang) => "Golang",
    }
}

/// Runs the characterization over `specs` on `jobs` worker threads.
/// Trace generation + characterization per spec is pure and deterministic,
/// and results merge in input order, so output is jobs-independent.
pub fn run_for_jobs(specs: &[WorkloadSpec], jobs: usize) -> CharacterizationResult {
    let order = ["Python", "C++", "Golang", "Data Proc", "Serverless Pltf"];
    let mut per_group: Vec<Vec<Characterization>> = vec![Vec::new(); order.len()];
    let mut function_chs = Vec::new();
    let chs =
        crate::runner::map_ordered(jobs, specs, |spec| analysis::characterize(&generate(spec)));
    for (spec, ch) in specs.iter().zip(chs) {
        let gi = order
            .iter()
            .position(|g| *g == group_of(spec))
            .expect("known group");
        if spec.category == Category::Function {
            function_chs.push(ch.clone());
        }
        per_group[gi].push(ch);
    }
    let groups = order
        .iter()
        .zip(per_group)
        .filter(|(_, chs)| !chs.is_empty())
        .map(|(label, chs)| GroupCharacterization {
            label: (*label).to_owned(),
            ch: analysis::merge(&chs),
        })
        .collect();
    let function_quadrants = analysis::merge(&function_chs).quadrants;
    CharacterizationResult {
        groups,
        function_quadrants,
    }
}

/// Runs the characterization over `specs` (worker count from the
/// environment; see [`crate::runner::effective_jobs`]).
pub fn run_for(specs: &[WorkloadSpec]) -> CharacterizationResult {
    run_for_jobs(specs, crate::runner::effective_jobs(None))
}

/// Runs the characterization over the full suite.
pub fn run(ctx: &EvalContext) -> CharacterizationResult {
    run_for_jobs(&ctx.workloads(), ctx.jobs())
}

impl fmt::Display for CharacterizationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 2 — Allocation size (bytes), % of total allocations"
        )?;
        let mut t = Table::new(vec![
            "group",
            "[1,512]",
            "[513,1024]",
            "[1025,1536]",
            "[1537,2048]",
            "[2049+]",
        ]);
        for g in &self.groups {
            let h = &g.ch.size_hist;
            // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
            let tail: f64 = (4..h.bins()).map(|b| h.percent(b)).sum::<f64>()
                + h.percent_overflow()
                + h.percent(3);
            t.row(vec![
                g.label.clone(),
                format!("{:.1}", h.percent(0)),
                format!("{:.1}", h.percent(1)),
                format!("{:.1}", h.percent(2)),
                format!("{:.1}", h.percent(3)),
                format!("{:.1}", tail - h.percent(3)),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(
            f,
            "Fig. 3 — Allocation lifetime (malloc-free distance), % of total"
        )?;
        let mut t = Table::new(vec![
            "group",
            "[1-16]",
            "[17-32]",
            "[33-64]",
            "[65-256]",
            "[257-Inf]",
        ]);
        for g in &self.groups {
            let h = &g.ch.lifetime_hist;
            let b33_64: f64 = h.percent(2) + h.percent(3);
            // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
            let b65_256: f64 = (4..16).map(|b| h.percent(b)).sum();
            t.row(vec![
                g.label.clone(),
                format!("{:.1}", h.percent(0)),
                format!("{:.1}", h.percent(1)),
                format!("{b33_64:.1}"),
                format!("{b65_256:.1}"),
                format!("{:.1}", h.percent_overflow()),
            ]);
        }
        writeln!(f, "{t}")?;

        writeln!(
            f,
            "Table 1 — Combined size × lifetime distribution (functions)"
        )?;
        let q = self.function_quadrants;
        writeln!(f, "              Small     Large")?;
        writeln!(
            f,
            "Short-lived   {:>5.1}%   {:>5.2}%",
            q.small_short, q.large_short
        )?;
        writeln!(
            f,
            "Long-lived    {:>5.1}%   {:>5.2}%",
            q.small_long, q.large_long
        )?;
        Ok(())
    }
}

/// Table 2: user/kernel memory-management cycle split per language group,
/// measured on the baseline system.
#[derive(Clone, Debug)]
pub struct MmBreakdownResult {
    /// `(group label, user share, kernel share)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs Table 2 over `specs`.
pub fn mm_breakdown_for(ctx: &mut EvalContext, specs: &[WorkloadSpec]) -> MmBreakdownResult {
    ctx.prefetch_kinds(specs, &[ConfigKind::Baseline]);
    let order = ["Python", "C++", "Golang", "FaaS Platform", "Data Proc."];
    let mut user: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    let mut kernel: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for spec in specs {
        let stats = ctx.run(spec, ConfigKind::Baseline);
        let gi = match (spec.category, spec.language) {
            (Category::Platform, _) => 3,
            (Category::DataProc, _) => 4,
            (_, Language::Python) => 0,
            (_, Language::Cpp) => 1,
            (_, Language::Golang) => 2,
        };
        user[gi].push(stats.user_mm_share());
        kernel[gi].push(stats.kernel_mm_share());
    }
    let rows = order
        .iter()
        .enumerate()
        .filter(|(i, _)| !user[*i].is_empty())
        .map(|(i, label)| {
            let n = user[i].len() as f64;
            (
                (*label).to_owned(),
                // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
                user[i].iter().sum::<f64>() / n,
                // lint:allow(float-accumulation-order): fixed-order reduction over map_ordered output
                kernel[i].iter().sum::<f64>() / n,
            )
        })
        .collect();
    MmBreakdownResult { rows }
}

/// Runs Table 2 over the full suite.
pub fn mm_breakdown(ctx: &mut EvalContext) -> MmBreakdownResult {
    let specs = ctx.workloads();
    mm_breakdown_for(ctx, &specs)
}

impl fmt::Display for MmBreakdownResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2 — Memory-management cycles breakdown (user/kernel)"
        )?;
        let mut t = Table::new(vec!["group", "user", "kernel"]);
        for (label, u, k) in &self.rows {
            t.row(vec![label.clone(), pct(*u), pct(*k)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_workloads::suite;

    #[test]
    fn characterization_matches_paper_shape() {
        let result = run_for(&suite::all_workloads());
        assert_eq!(result.groups.len(), 5);
        // Fig. 2: small allocations dominate everywhere.
        for g in &result.groups {
            assert!(
                g.ch.size_hist.percent(0) > 85.0,
                "{}: small bin {:.1}%",
                g.label,
                g.ch.size_hist.percent(0)
            );
        }
        // Table 1: small+short is the dominant quadrant for functions.
        let q = result.function_quadrants;
        assert!(q.small_short > q.small_long);
        assert!(q.small_short + q.small_long > 85.0);
        // Fig. 3 per-language ordering: C++ shortest-lived, Go longest.
        let get = |label: &str| {
            result
                .groups
                .iter()
                .find(|g| g.label == label)
                .map(|g| g.ch.short16_fraction())
                .expect("group present")
        };
        assert!(get("C++") > get("Golang"));
        assert!(get("Python") > get("Golang"));
    }

    #[test]
    fn display_renders_all_sections() {
        let result = run_for(&suite::function_workloads()[..3]);
        let s = result.to_string();
        assert!(s.contains("Fig. 2"));
        assert!(s.contains("Fig. 3"));
        assert!(s.contains("Table 1"));
    }

    #[test]
    fn mm_breakdown_runs_on_subset() {
        let mut ctx = EvalContext::quick();
        let specs = vec![ctx.workload("aes"), ctx.workload("US")];
        let result = mm_breakdown_for(&mut ctx, &specs);
        assert_eq!(result.rows.len(), 2);
        for (label, u, k) in &result.rows {
            assert!((u + k - 1.0).abs() < 1e-9, "{label}: shares must sum to 1");
        }
        assert!(result.to_string().contains("Table 2"));
    }
}
