//! Multi-core co-location: several functions running *concurrently*, one
//! per core, sharing the LLC, DRAM, and Memento's memory-controller page
//! allocator (per-core HOTs and TLBs).
//!
//! The paper evaluates multi-tenancy through time-sharing (§6.6) and
//! argues the multi-core design in §4; this experiment extends the
//! evaluation to true spatial co-location and checks that per-function
//! speedups survive cache/bandwidth contention.

use crate::error::{scaled_specs, ExperimentError};
use crate::runner;
use crate::table::{f3, Table};
use memento_system::{stats, Machine, SystemConfig};
use memento_workloads::spec::WorkloadSpec;
use std::fmt;

/// Result of the co-location experiment.
#[derive(Clone, Debug)]
pub struct MulticoreResult {
    /// `(workload, solo speedup, co-located speedup)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// Geometric mean of co-located speedups.
    pub colocated_avg: f64,
    /// Geometric mean of solo speedups for the same set.
    pub solo_avg: f64,
}

/// Runs `names` concurrently on as many cores, under baseline and Memento,
/// and compares per-function speedups against their solo runs; simulations
/// fan out over `jobs` worker threads. Unknown names fail with
/// [`ExperimentError::UnknownWorkload`] before any simulation starts.
pub fn run_for_jobs(
    names: &[&str],
    scale_divisor: u64,
    jobs: usize,
) -> Result<MulticoreResult, ExperimentError> {
    let specs: Vec<WorkloadSpec> = scaled_specs(names, scale_divisor)?;
    let cores = specs.len();

    let cfg_base = SystemConfig {
        cores,
        mem: memento_cache::MemSystemConfig::paper_default(cores),
        ..SystemConfig::baseline()
    };
    let cfg_mem = SystemConfig {
        cores,
        mem: memento_cache::MemSystemConfig::paper_default(cores),
        ..SystemConfig::memento()
    };

    // Each co-located trial simulates all cores on one machine, so the two
    // trials are the two big shards; the per-spec solo runs fan out beside
    // them.
    let concurrent_cfgs = [cfg_base, cfg_mem];
    let mut concurrent = runner::map_ordered(jobs, &concurrent_cfgs, |cfg| {
        Machine::new(cfg.clone()).run_concurrent(&specs)
    });
    let mem_runs = concurrent.pop().expect("memento trial");
    let base_runs = concurrent.pop().expect("baseline trial");

    let solo_points: Vec<(SystemConfig, WorkloadSpec)> = specs
        .iter()
        .flat_map(|spec| {
            [SystemConfig::baseline(), SystemConfig::memento()].map(|cfg| (cfg, spec.clone()))
        })
        .collect();
    let solo = runner::map_ordered(jobs, &solo_points, |(cfg, spec)| {
        Machine::new(cfg.clone()).run(spec)
    });

    let mut rows = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let (solo_base, solo_mem) = (&solo[2 * i], &solo[2 * i + 1]);
        rows.push((
            spec.name.clone(),
            stats::speedup(solo_base, solo_mem),
            // Per-function cycle ledgers are per-run even under sharing.
            base_runs[i].total_cycles().raw() as f64
                / mem_runs[i].total_cycles().raw().max(1) as f64,
        ));
    }
    let solo: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let colo: Vec<f64> = rows.iter().map(|r| r.2).collect();
    Ok(MulticoreResult {
        solo_avg: stats::geomean(&solo),
        colocated_avg: stats::geomean(&colo),
        rows,
    })
}

/// Runs the co-location study with the worker count from the environment.
pub fn run_for(names: &[&str], scale_divisor: u64) -> Result<MulticoreResult, ExperimentError> {
    run_for_jobs(names, scale_divisor, runner::effective_jobs(None))
}

/// Default four-function co-location study.
pub fn run() -> Result<MulticoreResult, ExperimentError> {
    run_for(&["html", "US", "bfs-go", "jl"], 2)
}

impl fmt::Display for MulticoreResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Multi-core co-location ({} functions, one per core, shared LLC/DRAM)",
            self.rows.len()
        )?;
        let mut t = Table::new(vec!["workload", "solo", "co-located"]);
        for (name, solo, colo) in &self.rows {
            t.row(vec![name.clone(), f3(*solo), f3(*colo)]);
        }
        writeln!(f, "{t}")?;
        write!(
            f,
            "geomean: solo {:.3} vs co-located {:.3}",
            self.solo_avg, self.colocated_avg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let err = run_for(&["aes", "definitely-not-real"], 8).expect_err("must fail");
        assert_eq!(
            err,
            ExperimentError::UnknownWorkload("definitely-not-real".into())
        );
    }

    #[test]
    fn colocation_preserves_wins() {
        let result = run_for(&["aes", "jl"], 8).expect("known workloads");
        assert_eq!(result.rows.len(), 2);
        for (name, solo, colo) in &result.rows {
            assert!(*solo > 1.0, "{name} solo {solo}");
            assert!(*colo > 1.0, "{name} co-located {colo}");
        }
        assert!(result.to_string().contains("co-location"));
    }
}
