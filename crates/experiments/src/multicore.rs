//! Multi-core contention: one machine, a batch of invocations distributed
//! across its cores by the deterministic work-stealing scheduler
//! ([`Machine::run_scheduled`]), all sharing the LLC (fair-share
//! eviction), the DRAM controller (queueing delay), and Memento's
//! memory-controller page allocator; HOTs, TLBs, and page walkers are
//! per-core.
//!
//! The paper evaluates multi-tenancy through time-sharing (§6.6) and
//! argues the multi-core design in §4; this experiment extends the
//! evaluation to true in-machine parallelism and checks that per-function
//! speedups survive cache/bandwidth contention. The batch oversubscribes
//! the cores (about two invocations per core), so the scheduler's steal
//! path runs in the default study, and the seeded victim selection makes
//! the whole table one deterministic point: byte-identical at any `--jobs`
//! and across repeated runs.

use crate::error::{scaled_specs, ExperimentError};
use crate::runner;
use crate::table::{f3, Table};
use memento_system::{stats, Machine, SchedStats, SystemConfig};
use memento_workloads::spec::WorkloadSpec;
use std::fmt;

/// Victim-selection seed for both scheduled trials: fixed so the
/// experiment is one deterministic point, not a distribution.
const SCHED_SEED: u64 = 0x5EED;

/// One workload's contention row.
#[derive(Clone, Debug, PartialEq)]
pub struct MulticoreRow {
    /// Workload name.
    pub name: String,
    /// Memento-over-baseline speedup with the function running alone.
    pub solo: f64,
    /// Memento-over-baseline speedup under scheduled co-location.
    pub colocated: f64,
    /// Contention cost under Memento: co-located cycles over solo cycles
    /// (above 1 when sharing the LLC/DRAM cost this function something;
    /// occasionally just below 1 when a sibling's recycled frames warm
    /// the page pool).
    pub slowdown: f64,
}

/// Result of the contention experiment.
#[derive(Clone, Debug)]
pub struct MulticoreResult {
    /// Cores on each scheduled machine (about half the invocation count,
    /// so the batch oversubscribes the machine).
    pub cores: usize,
    /// Per-workload rows.
    pub rows: Vec<MulticoreRow>,
    /// Geometric mean of co-located speedups.
    pub colocated_avg: f64,
    /// Geometric mean of solo speedups for the same set.
    pub solo_avg: f64,
    /// Geometric mean of the per-function contention slowdowns.
    pub slowdown_avg: f64,
    /// Work-stealing counters from the Memento trial.
    pub sched: SchedStats,
    /// Memory-controller queueing cycles the Memento trial paid.
    pub dram_queue_cycles: u64,
}

/// Work-stealing-schedules `names` over half as many cores on one shared
/// machine, under baseline and Memento, and compares per-function speedups
/// against their solo runs; simulations fan out over `jobs` worker
/// threads. Unknown names fail with [`ExperimentError::UnknownWorkload`]
/// before any simulation starts.
pub fn run_for_jobs(
    names: &[&str],
    scale_divisor: u64,
    jobs: usize,
) -> Result<MulticoreResult, ExperimentError> {
    let specs: Vec<WorkloadSpec> = scaled_specs(names, scale_divisor)?;
    // Half as many cores as invocations (floor two once there are two):
    // the batch oversubscribes the machine, so the steal path genuinely
    // runs, and at least two invocations contend whenever two exist.
    let cores = if specs.len() < 2 {
        1
    } else {
        specs.len().div_ceil(2).max(2)
    };

    // Each scheduled trial is one whole-machine simulation, so the two
    // trials are the two big shards; the per-spec solo runs fan out beside
    // them. Determinism across `jobs` is structural: every shard is a
    // sequential simulation, and the steal interleaving is fixed by
    // `SCHED_SEED`, not by worker threads.
    let trial_cfgs = [
        SystemConfig::baseline().with_cores(cores),
        SystemConfig::memento().with_cores(cores),
    ];
    let mut trials = runner::map_ordered(jobs, &trial_cfgs, |cfg| {
        let mut machine = Machine::new(cfg.clone());
        let (runs, sched) = machine.run_scheduled(&specs, SCHED_SEED);
        (runs, sched, machine.mem_stats().dram_queue_cycles)
    });
    let (mem_runs, sched, dram_queue_cycles) = trials.pop().expect("memento trial");
    let (base_runs, _, _) = trials.pop().expect("baseline trial");

    let solo_points: Vec<(SystemConfig, WorkloadSpec)> = specs
        .iter()
        .flat_map(|spec| {
            [SystemConfig::baseline(), SystemConfig::memento()].map(|cfg| (cfg, spec.clone()))
        })
        .collect();
    let solo = runner::map_ordered(jobs, &solo_points, |(cfg, spec)| {
        Machine::new(cfg.clone()).run(spec)
    });

    let mut rows = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let (solo_base, solo_mem) = (&solo[2 * i], &solo[2 * i + 1]);
        rows.push(MulticoreRow {
            name: spec.name.clone(),
            solo: stats::speedup(solo_base, solo_mem),
            // Per-function cycle ledgers are per-run even under sharing.
            colocated: base_runs[i].total_cycles().raw() as f64
                / mem_runs[i].total_cycles().raw().max(1) as f64,
            slowdown: mem_runs[i].total_cycles().raw() as f64
                / solo_mem.total_cycles().raw().max(1) as f64,
        });
    }
    let solo: Vec<f64> = rows.iter().map(|r| r.solo).collect();
    let colo: Vec<f64> = rows.iter().map(|r| r.colocated).collect();
    let slow: Vec<f64> = rows.iter().map(|r| r.slowdown).collect();
    Ok(MulticoreResult {
        cores,
        solo_avg: stats::geomean(&solo),
        colocated_avg: stats::geomean(&colo),
        slowdown_avg: stats::geomean(&slow),
        rows,
        sched,
        dram_queue_cycles,
    })
}

/// Runs the contention study with the worker count from the environment.
pub fn run_for(names: &[&str], scale_divisor: u64) -> Result<MulticoreResult, ExperimentError> {
    run_for_jobs(names, scale_divisor, runner::effective_jobs(None))
}

/// Default four-function contention study.
pub fn run() -> Result<MulticoreResult, ExperimentError> {
    run_for(&["html", "US", "bfs-go", "jl"], 2)
}

impl fmt::Display for MulticoreResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Multi-core contention ({} invocations work-stealing-scheduled over {} cores, \
             shared LLC/DRAM)",
            self.rows.len(),
            self.cores
        )?;
        let mut t = Table::new(vec!["workload", "solo", "co-located", "slowdown"]);
        for row in &self.rows {
            t.row(vec![
                row.name.clone(),
                f3(row.solo),
                f3(row.colocated),
                f3(row.slowdown),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "geomean: solo {:.3} vs co-located {:.3} (contention slowdown {:.3})",
            self.solo_avg, self.colocated_avg, self.slowdown_avg
        )?;
        let mut c = Table::new(vec!["core", "invocations", "cycles"]);
        for (core, (jobs, cycles)) in self
            .sched
            .per_core_jobs
            .iter()
            .zip(&self.sched.per_core_cycles)
            .enumerate()
        {
            c.row(vec![core.to_string(), jobs.to_string(), cycles.to_string()]);
        }
        writeln!(f, "{c}")?;
        write!(
            f,
            "memento trial: {} steal(s), {} DRAM queueing cycles",
            self.sched.steals, self.dram_queue_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let err = run_for(&["aes", "definitely-not-real"], 8).expect_err("must fail");
        assert_eq!(
            err,
            ExperimentError::UnknownWorkload("definitely-not-real".into())
        );
    }

    #[test]
    fn colocation_preserves_wins_under_contention() {
        let result = run_for(&["aes", "jl"], 8).expect("known workloads");
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.cores, 2, "two invocations get two contending cores");
        for row in &result.rows {
            assert!(row.solo > 1.0, "{} solo {}", row.name, row.solo);
            assert!(
                row.colocated > 1.0,
                "{} co-located {}",
                row.name,
                row.colocated
            );
            assert!(
                row.slowdown.is_finite() && row.slowdown > 0.0,
                "{} slowdown {}",
                row.name,
                row.slowdown
            );
        }
        assert_eq!(
            result.sched.per_core_jobs.iter().sum::<u64>(),
            2,
            "every invocation ran exactly once"
        );
        assert!(
            result.dram_queue_cycles > 0,
            "two co-resident cores must pay memory-controller queueing"
        );
        assert!(result.to_string().contains("contention"));
    }

    #[test]
    fn oversubscribed_batch_engages_the_scheduler() {
        // Four invocations on two cores: the short pair's core drains its
        // deque and steals from the long pair's backlog.
        let result = run_for(&["aes", "jl", "aes", "jl"], 8).expect("known workloads");
        assert_eq!(result.cores, 2);
        assert_eq!(result.sched.per_core_jobs.iter().sum::<u64>(), 4);
        assert!(
            result.sched.per_core_cycles.iter().all(|&c| c > 0),
            "no core starves: {:?}",
            result.sched.per_core_cycles
        );
    }
}
