//! Memento arena headers (paper Fig. 5a).
//!
//! An arena header occupies the first 64 bytes — exactly one cache line — of
//! the arena's header page and holds: the arena's base VA, a 256-bit
//! allocation bitmap, the 11-bit bypass counter, and prev/next pointers
//! linking same-class arenas into the available/full lists. The header is a
//! real data structure in simulated physical memory; the HOT caches a copy.

use crate::size_class::OBJECTS_PER_ARENA;
use memento_simcore::addr::{PhysAddr, VirtAddr};
use memento_simcore::physmem::PhysMem;

/// Byte offsets of the header fields within the header page.
mod layout {
    /// VA field.
    pub const VA: u64 = 0x00;
    /// 256-bit bitmap (4 words).
    pub const BITMAP: u64 = 0x08;
    /// Bypass counter.
    pub const BYPASS: u64 = 0x28;
    /// Prev pointer (physical address; 0 = null).
    pub const PREV: u64 = 0x30;
    /// Next pointer (physical address; 0 = null).
    pub const NEXT: u64 = 0x38;
}

/// Size of the header in bytes (one cache line).
pub const HEADER_BYTES: u64 = 64;

/// An in-flight copy of an arena header (as cached by a HOT entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaHeader {
    /// Base virtual address of the arena.
    pub va: VirtAddr,
    /// Allocation bitmap: bit i set ⇒ object i allocated.
    pub bitmap: [u64; 4],
    /// Bypass counter: number of body lines known to have been touched
    /// (lines at index ≥ counter were never accessed — safe to bypass).
    pub bypass_counter: u64,
    /// Previous arena header in the current list (PA; 0 = null).
    pub prev: u64,
    /// Next arena header in the current list (PA; 0 = null).
    pub next: u64,
}

impl ArenaHeader {
    /// A fresh header for an arena at `va`: empty bitmap, zero bypass
    /// counter, unlinked.
    pub fn fresh(va: VirtAddr) -> Self {
        ArenaHeader {
            va,
            ..Default::default()
        }
    }

    /// Loads a header from simulated memory at `pa`.
    pub fn load(mem: &PhysMem, pa: PhysAddr) -> Self {
        ArenaHeader {
            va: VirtAddr::new(mem.read_u64(pa.add(layout::VA))),
            bitmap: [
                mem.read_u64(pa.add(layout::BITMAP)),
                mem.read_u64(pa.add(layout::BITMAP + 8)),
                mem.read_u64(pa.add(layout::BITMAP + 16)),
                mem.read_u64(pa.add(layout::BITMAP + 24)),
            ],
            bypass_counter: mem.read_u64(pa.add(layout::BYPASS)),
            prev: mem.read_u64(pa.add(layout::PREV)),
            next: mem.read_u64(pa.add(layout::NEXT)),
        }
    }

    /// Stores the header to simulated memory at `pa`.
    pub fn store(&self, mem: &mut PhysMem, pa: PhysAddr) {
        mem.write_u64(pa.add(layout::VA), self.va.raw());
        for (i, w) in self.bitmap.iter().enumerate() {
            mem.write_u64(pa.add(layout::BITMAP + 8 * i as u64), *w);
        }
        mem.write_u64(pa.add(layout::BYPASS), self.bypass_counter);
        mem.write_u64(pa.add(layout::PREV), self.prev);
        mem.write_u64(pa.add(layout::NEXT), self.next);
    }

    /// Finds the lowest clear bit, if any.
    pub fn find_clear(&self) -> Option<usize> {
        for (w, word) in self.bitmap.iter().enumerate() {
            if *word != u64::MAX {
                return Some(w * 64 + word.trailing_ones() as usize);
            }
        }
        None
    }

    /// Whether object `index` is allocated.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `index >= 256`.
    pub fn is_set(&self, index: usize) -> bool {
        debug_assert!(index < OBJECTS_PER_ARENA);
        self.bitmap[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Marks object `index` allocated. Debug builds reject allocating a
    /// slot that is already live (the FSM only sets bits `find_clear`
    /// returned).
    pub fn set(&mut self, index: usize) {
        debug_assert!(index < OBJECTS_PER_ARENA);
        debug_assert!(
            !self.is_set(index),
            "arena {:?}: slot {index} allocated twice",
            self.va
        );
        self.bitmap[index / 64] |= 1u64 << (index % 64);
    }

    /// Marks object `index` free. Debug builds reject freeing a slot that
    /// is not live (the FSM checks the bit before clearing).
    pub fn clear(&mut self, index: usize) {
        debug_assert!(index < OBJECTS_PER_ARENA);
        debug_assert!(
            self.is_set(index),
            "arena {:?}: slot {index} freed while free",
            self.va
        );
        self.bitmap[index / 64] &= !(1u64 << (index % 64));
    }

    /// Number of allocated objects.
    pub fn live_objects(&self) -> u32 {
        self.bitmap.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether every object is allocated.
    pub fn is_full(&self) -> bool {
        self.bitmap.iter().all(|w| *w == u64::MAX)
    }

    /// Whether no object is allocated.
    pub fn is_empty(&self) -> bool {
        self.bitmap.iter().all(|w| *w == 0)
    }
}

/// Raw field accessors used by list surgery on headers that are *not*
/// currently cached (the hardware updates neighbours' prev/next in place).
pub mod raw {
    use super::layout;
    use memento_simcore::addr::PhysAddr;
    use memento_simcore::physmem::PhysMem;

    /// Reads the `next` pointer of the header at `pa`.
    pub fn next(mem: &PhysMem, pa: PhysAddr) -> u64 {
        mem.read_u64(pa.add(layout::NEXT))
    }

    /// Writes the `next` pointer of the header at `pa`.
    pub fn set_next(mem: &mut PhysMem, pa: PhysAddr, value: u64) {
        mem.write_u64(pa.add(layout::NEXT), value);
    }

    /// Reads the `prev` pointer of the header at `pa`.
    pub fn prev(mem: &PhysMem, pa: PhysAddr) -> u64 {
        mem.read_u64(pa.add(layout::PREV))
    }

    /// Writes the `prev` pointer of the header at `pa`.
    pub fn set_prev(mem: &mut PhysMem, pa: PhysAddr, value: u64) {
        mem.write_u64(pa.add(layout::PREV), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_header_is_empty() {
        let h = ArenaHeader::fresh(VirtAddr::new(0x6000_0000_0000));
        assert!(h.is_empty());
        assert!(!h.is_full());
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.find_clear(), Some(0));
        assert_eq!(h.bypass_counter, 0);
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut h = ArenaHeader::fresh(VirtAddr::new(0x1000));
        for idx in [0usize, 63, 64, 127, 128, 255] {
            assert!(!h.is_set(idx));
            h.set(idx);
            assert!(h.is_set(idx));
        }
        assert_eq!(h.live_objects(), 6);
        h.clear(64);
        assert!(!h.is_set(64));
        assert_eq!(h.live_objects(), 5);
    }

    #[test]
    fn find_clear_skips_allocated_prefix() {
        let mut h = ArenaHeader::fresh(VirtAddr::new(0));
        for i in 0..100 {
            h.set(i);
        }
        assert_eq!(h.find_clear(), Some(100));
    }

    #[test]
    fn full_arena_has_no_clear_bit() {
        let mut h = ArenaHeader::fresh(VirtAddr::new(0));
        for i in 0..OBJECTS_PER_ARENA {
            h.set(i);
        }
        assert!(h.is_full());
        assert_eq!(h.find_clear(), None);
        h.clear(200);
        assert_eq!(h.find_clear(), Some(200));
        assert!(!h.is_full());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "allocated twice")]
    fn double_set_panics_in_debug() {
        let mut h = ArenaHeader::fresh(VirtAddr::new(0x1000));
        h.set(42);
        h.set(42);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "freed while free")]
    fn clear_of_free_slot_panics_in_debug() {
        let mut h = ArenaHeader::fresh(VirtAddr::new(0x1000));
        h.clear(7);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut mem = PhysMem::new(1 << 20);
        let frame = mem.alloc_frame().unwrap();
        let pa = frame.base_addr();
        let mut h = ArenaHeader::fresh(VirtAddr::new(0x6000_0000_8000));
        h.set(3);
        h.set(250);
        h.bypass_counter = 17;
        h.prev = 0xa000;
        h.next = 0xb000;
        h.store(&mut mem, pa);
        let loaded = ArenaHeader::load(&mem, pa);
        assert_eq!(loaded, h);
    }

    #[test]
    fn raw_pointer_surgery() {
        let mut mem = PhysMem::new(1 << 20);
        let frame = mem.alloc_frame().unwrap();
        let pa = frame.base_addr();
        ArenaHeader::fresh(VirtAddr::new(0x4000)).store(&mut mem, pa);
        raw::set_next(&mut mem, pa, 0x0123_4000);
        raw::set_prev(&mut mem, pa, 0x0567_8000);
        assert_eq!(raw::next(&mem, pa), 0x0123_4000);
        assert_eq!(raw::prev(&mem, pa), 0x0567_8000);
        // Field writes are visible through a full load too.
        let h = ArenaHeader::load(&mem, pa);
        assert_eq!(h.next, 0x0123_4000);
        assert_eq!(h.prev, 0x0567_8000);
    }

    #[test]
    fn header_fits_one_cache_line() {
        // VA(8) + bitmap(32) + bypass(8) + prev(8) + next(8) = 64.
        assert_eq!(HEADER_BYTES, 64);
    }
}
