//! The reserved Memento virtual-address region and its bit-arithmetic
//! address decomposition.
//!
//! The OS reserves a VA region per process and exposes it through the
//! `MRS`/`MRE` region control registers (paper §3.2). The region is divided
//! *evenly* into 64 size-class slices, which is the key design decision that
//! lets hardware recover the size class and arena base of any object address
//! with simple arithmetic — no table lookups on the `obj-free` path.

use crate::size_class::{SizeClass, NUM_SIZE_CLASSES, OBJECTS_PER_ARENA};
use memento_simcore::addr::{VirtAddr, PAGE_SIZE};
use std::fmt;

/// Default base of the reserved region (well away from the mmap area).
pub const DEFAULT_REGION_BASE: u64 = 0x6000_0000_0000;

/// Default bytes per size-class slice (256 MiB; 16 GiB of VA total — virtual
/// address space is plentiful).
pub const DEFAULT_CLASS_SLICE_BYTES: u64 = 256 << 20;

/// Location of an object within the region, recovered from its address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectLocation {
    /// The size class the address belongs to.
    pub class: SizeClass,
    /// Base virtual address of the containing arena.
    pub arena_base: VirtAddr,
    /// Object index within the arena (0..256).
    pub object_index: usize,
}

/// The per-process Memento region: the values of the MRS and MRE registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MementoRegion {
    mrs: VirtAddr,
    mre: VirtAddr,
}

impl MementoRegion {
    /// Creates a region `[base, base + 64 * slice_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics unless `base` and `slice_bytes` are page-aligned and every
    /// slice fits at least one arena of its class.
    pub fn new(base: VirtAddr, slice_bytes: u64) -> Self {
        assert!(base.is_page_aligned(), "region base must be page-aligned");
        assert_eq!(
            slice_bytes % PAGE_SIZE as u64,
            0,
            "slice must be whole pages"
        );
        for sc in SizeClass::all() {
            assert!(
                slice_bytes >= sc.arena_bytes() as u64,
                "slice too small for one {sc} arena"
            );
        }
        MementoRegion {
            mrs: base,
            mre: base.add(slice_bytes * NUM_SIZE_CLASSES as u64),
        }
    }

    /// The default region used throughout the evaluation.
    pub fn standard() -> Self {
        MementoRegion::new(
            VirtAddr::new(DEFAULT_REGION_BASE),
            DEFAULT_CLASS_SLICE_BYTES,
        )
    }

    /// Memento Region Start register value.
    pub fn mrs(&self) -> VirtAddr {
        self.mrs
    }

    /// Memento Region End register value (exclusive).
    pub fn mre(&self) -> VirtAddr {
        self.mre
    }

    /// Bytes per size-class slice.
    pub fn slice_bytes(&self) -> u64 {
        self.mre.offset_from(self.mrs) / NUM_SIZE_CLASSES as u64
    }

    /// Whether `va` falls inside the reserved region — the MMU's check
    /// against the MRS/MRE register pair.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.mrs && va < self.mre
    }

    /// Start of the slice assigned to `class`.
    pub fn class_base(&self, class: SizeClass) -> VirtAddr {
        self.mrs.add(self.slice_bytes() * class.index() as u64)
    }

    /// Maximum number of arenas a slice can hold for `class`.
    pub fn arenas_per_class(&self, class: SizeClass) -> u64 {
        self.slice_bytes() / class.arena_bytes() as u64
    }

    /// Base address of the `n`-th arena of `class`.
    pub fn arena_at(&self, class: SizeClass, n: u64) -> VirtAddr {
        self.class_base(class).add(n * class.arena_bytes() as u64)
    }

    /// Decomposes an object address into (class, arena base, object index) —
    /// the pure bit/divide arithmetic the hardware performs on `obj-free`.
    /// Returns `None` when `va` lies outside the region or inside an arena
    /// header page.
    pub fn locate(&self, va: VirtAddr) -> Option<ObjectLocation> {
        if !self.contains(va) {
            return None;
        }
        let offset = va.offset_from(self.mrs);
        let slice = self.slice_bytes();
        let class = SizeClass::from_index((offset / slice) as usize);
        let class_offset = offset % slice;
        let arena_bytes = class.arena_bytes() as u64;
        let arena_index = class_offset / arena_bytes;
        let arena_base = self.arena_at(class, arena_index);
        let within = va.offset_from(arena_base);
        if within < PAGE_SIZE as u64 {
            return None; // header page, not an object
        }
        let body_offset = within - PAGE_SIZE as u64;
        let object_index = (body_offset / class.object_size() as u64) as usize;
        if object_index >= OBJECTS_PER_ARENA {
            return None; // body padding past the last object
        }
        Some(ObjectLocation {
            class,
            arena_base,
            object_index,
        })
    }

    /// Address of object `index` in the arena at `arena_base` of `class`.
    pub fn object_addr(&self, class: SizeClass, arena_base: VirtAddr, index: usize) -> VirtAddr {
        debug_assert!(index < OBJECTS_PER_ARENA);
        arena_base.add(PAGE_SIZE as u64 + (index * class.object_size()) as u64)
    }
}

impl fmt::Display for MementoRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memento-region[{}..{})", self.mrs, self.mre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> MementoRegion {
        MementoRegion::standard()
    }

    #[test]
    fn registers_and_bounds() {
        let r = region();
        assert_eq!(r.mrs(), VirtAddr::new(DEFAULT_REGION_BASE));
        assert_eq!(r.slice_bytes(), DEFAULT_CLASS_SLICE_BYTES);
        assert!(r.contains(r.mrs()));
        assert!(!r.contains(r.mre()));
        assert!(!r.contains(VirtAddr::new(0x1000)));
    }

    #[test]
    fn locate_roundtrips_every_class() {
        let r = region();
        for sc in SizeClass::all() {
            for arena_n in [0u64, 1, 7] {
                let base = r.arena_at(sc, arena_n);
                for idx in [0usize, 1, 128, 255] {
                    let addr = r.object_addr(sc, base, idx);
                    let loc = r.locate(addr).unwrap_or_else(|| {
                        panic!("locate failed for {sc} arena {arena_n} obj {idx}")
                    });
                    assert_eq!(loc.class, sc);
                    assert_eq!(loc.arena_base, base);
                    assert_eq!(loc.object_index, idx);
                }
            }
        }
    }

    #[test]
    fn locate_interior_bytes_of_object() {
        let r = region();
        let sc = SizeClass::for_size(64).unwrap();
        let base = r.arena_at(sc, 3);
        let addr = r.object_addr(sc, base, 10).add(17);
        let loc = r.locate(addr).unwrap();
        assert_eq!(loc.object_index, 10);
    }

    #[test]
    fn header_page_is_not_an_object() {
        let r = region();
        let sc = SizeClass::for_size(8).unwrap();
        let base = r.arena_at(sc, 0);
        assert_eq!(r.locate(base), None);
        assert_eq!(r.locate(base.add(4095)), None);
        assert!(r.locate(base.add(4096)).is_some());
    }

    #[test]
    fn outside_region_is_none() {
        let r = region();
        assert_eq!(r.locate(VirtAddr::new(0x1234)), None);
        assert_eq!(r.locate(r.mre()), None);
    }

    #[test]
    fn slices_do_not_overlap() {
        let r = region();
        for i in 0..NUM_SIZE_CLASSES - 1 {
            let a = SizeClass::from_index(i);
            let b = SizeClass::from_index(i + 1);
            assert!(r.class_base(a) < r.class_base(b));
            let last = r.arena_at(a, r.arenas_per_class(a) - 1);
            assert!(last.add(a.arena_bytes() as u64) <= r.class_base(b));
        }
    }

    #[test]
    fn arenas_per_class_positive() {
        let r = region();
        for sc in SizeClass::all() {
            assert!(r.arenas_per_class(sc) >= 1000, "{sc} has plenty of arenas");
        }
    }
}
