//! The Memento hardware page allocator (paper §3.2).
//!
//! Lives at the memory controller and has two responsibilities:
//!
//! 1. **Arena virtual addresses** — per-core, per-size-class bump pointers,
//!    cached in the Arena Allocation Cache (AAC), hand out fresh arena VAs
//!    from the reserved region.
//! 2. **Physical backing** — a small pool of physical pages (replenished by
//!    the OS through the [`PoolBackend`] trait) backs the first page of each
//!    new arena eagerly and the rest on first access, by constructing the
//!    *Memento page table* (rooted at the `MPTR` register) during page walks.
//!
//! Arena frees walk the Memento page table, reclaim frames into the pool,
//! and trigger TLB shootdowns to cores recorded in the per-process
//! shootdown bit vector.

use crate::costs::MementoCosts;
use crate::region::MementoRegion;
use crate::size_class::SizeClass;
use memento_cache::{AccessKind, MemSystem};
use memento_simcore::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_simcore::stats::HitMiss;
use memento_vm::pagetable::{PageTable, Pte, PtePerms};
use std::collections::BTreeSet;
use std::fmt;

/// The pool ran dry for the requesting core — either no idle frames remain
/// and the OS backend granted nothing (memory pressure or outright refusal),
/// or every remaining idle frame is earmarked for a sibling core via
/// [`HardwarePageAllocator::reserve_frames`]. Typed so the system layer can
/// surface the failure through device statistics instead of a hardware
/// panic, and carries the core so multicore runs can attribute exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Core whose frame request could not be served.
    pub core: usize,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memento page pool exhausted on core {} and the OS granted no frames",
            self.core
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// Source of physical frames for the pool — implemented by the OS adapter
/// in `memento-system` (the kernel buddy allocator tagged `MementoPool`).
pub trait PoolBackend {
    /// Grants up to `n` frames; returning fewer (or none) models memory
    /// pressure.
    fn grant_frames(&mut self, n: u64) -> Vec<Frame>;

    /// Accepts frames back (process teardown or pool overflow).
    fn accept_frames(&mut self, frames: &[Frame]);
}

/// Configuration of the hardware page allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageAllocatorConfig {
    /// Pool refill batch size (frames requested per OS grant).
    pub refill_batch: u64,
    /// Refill when the pool drops below this many frames.
    pub low_water: usize,
    /// Return surplus frames to the OS when arena reclamation grows the
    /// pool above this level (high-water overflow return). Keeps the pool
    /// "small" (§3.2) even when a burst of arena frees reclaims many pages.
    pub high_water: usize,
    /// AAC entries (paper Table 3: 32, direct-mapped by core ID).
    pub aac_entries: usize,
    /// Size-class pointer slots per AAC entry.
    pub aac_slots: usize,
}

impl PageAllocatorConfig {
    /// Paper defaults. The pool is deliberately small ("a small pool of
    /// physical pages", §3.2): refills are cheap and batching larger than
    /// this only inflates resident memory.
    pub fn paper_default() -> Self {
        PageAllocatorConfig {
            refill_batch: 16,
            low_water: 4,
            high_water: 64,
            aac_entries: 32,
            aac_slots: 8,
        }
    }
}

impl Default for PageAllocatorConfig {
    fn default() -> Self {
        PageAllocatorConfig::paper_default()
    }
}

/// Page-allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageAllocStats {
    /// AAC lookups.
    pub aac: HitMiss,
    /// Arenas handed to the object allocator.
    pub arenas_allocated: u64,
    /// Arenas reclaimed.
    pub arenas_freed: u64,
    /// Data pages backed (eager header pages + demand-populated body pages).
    pub data_pages_backed: u64,
    /// Memento page-table pages allocated.
    pub table_pages_allocated: u64,
    /// OS pool refills.
    pub pool_refills: u64,
    /// Frames granted fresh by the OS backend.
    pub frames_granted: u64,
    /// Frames reclaimed from freed arenas back into the pool (warm reuse).
    pub frames_recycled: u64,
    /// Frames handed back to the OS (high-water overflow + detach).
    pub frames_returned: u64,
    /// High-water overflow returns performed.
    pub pool_overflows: u64,
    /// Frame requests that failed because the pool was dry and the OS
    /// granted nothing.
    pub pool_exhausted: u64,
    /// Demand walks served (with or without population).
    pub demand_walks: u64,
    /// TLB shootdowns delivered (core-deliveries).
    pub shootdowns_sent: u64,
}

impl PageAllocStats {
    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: PageAllocStats) -> PageAllocStats {
        PageAllocStats {
            aac: self.aac.delta(earlier.aac),
            arenas_allocated: self.arenas_allocated - earlier.arenas_allocated,
            arenas_freed: self.arenas_freed - earlier.arenas_freed,
            data_pages_backed: self.data_pages_backed - earlier.data_pages_backed,
            table_pages_allocated: self.table_pages_allocated - earlier.table_pages_allocated,
            pool_refills: self.pool_refills - earlier.pool_refills,
            frames_granted: self.frames_granted - earlier.frames_granted,
            frames_recycled: self.frames_recycled - earlier.frames_recycled,
            frames_returned: self.frames_returned - earlier.frames_returned,
            pool_overflows: self.pool_overflows - earlier.pool_overflows,
            pool_exhausted: self.pool_exhausted - earlier.pool_exhausted,
            demand_walks: self.demand_walks - earlier.demand_walks,
            shootdowns_sent: self.shootdowns_sent - earlier.shootdowns_sent,
        }
    }
}

/// Per-process paging state owned by the hardware page allocator:
/// the reserved region (MRS/MRE), the Memento page table (MPTR), per-core
/// bump pointers, and the shootdown bit vector.
#[derive(Debug)]
pub struct ProcessPaging {
    /// The reserved region (MRS/MRE register values).
    pub region: MementoRegion,
    /// The hardware-managed Memento page table (MPTR points at its root).
    pub page_table: PageTable,
    /// Next arena index per (core, class).
    bump: Vec<[u64; 64]>,
    /// Cores that have issued walks on this address space (shootdown
    /// targets, paper §3.2).
    pub walker_cores: u64,
    /// Every pool frame currently backing this process (data + tables),
    /// for batch teardown. Ordered so teardown releases frames in a
    /// deterministic order regardless of allocation history.
    in_use: BTreeSet<u64>,
}

impl ProcessPaging {
    /// Frames currently backing the process (data + Memento tables).
    pub fn frames_in_use(&self) -> usize {
        self.in_use.len()
    }

    /// Next arena index the AAC would hand out for `(core, class)` — the
    /// bump-pointer value the sanitizer audits against its install count.
    pub fn bump_for(&self, core: usize, class: SizeClass) -> u64 {
        self.bump[core][class.index()]
    }
}

/// Result of an arena allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaAllocation {
    /// Base VA of the new arena.
    pub va: VirtAddr,
    /// Physical address of the (eagerly backed) header page.
    pub header_pa: PhysAddr,
    /// Cycles spent.
    pub cycles: Cycles,
}

/// Result of a demand walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandWalk {
    /// The frame now backing the page.
    pub frame: Frame,
    /// Cycles spent (entry reads/writes + populate control).
    pub cycles: Cycles,
    /// Pages newly allocated during this walk (0 when already mapped).
    pub pages_allocated: u64,
}

/// Result of an arena free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaFree {
    /// Cycles spent walking and reclaiming.
    pub cycles: Cycles,
    /// Virtual pages that were unmapped (TLB shootdown targets).
    pub unmapped_pages: Vec<VirtAddr>,
    /// Bit vector of cores that must receive shootdowns.
    pub shootdown_cores: u64,
}

#[derive(Clone, Debug, Default)]
struct AacEntry {
    /// Most-recently-used class indices cached in this entry.
    classes: Vec<u8>,
}

/// Physical-page lifecycle audit snapshot: cumulative flow counters plus
/// the two current levels. At every quiescent point the flows and levels
/// must balance: `granted - returned == pool_len + mapped` (every frame
/// the OS ever granted is either idle in the pool, mapped into a process,
/// or was handed back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolAudit {
    /// Frames ever granted fresh by the OS backend.
    pub granted: u64,
    /// Frames reclaimed from freed arenas back into the pool.
    pub recycled: u64,
    /// Frames handed back to the OS (overflow return + detach).
    pub returned: u64,
    /// Frames currently idle in the pool.
    pub pool_len: u64,
    /// Frames currently mapped into processes (data + Memento tables).
    pub mapped: u64,
}

impl PoolAudit {
    /// True when the lifecycle flows and levels balance.
    pub fn conserved(&self) -> bool {
        self.granted - self.returned == self.pool_len + self.mapped
    }
}

/// The hardware page allocator.
pub struct HardwarePageAllocator {
    cfg: PageAllocatorConfig,
    costs: MementoCosts,
    pool: Vec<Frame>,
    aac: Vec<AacEntry>,
    /// Reserved memory block holding the full pointer table (AAC backing
    /// store); misses touch it through the cache hierarchy.
    pointer_block: PhysAddr,
    /// Frames currently mapped into processes (level, not a counter):
    /// incremented per frame taken from the pool, decremented on
    /// reclamation and detach.
    frames_mapped: u64,
    /// Peak of `frames_mapped` since the last window reset (one
    /// invocation's data footprint, free pool staging excluded).
    window_peak_mapped: u64,
    /// Per-core earmarks over the shared pool ([`Self::reserve_frames`]):
    /// `claims[c]` idle frames are promised to core `c` and off-limits to
    /// siblings. Bookkeeping only — the pool itself stays one LIFO stack,
    /// so with no reservations frame hand-out order (and therefore every
    /// downstream physical address) is identical to an unpartitioned pool.
    claims: Vec<u64>,
    stats: PageAllocStats,
}

impl HardwarePageAllocator {
    /// Creates the allocator; `pointer_block` is a physical scratch area
    /// (one boot frame) backing the AAC.
    pub fn new(cfg: PageAllocatorConfig, costs: MementoCosts, pointer_block: PhysAddr) -> Self {
        HardwarePageAllocator {
            aac: vec![AacEntry::default(); cfg.aac_entries],
            cfg,
            costs,
            pool: Vec::new(),
            pointer_block,
            frames_mapped: 0,
            window_peak_mapped: 0,
            claims: Vec::new(),
            stats: PageAllocStats::default(),
        }
    }

    /// Earmarks up to `n` idle pool frames for `core`: sibling cores'
    /// frame requests treat earmarked frames as unavailable and fail with
    /// a per-core typed [`PoolExhausted`] even while the pool still holds
    /// free frames. A core's own requests consume its earmarks first.
    /// Returns the number of frames actually earmarked (bounded by idle
    /// frames not already claimed). With no reservations outstanding the
    /// allocator behaves exactly as an unpartitioned shared pool.
    pub fn reserve_frames(&mut self, core: usize, n: u64) -> u64 {
        if self.claims.len() <= core {
            self.claims.resize(core + 1, 0);
        }
        let claimed: u64 = self.claims.iter().sum();
        let free = (self.pool.len() as u64).saturating_sub(claimed);
        let add = n.min(free);
        self.claims[core] += add;
        add
    }

    /// Frames currently earmarked for `core` by [`Self::reserve_frames`].
    pub fn reserved_for(&self, core: usize) -> u64 {
        self.claims.get(core).copied().unwrap_or(0)
    }

    /// Restarts the mapped-frames peak window at the current level.
    pub fn reset_window(&mut self) {
        self.window_peak_mapped = self.frames_mapped;
    }

    /// Peak frames mapped into processes since the last window reset.
    pub fn window_peak_mapped(&self) -> u64 {
        self.window_peak_mapped
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PageAllocStats {
        self.stats
    }

    /// Frames currently held in the pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Lifecycle audit snapshot (see [`PoolAudit`]).
    pub fn pool_audit(&self) -> PoolAudit {
        PoolAudit {
            granted: self.stats.frames_granted,
            recycled: self.stats.frames_recycled,
            returned: self.stats.frames_returned,
            pool_len: self.pool.len() as u64,
            mapped: self.frames_mapped,
        }
    }

    /// Initializes paging state for a process over `region`, taking the
    /// Memento page-table root from the pool.
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when the pool is dry and the OS grants nothing.
    pub fn attach_process(
        &mut self,
        mem: &mut PhysMem,
        backend: &mut dyn PoolBackend,
        cores: usize,
        region: MementoRegion,
    ) -> Result<ProcessPaging, PoolExhausted> {
        // The page-table root is grabbed on the attach path, attributed to
        // the boot core (core 0) — attach runs before any invocation is
        // scheduled, so per-core earmarks cannot apply yet.
        let root = self.take_frame(backend, 0)?;
        mem.zero_frame(root);
        let mut in_use = BTreeSet::new();
        in_use.insert(root.number());
        Ok(ProcessPaging {
            region,
            page_table: PageTable::with_root(root),
            bump: vec![[0u64; 64]; cores],
            walker_cores: 0,
            in_use,
        })
    }

    /// Tears down a process: returns every backing frame (and the pool's
    /// reusable frames stay pooled). This is the hardware analogue of the
    /// OS batch-freeing a function's memory at exit.
    pub fn detach_process(
        &mut self,
        mem: &mut PhysMem,
        backend: &mut dyn PoolBackend,
        proc: ProcessPaging,
    ) {
        let frames: Vec<Frame> = proc.in_use.iter().map(|n| Frame::from_number(*n)).collect();
        for f in &frames {
            mem.release_frame(*f);
        }
        debug_assert!(self.frames_mapped >= frames.len() as u64);
        self.frames_mapped -= frames.len() as u64;
        self.stats.frames_returned += frames.len() as u64;
        backend.accept_frames(&frames);
    }

    /// Hands the pool's idle reserve above `keep` frames back to the OS —
    /// the keep-alive "park" path. Pool frames back no mapping (they are
    /// recycled free pages staged for the next invocation), so the return
    /// is pure bookkeeping: no page-table walk, no TLB shootdown. The next
    /// invocation re-grants lazily through the normal low-water refill.
    /// Returns the number of frames shed.
    pub fn shed_pool(&mut self, backend: &mut dyn PoolBackend, keep: usize) -> u64 {
        if self.pool.len() <= keep {
            return 0;
        }
        let surplus = self.pool.split_off(keep);
        self.stats.frames_returned += surplus.len() as u64;
        backend.accept_frames(&surplus);
        surplus.len() as u64
    }

    fn take_frame(
        &mut self,
        backend: &mut dyn PoolBackend,
        core: usize,
    ) -> Result<Frame, PoolExhausted> {
        if self.pool.len() <= self.cfg.low_water {
            let granted = backend.grant_frames(self.cfg.refill_batch);
            if !granted.is_empty() {
                self.stats.pool_refills += 1;
                self.stats.frames_granted += granted.len() as u64;
            }
            self.pool.extend(granted);
        }
        // Frames earmarked for sibling cores are off-limits: `core` may
        // only draw from the unreserved remainder (its own earmarks count
        // toward what it may take, and taking consumes one). With no
        // reservations this reduces to the plain pool-empty check.
        let reserved_elsewhere: u64 = self
            .claims
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != core)
            .map(|(_, &n)| n)
            .sum();
        if self.pool.len() as u64 <= reserved_elsewhere {
            self.stats.pool_exhausted += 1;
            return Err(PoolExhausted { core });
        }
        if let Some(claim) = self.claims.get_mut(core) {
            *claim = claim.saturating_sub(1);
        }
        match self.pool.pop() {
            Some(f) => {
                self.frames_mapped += 1;
                self.window_peak_mapped = self.window_peak_mapped.max(self.frames_mapped);
                Ok(f)
            }
            None => {
                self.stats.pool_exhausted += 1;
                Err(PoolExhausted { core })
            }
        }
    }

    /// AAC lookup for (core, class); charges 1 cycle on a hit, a memory
    /// access to the pointer block on a miss.
    fn aac_access(&mut self, mem_sys: &mut MemSystem, core: usize, class: SizeClass) -> Cycles {
        let entry = &mut self.aac[core % self.cfg.aac_entries];
        let class_id = class.index() as u8;
        if let Some(pos) = entry.classes.iter().position(|c| *c == class_id) {
            // Move to MRU position.
            let c = entry.classes.remove(pos);
            entry.classes.push(c);
            self.stats.aac.hit();
            return Cycles::new(self.costs.aac_hit);
        }
        self.stats.aac.miss();
        entry.classes.push(class_id);
        let slots = self.cfg.aac_slots;
        if entry.classes.len() > slots {
            entry.classes.remove(0);
        }
        // Fetch the pointer line from the reserved block.
        let offset = ((core * 64 + class.index()) * 8) as u64 % PAGE_SIZE as u64;
        let addr = self.pointer_block.add(offset & !0x7);
        Cycles::new(self.costs.aac_hit) + mem_sys.access(core, AccessKind::Read, addr).cycles
    }

    /// Backs `va` with a pool frame in the Memento page table, creating
    /// intermediate tables (also from the pool) as needed. Returns the leaf
    /// frame, charged cycles, and pages consumed.
    fn populate_page(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut ProcessPaging,
        va: VirtAddr,
    ) -> Result<(Frame, Cycles, u64), PoolExhausted> {
        let mut cycles = Cycles::ZERO;
        let mut allocated = 0u64;
        let mut table = proc.page_table.root();
        for level in (0..=3u8).rev() {
            let entry_addr = table.base_addr().add(va.pt_index(level) as u64 * 8);
            cycles += mem_sys.access(core, AccessKind::Read, entry_addr).cycles;
            let pte = Pte::from_raw(mem.read_u64(entry_addr));
            if level == 0 {
                if pte.present() {
                    return Ok((pte.frame(), cycles, allocated));
                }
                let frame = self.take_frame(backend, core)?;
                mem.zero_frame(frame);
                proc.in_use.insert(frame.number());
                mem.write_u64(entry_addr, Pte::leaf(frame, PtePerms::rw()).raw());
                cycles += mem_sys.access(core, AccessKind::Write, entry_addr).cycles;
                cycles += Cycles::new(self.costs.walk_populate_step);
                self.stats.data_pages_backed += 1;
                allocated += 1;
                return Ok((frame, cycles, allocated));
            }
            table = if pte.present() {
                pte.frame()
            } else {
                let new_table = self.take_frame(backend, core)?;
                mem.zero_frame(new_table);
                proc.in_use.insert(new_table.number());
                mem.write_u64(entry_addr, Pte::table(new_table).raw());
                proc.page_table.note_external_table();
                cycles += mem_sys.access(core, AccessKind::Write, entry_addr).cycles;
                cycles += Cycles::new(self.costs.walk_populate_step);
                self.stats.table_pages_allocated += 1;
                allocated += 1;
                new_table
            };
        }
        // lint:allow(panic-in-lib): the level loop runs 3..=0 and level 0 always returns
        unreachable!("walk terminates at level 0");
    }

    /// Allocates a new arena of `class` for `core`: bumps the VA pointer
    /// (via the AAC) and eagerly backs the header page.
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when the pool is dry and the OS grants nothing.
    ///
    /// # Panics
    ///
    /// Panics if the class slice is exhausted (≫ any modeled workload).
    pub fn alloc_arena(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut ProcessPaging,
        class: SizeClass,
    ) -> Result<ArenaAllocation, PoolExhausted> {
        let mut cycles = Cycles::new(self.costs.arena_alloc_base);
        cycles += self.aac_access(mem_sys, core, class);

        // Interleave per-core arena allocations within the class slice so
        // different cores never hand out the same VA: arena index advances
        // by `cores` with offset `core`.
        let cores = proc.bump.len() as u64;
        let n = proc.bump[core][class.index()];
        proc.bump[core][class.index()] += 1;
        let arena_index = n * cores + core as u64;
        assert!(
            arena_index < proc.region.arenas_per_class(class),
            "class slice exhausted for {class}"
        );
        let va = proc.region.arena_at(class, arena_index);

        let (frame, c, _) = self.populate_page(mem, mem_sys, backend, core, proc, va)?;
        cycles += c;
        self.stats.arenas_allocated += 1;
        Ok(ArenaAllocation {
            va,
            header_pa: frame.base_addr(),
            cycles,
        })
    }

    /// Serves a marked page-walk request for `va` (a TLB miss inside the
    /// Memento region): populates missing levels on demand. Never faults.
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when the pool is dry and the OS grants nothing.
    pub fn demand_walk(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut ProcessPaging,
        va: VirtAddr,
    ) -> Result<DemandWalk, PoolExhausted> {
        debug_assert!(proc.region.contains(va), "walk outside Memento region");
        self.stats.demand_walks += 1;
        proc.walker_cores |= 1 << core;
        let page = va.page_base();
        let (frame, cycles, pages_allocated) =
            self.populate_page(mem, mem_sys, backend, core, proc, page)?;
        Ok(DemandWalk {
            frame,
            cycles,
            pages_allocated,
        })
    }

    /// Frees the arena at `arena_base`: walks the Memento table, reclaims
    /// frames into the pool, invalidates entries, and reports the pages and
    /// cores needing shootdowns. Surplus frames above the configured
    /// high-water mark are returned to the OS backend.
    #[allow(clippy::too_many_arguments)]
    pub fn free_arena(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut ProcessPaging,
        class: SizeClass,
        arena_base: VirtAddr,
    ) -> ArenaFree {
        let mut cycles = Cycles::new(self.costs.arena_free_base);
        let mut unmapped = Vec::new();
        let mut reclaimed = 0u64;
        for i in 0..class.arena_pages() as u64 {
            let va = arena_base.add(i * PAGE_SIZE as u64);
            if let Some(t) = proc.page_table.translate(mem, va) {
                cycles += mem_sys.access(core, AccessKind::Write, t.pte_addr).cycles;
                let res = proc.page_table.unmap(mem, va);
                if let Some(frame) = res.leaf_frame {
                    mem.release_frame(frame);
                    proc.in_use.remove(&frame.number());
                    self.pool.push(frame);
                    reclaimed += 1;
                    unmapped.push(va);
                }
                for table in res.freed_tables {
                    mem.release_frame(table);
                    proc.in_use.remove(&table.number());
                    self.pool.push(table);
                    reclaimed += 1;
                }
            }
        }
        debug_assert!(self.frames_mapped >= reclaimed);
        self.frames_mapped -= reclaimed;
        self.stats.frames_recycled += reclaimed;
        // High-water overflow: arena reclamation can grow the pool well
        // beyond what refills ever would; return the surplus so the pool
        // stays small and the OS regains the memory mid-run.
        if self.pool.len() > self.cfg.high_water {
            let surplus = self.pool.split_off(self.cfg.high_water);
            self.stats.frames_returned += surplus.len() as u64;
            self.stats.pool_overflows += 1;
            backend.accept_frames(&surplus);
        }
        let shootdown_cores = proc.walker_cores;
        let ncores = shootdown_cores.count_ones() as u64;
        cycles += Cycles::new(self.costs.shootdown_per_core * ncores);
        self.stats.shootdowns_sent += ncores * unmapped.len() as u64;
        self.stats.arenas_freed += 1;
        ArenaFree {
            cycles,
            unmapped_pages: unmapped,
            shootdown_cores,
        }
    }
}

impl std::fmt::Debug for HardwarePageAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HardwarePageAllocator")
            .field("pool_len", &self.pool.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_cache::MemSystemConfig;

    /// Trivial backend over a bump counter.
    struct TestBackend {
        next: u64,
        limit: u64,
        returned: Vec<Frame>,
    }

    impl TestBackend {
        fn new() -> Self {
            TestBackend {
                next: 1000,
                limit: 100_000,
                returned: Vec::new(),
            }
        }
    }

    impl PoolBackend for TestBackend {
        fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
            let take = n.min(self.limit.saturating_sub(self.next));
            let out = (self.next..self.next + take)
                .map(Frame::from_number)
                .collect();
            self.next += take;
            out
        }

        fn accept_frames(&mut self, frames: &[Frame]) {
            self.returned.extend_from_slice(frames);
        }
    }

    struct Rig {
        mem: PhysMem,
        sys: MemSystem,
        backend: TestBackend,
        alloc: HardwarePageAllocator,
        proc: ProcessPaging,
    }

    fn rig() -> Rig {
        let mut mem = PhysMem::new(1 << 30);
        let ptr_block = mem.alloc_frame().unwrap().base_addr();
        let mut alloc = HardwarePageAllocator::new(
            PageAllocatorConfig::paper_default(),
            MementoCosts::calibrated(),
            ptr_block,
        );
        let mut backend = TestBackend::new();
        let proc = alloc
            .attach_process(&mut mem, &mut backend, 1, MementoRegion::standard())
            .expect("attach with granting backend");
        Rig {
            mem,
            sys: MemSystem::new(MemSystemConfig::paper_default(1)),
            backend,
            alloc,
            proc,
        }
    }

    #[test]
    fn arena_allocation_backs_header_only() {
        let mut r = rig();
        let sc = SizeClass::for_size(64).unwrap();
        let a = r
            .alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        assert_eq!(a.va, r.proc.region.arena_at(sc, 0));
        // Header page mapped.
        assert!(r.proc.page_table.translate(&r.mem, a.va).is_some());
        // Body pages NOT mapped yet.
        assert!(r
            .proc
            .page_table
            .translate(&r.mem, a.va.add(PAGE_SIZE as u64))
            .is_none());
        assert_eq!(r.alloc.stats().arenas_allocated, 1);
        assert_eq!(r.alloc.stats().data_pages_backed, 1);
    }

    #[test]
    fn successive_arenas_advance_bump_pointer() {
        let mut r = rig();
        let sc = SizeClass::for_size(8).unwrap();
        let a0 = r
            .alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        let a1 = r
            .alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        assert_eq!(a1.va.offset_from(a0.va), sc.arena_bytes() as u64);
    }

    #[test]
    fn demand_walk_populates_once() {
        let mut r = rig();
        let sc = SizeClass::for_size(256).unwrap();
        let a = r
            .alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        let body = a.va.add(PAGE_SIZE as u64);
        let w1 = r
            .alloc
            .demand_walk(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, body)
            .expect("walk");
        assert_eq!(
            w1.pages_allocated, 1,
            "leaf allocated, tables shared with header"
        );
        let w2 = r
            .alloc
            .demand_walk(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, body)
            .expect("walk");
        assert_eq!(w2.pages_allocated, 0);
        assert_eq!(w2.frame, w1.frame);
        assert!(w2.cycles <= w1.cycles);
        assert_eq!(r.proc.walker_cores, 1);
    }

    #[test]
    fn aac_hits_after_first_use() {
        let mut r = rig();
        let sc = SizeClass::for_size(8).unwrap();
        for _ in 0..3 {
            r.alloc
                .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
                .expect("arena");
        }
        let s = r.alloc.stats();
        assert_eq!(s.aac.misses, 1);
        assert_eq!(s.aac.hits, 2);
    }

    #[test]
    fn free_arena_reclaims_into_pool() {
        let mut r = rig();
        let sc = SizeClass::for_size(128).unwrap();
        let a = r
            .alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        // Touch two body pages.
        for page in 1..3u64 {
            r.alloc
                .demand_walk(
                    &mut r.mem,
                    &mut r.sys,
                    &mut r.backend,
                    0,
                    &mut r.proc,
                    a.va.add(page * PAGE_SIZE as u64),
                )
                .expect("walk");
        }
        let pool_before = r.alloc.pool_len();
        let freed = r.alloc.free_arena(
            &mut r.mem,
            &mut r.sys,
            &mut r.backend,
            0,
            &mut r.proc,
            sc,
            a.va,
        );
        assert_eq!(freed.unmapped_pages.len(), 3, "header + 2 body pages");
        assert!(r.alloc.pool_len() >= pool_before + 3);
        assert_eq!(freed.shootdown_cores, 1);
        assert!(r.proc.page_table.translate(&r.mem, a.va).is_none());
        assert_eq!(r.alloc.stats().arenas_freed, 1);
    }

    #[test]
    fn detach_returns_all_frames() {
        let mut r = rig();
        let sc = SizeClass::for_size(64).unwrap();
        r.alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        let used = r.proc.frames_in_use();
        assert!(used >= 2, "root + tables + header");
        let proc = r.proc;
        r.alloc.detach_process(&mut r.mem, &mut r.backend, proc);
        assert_eq!(r.backend.returned.len(), used);
    }

    #[test]
    fn pool_refills_in_batches() {
        let mut r = rig();
        let refills_initial = r.alloc.stats().pool_refills;
        let sc = SizeClass::for_size(8).unwrap();
        // Burn through more than one batch of pool frames.
        for _ in 0..200 {
            let a = r
                .alloc
                .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
                .expect("arena");
            r.alloc
                .demand_walk(
                    &mut r.mem,
                    &mut r.sys,
                    &mut r.backend,
                    0,
                    &mut r.proc,
                    a.va.add(PAGE_SIZE as u64),
                )
                .expect("walk");
        }
        assert!(r.alloc.stats().pool_refills > refills_initial);
    }

    #[test]
    fn zero_grant_backend_surfaces_typed_exhaustion() {
        let mut r = rig();
        r.backend.limit = r.backend.next; // OS refuses every further grant
        let sc = SizeClass::for_size(8).unwrap();
        // Drain the pool; each allocation consumes frames until the pool
        // and the refusing backend both come up empty.
        let err = loop {
            match r
                .alloc
                .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err, PoolExhausted { core: 0 });
        assert!(r.alloc.stats().pool_exhausted > 0);
        assert_eq!(r.alloc.pool_len(), 0);
    }

    #[test]
    fn reservation_starves_sibling_while_frames_remain() {
        let mut mem = PhysMem::new(1 << 30);
        let ptr_block = mem.alloc_frame().unwrap().base_addr();
        let mut alloc = HardwarePageAllocator::new(
            PageAllocatorConfig::paper_default(),
            MementoCosts::calibrated(),
            ptr_block,
        );
        let mut backend = TestBackend::new();
        let mut proc = alloc
            .attach_process(&mut mem, &mut backend, 2, MementoRegion::standard())
            .expect("attach");
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(2));
        backend.limit = backend.next; // OS refuses every further grant
        let idle = alloc.pool_len() as u64;
        assert!(idle > 0, "attach refill leaves idle frames");
        // Core 1 earmarks every idle frame; core 0 must fail typed and
        // per-core even though the pool is visibly non-empty.
        assert_eq!(alloc.reserve_frames(1, idle + 10), idle);
        let sc = SizeClass::for_size(8).unwrap();
        let err = alloc
            .alloc_arena(&mut mem, &mut sys, &mut backend, 0, &mut proc, sc)
            .expect_err("core 0 must starve");
        assert_eq!(err, PoolExhausted { core: 0 });
        assert_eq!(alloc.pool_len() as u64, idle, "no frame was consumed");
        // Core 1 still allocates from its own earmarked frames.
        let before = alloc.reserved_for(1);
        alloc
            .alloc_arena(&mut mem, &mut sys, &mut backend, 1, &mut proc, sc)
            .expect("core 1 draws on its reservation");
        assert!(alloc.reserved_for(1) < before, "earmarks were consumed");
    }

    #[test]
    fn no_reservations_is_an_unpartitioned_pool() {
        let mut r = rig();
        assert_eq!(r.alloc.reserved_for(0), 0);
        assert_eq!(r.alloc.reserved_for(7), 0);
        let sc = SizeClass::for_size(8).unwrap();
        // A long allocation run with zero claims must never trip the
        // per-core starvation path (pool_exhausted stays zero).
        for _ in 0..50 {
            r.alloc
                .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
                .expect("arena");
        }
        assert_eq!(r.alloc.stats().pool_exhausted, 0);
    }

    #[test]
    fn overflow_returns_surplus_above_high_water() {
        let mut mem = PhysMem::new(1 << 30);
        let ptr_block = mem.alloc_frame().unwrap().base_addr();
        let cfg = PageAllocatorConfig {
            high_water: 4,
            ..PageAllocatorConfig::paper_default()
        };
        let mut alloc = HardwarePageAllocator::new(cfg, MementoCosts::calibrated(), ptr_block);
        let mut backend = TestBackend::new();
        let mut proc = alloc
            .attach_process(&mut mem, &mut backend, 1, MementoRegion::standard())
            .expect("attach");
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        // Back a multi-page arena fully, then free it: reclamation must
        // push the pool above the tiny high-water mark and spill to the OS.
        let sc = SizeClass::for_size(128).unwrap();
        let a = alloc
            .alloc_arena(&mut mem, &mut sys, &mut backend, 0, &mut proc, sc)
            .expect("arena");
        for page in 1..sc.arena_pages() as u64 {
            alloc
                .demand_walk(
                    &mut mem,
                    &mut sys,
                    &mut backend,
                    0,
                    &mut proc,
                    a.va.add(page * PAGE_SIZE as u64),
                )
                .expect("walk");
        }
        alloc.free_arena(&mut mem, &mut sys, &mut backend, 0, &mut proc, sc, a.va);
        assert!(alloc.stats().pool_overflows > 0, "overflow must trigger");
        assert!(!backend.returned.is_empty(), "surplus reached the OS");
        assert!(alloc.pool_len() <= 4, "pool trimmed to high water");
    }

    #[test]
    fn pool_audit_balances_across_lifecycle() {
        let mut r = rig();
        let sc = SizeClass::for_size(128).unwrap();
        assert!(r.alloc.pool_audit().conserved(), "after attach");
        let a = r
            .alloc
            .alloc_arena(&mut r.mem, &mut r.sys, &mut r.backend, 0, &mut r.proc, sc)
            .expect("arena");
        for page in 1..3u64 {
            r.alloc
                .demand_walk(
                    &mut r.mem,
                    &mut r.sys,
                    &mut r.backend,
                    0,
                    &mut r.proc,
                    a.va.add(page * PAGE_SIZE as u64),
                )
                .expect("walk");
        }
        assert!(r.alloc.pool_audit().conserved(), "after backing");
        r.alloc.free_arena(
            &mut r.mem,
            &mut r.sys,
            &mut r.backend,
            0,
            &mut r.proc,
            sc,
            a.va,
        );
        let audit = r.alloc.pool_audit();
        assert!(audit.conserved(), "after reclamation: {audit:?}");
        // Header + 2 body leaves, plus the page-table frames freed when the
        // arena's subtree emptied.
        assert!(audit.recycled >= 3, "leaves recycled: {audit:?}");
        let proc = r.proc;
        r.alloc.detach_process(&mut r.mem, &mut r.backend, proc);
        let audit = r.alloc.pool_audit();
        assert!(audit.conserved(), "after detach: {audit:?}");
        assert_eq!(audit.mapped, 0, "nothing mapped after detach");
    }

    #[test]
    fn per_core_arenas_do_not_collide() {
        let mut mem = PhysMem::new(1 << 30);
        let ptr_block = mem.alloc_frame().unwrap().base_addr();
        let mut alloc = HardwarePageAllocator::new(
            PageAllocatorConfig::paper_default(),
            MementoCosts::calibrated(),
            ptr_block,
        );
        let mut backend = TestBackend::new();
        let mut proc = alloc
            .attach_process(&mut mem, &mut backend, 4, MementoRegion::standard())
            .expect("attach");
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(4));
        let sc = SizeClass::for_size(8).unwrap();
        let mut seen = std::collections::HashSet::new();
        for core in 0..4usize {
            for _ in 0..5 {
                let a = alloc
                    .alloc_arena(&mut mem, &mut sys, &mut backend, core, &mut proc, sc)
                    .expect("arena");
                assert!(seen.insert(a.va.raw()), "duplicate arena VA across cores");
            }
        }
    }
}
