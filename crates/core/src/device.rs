//! The assembled Memento device: per-core HOTs + the shared hardware page
//! allocator, exposing the `obj-alloc` / `obj-free` ISA semantics (paper
//! Fig. 6) and the main-memory bypass check (§3.3).
//!
//! The device is pure hardware state; OS services (frame grants) come in
//! through [`PoolBackend`], and all memory-side work is charged through the
//! cache hierarchy passed into each operation.

use crate::arena::{raw, ArenaHeader};
use crate::costs::MementoCosts;
use crate::hot::{Hot, HotEntry, HotStats};
use crate::page_alloc::{
    HardwarePageAllocator, PageAllocStats, PageAllocatorConfig, PoolAudit, PoolBackend,
    PoolExhausted, ProcessPaging,
};
use crate::region::MementoRegion;
use crate::size_class::SizeClass;
use memento_cache::{AccessKind, MemSystem};
use memento_simcore::addr::{PhysAddr, VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE};
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::PhysMem;
use memento_vm::tlb::Tlb;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// `prev`-field sentinel marking an arena as *current* (cached in a HOT or
/// saved as a flushed current): such arenas are in no list and must not be
/// reclaimed out from under the table.
const CURRENT_SENTINEL: u64 = u64::MAX;

/// Device configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MementoConfig {
    /// Enable the main-memory bypass mechanism (§3.3).
    pub bypass_enabled: bool,
    /// Hide HOT-miss latency by eagerly replenishing the next arena (the
    /// optional optimization of §3.1); off by default.
    pub eager_replenish: bool,
    /// Page-allocator geometry.
    pub page_alloc: PageAllocatorConfig,
    /// Datapath latencies.
    pub costs: MementoCosts,
}

impl MementoConfig {
    /// Paper defaults (bypass on, eager replenish off).
    pub fn paper_default() -> Self {
        MementoConfig {
            bypass_enabled: true,
            eager_replenish: false,
            page_alloc: PageAllocatorConfig::paper_default(),
            costs: MementoCosts::calibrated(),
        }
    }
}

impl Default for MementoConfig {
    fn default() -> Self {
        MementoConfig::paper_default()
    }
}

/// Errors raised to software as exceptions (paper §4: double frees raise an
/// exception; out-of-range requests are not Memento's to serve).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MementoError {
    /// `obj-free` of an object whose bitmap bit is already clear.
    DoubleFree(VirtAddr),
    /// `obj-free` of an address outside the reserved region (software's
    /// allocator should handle it).
    NotMementoAddress(VirtAddr),
    /// `obj-alloc` of a size above 512 bytes (software path).
    SizeTooLarge(usize),
    /// The page pool ran dry for the requesting core and the OS backend
    /// granted no frames (or every idle frame is earmarked for a sibling).
    PoolExhausted {
        /// Core whose frame request could not be served.
        core: usize,
    },
}

impl fmt::Display for MementoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MementoError::DoubleFree(va) => write!(f, "double free of {va}"),
            MementoError::NotMementoAddress(va) => {
                write!(f, "{va} is outside the Memento region")
            }
            MementoError::SizeTooLarge(s) => write!(f, "size {s} exceeds 512 bytes"),
            MementoError::PoolExhausted { core } => {
                fmt::Display::fmt(&PoolExhausted { core: *core }, f)
            }
        }
    }
}

impl std::error::Error for MementoError {}

impl From<PoolExhausted> for MementoError {
    fn from(e: PoolExhausted) -> Self {
        MementoError::PoolExhausted { core: e.core }
    }
}

/// An arena-lifecycle event the device can log for external auditors (the
/// sanitizer's shadow heap). Logging is off by default and enabled with
/// [`MementoDevice::record_events`]; `obj-alloc`/`obj-free` themselves are
/// observed at the call site, so only events internal to the device — arena
/// handouts and reclamations — need a log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceEvent {
    /// The page allocator handed out a fresh arena and the object
    /// allocator installed it as `core`'s current arena for `class`.
    ArenaInstalled {
        /// Core whose HOT received the arena.
        core: usize,
        /// Size class served.
        class: SizeClass,
        /// Arena base VA.
        va: VirtAddr,
        /// Physical address of the (eagerly backed) header page.
        header_pa: PhysAddr,
    },
    /// An empty arena was unlinked and its pages returned to the pool.
    ArenaReclaimed {
        /// Core that executed the reclaiming `obj-free`.
        core: usize,
        /// Size class of the arena.
        class: SizeClass,
        /// Arena base VA.
        va: VirtAddr,
    },
    /// Cross-core coherence: `requester` needed exclusive access to an
    /// arena header that `owner`'s HOT still cached, so the owner's entry
    /// was written back (if dirty) and evicted — the hardware analogue of
    /// an invalidating coherence snoop on the header line.
    HeaderInvalidated {
        /// Core whose HOT entry was invalidated (the installing core).
        owner: usize,
        /// Core whose request triggered the invalidation.
        requester: usize,
        /// Size class of the arena.
        class: SizeClass,
        /// Arena base VA.
        va: VirtAddr,
        /// Physical address of the header page.
        header_pa: PhysAddr,
    },
    /// The container's Memento state was checkpointed to persistent
    /// memory and sealed under `epoch` (a park-to-PM transition).
    PmParked {
        /// The sealed checkpoint epoch.
        epoch: u64,
        /// Records in the sealed image.
        records: u64,
    },
    /// The container was restored from the sealed PM checkpoint `epoch`
    /// (a restore-from-PM transition).
    PmRestored {
        /// The epoch the restore replayed.
        epoch: u64,
    },
}

/// Saved per-(core, class) state spilled by a HOT flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SavedClass {
    /// PA of the flushed current arena header (0 = none).
    header_pa: u64,
    avail_head: u64,
    full_head: u64,
}

/// Per-process Memento state: paging plus spilled HOT state.
#[derive(Debug)]
pub struct MementoProcess {
    /// Paging state (region registers, MPTR table, bump pointers).
    pub paging: ProcessPaging,
    saved: HashMap<(usize, u8), SavedClass>,
}

impl MementoProcess {
    /// The process's reserved region.
    pub fn region(&self) -> MementoRegion {
        self.paging.region
    }
}

/// One live arena in a PM checkpoint capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmArenaState {
    /// Arena base VA.
    pub va: VirtAddr,
    /// Size class.
    pub class: SizeClass,
    /// Allocation bitmap (the HOT-cached copy for cached arenas).
    pub bitmap: [u64; 4],
    /// Physical address of the header page.
    pub header_pa: PhysAddr,
}

/// One valid HOT entry in a PM checkpoint capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmHotState {
    /// Core whose HOT caches the entry.
    pub core: usize,
    /// Size class (HOT slot).
    pub class: SizeClass,
    /// Arena base VA the entry caches.
    pub va: VirtAddr,
    /// Cached allocation bitmap (may be dirtier than memory).
    pub bitmap: [u64; 4],
    /// Physical address of the backing header page.
    pub header_pa: PhysAddr,
}

/// The device-visible Memento state of one process, captured for a
/// persistent checkpoint (see [`MementoDevice::pm_state`]). Everything is
/// deterministically ordered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PmState {
    /// Every live arena, ordered by base VA.
    pub arenas: Vec<PmArenaState>,
    /// Nonzero AAC bump pointers as `(core, class, next)`.
    pub bumps: Vec<(usize, SizeClass, u64)>,
    /// Valid HOT entries in the process's region, ordered by (core, class).
    pub hot: Vec<PmHotState>,
    /// Memento page-table mappings of live arena pages as `(va, pa)`.
    pub mappings: Vec<(VirtAddr, PhysAddr)>,
}

/// Result of `obj-alloc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocOutcome {
    /// Virtual address of the allocated object.
    pub addr: VirtAddr,
    /// Cycles in the hardware object allocator.
    pub obj_cycles: Cycles,
    /// Cycles in the hardware page allocator (arena handouts).
    pub page_cycles: Cycles,
    /// Whether the request hit in the HOT.
    pub hot_hit: bool,
}

/// Result of `obj-free`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeOutcome {
    /// Cycles in the hardware object allocator.
    pub obj_cycles: Cycles,
    /// Cycles in the hardware page allocator (arena reclamation).
    pub page_cycles: Cycles,
    /// Whether the free hit in the HOT.
    pub hot_hit: bool,
}

/// Object-allocator activity counters (drives Fig. 13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjStats {
    /// `obj-alloc` operations served.
    pub allocs: u64,
    /// `obj-free` operations served.
    pub frees: u64,
    /// Allocations that performed arena-list surgery.
    pub alloc_list_ops: u64,
    /// Frees that performed arena-list surgery.
    pub free_list_ops: u64,
    /// Arenas initialized (new arenas from the page allocator).
    pub arena_inits: u64,
    /// Lines whose first touch was served by main-memory bypass.
    pub bypass_grants: u64,
}

impl ObjStats {
    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: ObjStats) -> ObjStats {
        ObjStats {
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
            alloc_list_ops: self.alloc_list_ops - earlier.alloc_list_ops,
            free_list_ops: self.free_list_ops - earlier.free_list_ops,
            arena_inits: self.arena_inits - earlier.arena_inits,
            bypass_grants: self.bypass_grants - earlier.bypass_grants,
        }
    }
}

/// The Memento device (Fig. 7): per-core object allocators (HOTs) plus the
/// memory-controller page allocator.
pub struct MementoDevice {
    cfg: MementoConfig,
    hots: Vec<Hot>,
    page_alloc: HardwarePageAllocator,
    obj_stats: ObjStats,
    log_events: bool,
    events: Vec<DeviceEvent>,
}

impl MementoDevice {
    /// Builds a device for `cores` cores; `pointer_block` is the reserved
    /// physical scratch backing the AAC.
    pub fn new(cfg: MementoConfig, cores: usize, pointer_block: PhysAddr) -> Self {
        MementoDevice {
            hots: (0..cores).map(|_| Hot::new()).collect(),
            page_alloc: HardwarePageAllocator::new(cfg.page_alloc, cfg.costs, pointer_block),
            cfg,
            obj_stats: ObjStats::default(),
            log_events: false,
            events: Vec::new(),
        }
    }

    /// Turns arena-lifecycle event logging on or off (off by default; the
    /// sanitizer enables it for audited runs). Untimed instrumentation.
    pub fn record_events(&mut self, on: bool) {
        self.log_events = on;
        if !on {
            self.events.clear();
        }
    }

    /// Drains the logged events since the last call.
    pub fn take_events(&mut self) -> Vec<DeviceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Read access to `core`'s HOT (for auditors and tests).
    pub fn hot(&self, core: usize) -> &Hot {
        &self.hots[core]
    }

    /// Mutable access to `core`'s HOT — exists so corruption-injection
    /// tests can verify the sanitizer catches HOT incoherence; simulation
    /// code must go through `obj_alloc`/`obj_free`.
    pub fn hot_mut(&mut self, core: usize) -> &mut Hot {
        &mut self.hots[core]
    }

    /// The configuration in force.
    pub fn config(&self) -> &MementoConfig {
        &self.cfg
    }

    /// Per-core HOT statistics.
    pub fn hot_stats(&self, core: usize) -> HotStats {
        self.hots[core].stats()
    }

    /// HOT statistics merged over all cores.
    pub fn hot_stats_total(&self) -> HotStats {
        let mut total = HotStats::default();
        for hot in &self.hots {
            let s = hot.stats();
            total.alloc.merge(s.alloc);
            total.free.merge(s.free);
            total.flushed_entries += s.flushed_entries;
            total.flushes += s.flushes;
        }
        total
    }

    /// Page-allocator statistics.
    pub fn page_stats(&self) -> PageAllocStats {
        self.page_alloc.stats()
    }

    /// Frames currently idle in the page allocator's pool.
    pub fn pool_len(&self) -> usize {
        self.page_alloc.pool_len()
    }

    /// Physical-page lifecycle audit snapshot (see [`PoolAudit`]).
    pub fn pool_audit(&self) -> PoolAudit {
        self.page_alloc.pool_audit()
    }

    /// Earmarks up to `n` idle pool frames for `core`
    /// (see [`HardwarePageAllocator::reserve_frames`]). Returns the number
    /// actually earmarked.
    pub fn reserve_frames(&mut self, core: usize, n: u64) -> u64 {
        self.page_alloc.reserve_frames(core, n)
    }

    /// Frames currently earmarked for `core`.
    pub fn reserved_frames(&self, core: usize) -> u64 {
        self.page_alloc.reserved_for(core)
    }

    /// Keep-alive park: sheds the pool's idle reserve above `keep` frames
    /// back to the OS (see
    /// [`HardwarePageAllocator::shed_pool`]). Returns frames shed.
    pub fn shed_pool(&mut self, backend: &mut dyn PoolBackend, keep: usize) -> u64 {
        self.page_alloc.shed_pool(backend, keep)
    }

    /// Restarts the mapped-frames peak window at the current level.
    pub fn reset_window(&mut self) {
        self.page_alloc.reset_window();
    }

    /// Peak frames mapped into processes since the last window reset.
    pub fn window_peak_mapped(&self) -> u64 {
        self.page_alloc.window_peak_mapped()
    }

    /// Object-allocator statistics.
    pub fn obj_stats(&self) -> ObjStats {
        self.obj_stats
    }

    /// Attaches a process: reserves its region state and Memento page table.
    ///
    /// # Errors
    ///
    /// [`MementoError::PoolExhausted`] when the page-table root cannot be
    /// backed because the pool is dry and the OS grants nothing.
    pub fn attach_process(
        &mut self,
        mem: &mut PhysMem,
        backend: &mut dyn PoolBackend,
        region: MementoRegion,
    ) -> Result<MementoProcess, MementoError> {
        let cores = self.hots.len();
        Ok(MementoProcess {
            paging: self
                .page_alloc
                .attach_process(mem, backend, cores, region)?,
            saved: HashMap::new(),
        })
    }

    /// Detaches a process, returning every backing frame to the OS — the
    /// hardware side of batch-freeing a function's memory at exit.
    /// `cores` names the cores the process executed on: only their HOTs
    /// are scrubbed (regions are per-address-space, so another process on
    /// another core may legitimately use the same virtual range).
    pub fn detach_process(
        &mut self,
        mem: &mut PhysMem,
        backend: &mut dyn PoolBackend,
        proc: MementoProcess,
        cores: &[usize],
    ) {
        for core in cores {
            let hot = &mut self.hots[*core];
            for sc in SizeClass::all() {
                let e = hot.entry(sc);
                if e.valid && proc.paging.region.contains(e.header.va) {
                    hot.evict(sc);
                }
            }
        }
        self.page_alloc.detach_process(mem, backend, proc.paging);
    }

    // ----- list surgery helpers ------------------------------------------

    /// Reads the (avail, full) heads for (core, class): from the HOT entry
    /// when valid, else from saved state.
    fn heads(&self, core: usize, class: SizeClass, proc: &MementoProcess) -> (u64, u64) {
        let e = self.hots[core].entry(class);
        if e.valid {
            (e.avail_head, e.full_head)
        } else if let Some(s) = proc.saved.get(&(core, class.index() as u8)) {
            (s.avail_head, s.full_head)
        } else {
            (0, 0)
        }
    }

    /// Writes the heads back to wherever they live.
    fn set_heads(
        &mut self,
        core: usize,
        class: SizeClass,
        proc: &mut MementoProcess,
        avail: u64,
        full: u64,
    ) {
        let e = self.hots[core].entry_mut(class);
        if e.valid {
            e.avail_head = avail;
            e.full_head = full;
        } else {
            let s = proc
                .saved
                .entry((core, class.index() as u8))
                .or_insert(SavedClass {
                    header_pa: 0,
                    avail_head: 0,
                    full_head: 0,
                });
            s.avail_head = avail;
            s.full_head = full;
        }
    }

    /// Unlinks the header at `pa` (already loaded as `header`) from the list
    /// whose head is `head`, returning the new head. Issues the neighbour
    /// pointer writes through the hierarchy.
    fn unlink(
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        core: usize,
        header: &ArenaHeader,
        pa: PhysAddr,
        head: u64,
        cycles: &mut Cycles,
    ) -> u64 {
        let mut new_head = head;
        if head == pa.raw() {
            new_head = header.next;
        }
        if header.prev != 0 && header.prev != CURRENT_SENTINEL {
            raw::set_next(mem, PhysAddr::new(header.prev), header.next);
            *cycles += mem_sys
                .access(core, AccessKind::Write, PhysAddr::new(header.prev))
                .cycles;
        }
        if header.next != 0 {
            raw::set_prev(mem, PhysAddr::new(header.next), header.prev);
            *cycles += mem_sys
                .access(core, AccessKind::Write, PhysAddr::new(header.next))
                .cycles;
        }
        new_head
    }

    // ----- obj-alloc ------------------------------------------------------

    /// Executes `obj-alloc size` on `core` for `proc` (paper Fig. 6, steps
    /// 5–9).
    ///
    /// # Errors
    ///
    /// [`MementoError::SizeTooLarge`] for requests above 512 bytes — the
    /// software allocator integration (§4) routes those to `malloc`.
    #[allow(clippy::too_many_arguments)]
    pub fn obj_alloc(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut MementoProcess,
        size: usize,
    ) -> Result<AllocOutcome, MementoError> {
        let class = SizeClass::for_size(size).ok_or(MementoError::SizeTooLarge(size))?;
        self.obj_stats.allocs += 1;
        let mut obj_cycles = Cycles::new(self.cfg.costs.hot_access);
        let mut page_cycles = Cycles::ZERO;
        let mut hot_hit = true;

        // Ensure the entry holds *some* current arena.
        if !self.hots[core].entry(class).valid {
            hot_hit = false;
            let saved = proc.saved.remove(&(core, class.index() as u8));
            match saved {
                Some(s) if s.header_pa != 0 => {
                    // Reload the flushed current arena.
                    let pa = PhysAddr::new(s.header_pa);
                    obj_cycles += mem_sys.access(core, AccessKind::Read, pa).cycles;
                    let header = ArenaHeader::load(mem, pa);
                    self.hots[core].install(
                        class,
                        HotEntry {
                            valid: true,
                            header,
                            pa,
                            avail_head: s.avail_head,
                            full_head: s.full_head,
                            dirty: false,
                        },
                    );
                }
                other => {
                    // Initialization (steps 1–4): no current arena yet.
                    let (avail, full) = match other {
                        Some(s) => (s.avail_head, s.full_head),
                        None => (0, 0),
                    };
                    page_cycles += self.install_new_arena(
                        mem,
                        mem_sys,
                        backend,
                        core,
                        proc,
                        class,
                        avail,
                        full,
                        &mut obj_cycles,
                    )?;
                }
            }
        }

        loop {
            let entry = self.hots[core].entry_mut(class);
            if let Some(idx) = entry.header.find_clear() {
                entry.header.set(idx);
                entry.dirty = true;
                let addr = proc.paging.region.object_addr(class, entry.header.va, idx);
                self.hots[core].stats_mut().alloc.record(hot_hit);
                return Ok(AllocOutcome {
                    addr,
                    obj_cycles,
                    page_cycles,
                    hot_hit,
                });
            }

            // Current arena full: HOT miss path (steps 8–9).
            hot_hit = false;
            let mut slow_cycles = Cycles::ZERO;
            let full_entry = *self.hots[core].entry(class);
            // Write the full arena back and push it onto the full list.
            let mut header = full_entry.header;
            header.prev = 0;
            header.next = full_entry.full_head;
            header.store(mem, full_entry.pa);
            slow_cycles += mem_sys
                .access(core, AccessKind::Write, full_entry.pa)
                .cycles;
            if full_entry.full_head != 0 {
                raw::set_prev(
                    mem,
                    PhysAddr::new(full_entry.full_head),
                    full_entry.pa.raw(),
                );
                slow_cycles += mem_sys
                    .access(core, AccessKind::Write, PhysAddr::new(full_entry.full_head))
                    .cycles;
            }
            let new_full_head = full_entry.pa.raw();
            self.obj_stats.alloc_list_ops += 1;

            if full_entry.avail_head != 0 {
                // Load the next available arena as the new current.
                let pa = PhysAddr::new(full_entry.avail_head);
                slow_cycles += mem_sys.access(core, AccessKind::Read, pa).cycles;
                let mut next_header = ArenaHeader::load(mem, pa);
                let new_avail_head = next_header.next;
                if next_header.next != 0 {
                    raw::set_prev(mem, PhysAddr::new(next_header.next), 0);
                    slow_cycles += mem_sys
                        .access(core, AccessKind::Write, PhysAddr::new(next_header.next))
                        .cycles;
                }
                next_header.prev = CURRENT_SENTINEL;
                next_header.next = 0;
                self.hots[core].install(
                    class,
                    HotEntry {
                        valid: true,
                        header: next_header,
                        pa,
                        avail_head: new_avail_head,
                        full_head: new_full_head,
                        dirty: true,
                    },
                );
                if !self.cfg.eager_replenish {
                    obj_cycles += slow_cycles;
                }
            } else {
                // No valid arena anywhere: allocate a new one (step 9).
                if !self.cfg.eager_replenish {
                    obj_cycles += slow_cycles;
                }
                page_cycles += self.install_new_arena(
                    mem,
                    mem_sys,
                    backend,
                    core,
                    proc,
                    class,
                    0,
                    new_full_head,
                    &mut obj_cycles,
                )?;
            }
        }
    }

    /// Requests a new arena from the page allocator and installs it as the
    /// current HOT entry with the given list heads. Returns the page-side
    /// cycles and adds header-init cost to `obj_cycles`.
    #[allow(clippy::too_many_arguments)]
    fn install_new_arena(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut MementoProcess,
        class: SizeClass,
        avail_head: u64,
        full_head: u64,
        obj_cycles: &mut Cycles,
    ) -> Result<Cycles, MementoError> {
        let arena =
            self.page_alloc
                .alloc_arena(mem, mem_sys, backend, core, &mut proc.paging, class)?;
        let mut header = ArenaHeader::fresh(arena.va);
        header.prev = CURRENT_SENTINEL;
        header.store(mem, arena.header_pa);
        // "Set Arena Header" (init step 3): one line write.
        *obj_cycles += mem_sys
            .access(core, AccessKind::Write, arena.header_pa)
            .cycles;
        self.hots[core].install(
            class,
            HotEntry {
                valid: true,
                header,
                pa: arena.header_pa,
                avail_head,
                full_head,
                dirty: true,
            },
        );
        self.obj_stats.arena_inits += 1;
        if self.log_events {
            self.events.push(DeviceEvent::ArenaInstalled {
                core,
                class,
                va: arena.va,
                header_pa: arena.header_pa,
            });
        }
        Ok(arena.cycles)
    }

    /// Cache-coherence supply for an arena header (paper §4): before a
    /// core reads a header from memory, any *other* core whose HOT holds
    /// that header in the dirty state must supply it — modeled as a
    /// write-back plus invalidation of the owning entry, with the owner's
    /// current-arena PA and list heads spilled so its next access reloads
    /// cleanly.
    fn coherence_sync(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        requester: usize,
        pa: PhysAddr,
        proc: &mut MementoProcess,
    ) -> Cycles {
        let mut cycles = Cycles::ZERO;
        for core in 0..self.hots.len() {
            if core == requester {
                continue;
            }
            for sc in SizeClass::all() {
                let e = self.hots[core].entry(sc);
                if e.valid && e.pa == pa && proc.paging.region.contains(e.header.va) {
                    let entry = *e;
                    if entry.dirty {
                        entry.header.store(mem, entry.pa);
                        cycles += mem_sys
                            .access(requester, AccessKind::Write, entry.pa)
                            .cycles;
                    }
                    proc.saved.insert(
                        (core, sc.index() as u8),
                        SavedClass {
                            header_pa: entry.pa.raw(),
                            avail_head: entry.avail_head,
                            full_head: entry.full_head,
                        },
                    );
                    self.hots[core].evict(sc);
                    if self.log_events {
                        self.events.push(DeviceEvent::HeaderInvalidated {
                            owner: core,
                            requester,
                            class: sc,
                            va: entry.header.va,
                            header_pa: entry.pa,
                        });
                    }
                }
            }
        }
        cycles
    }

    // ----- obj-free -------------------------------------------------------

    /// Executes `obj-free va` on `core` (paper Fig. 6, steps 10–13).
    ///
    /// # Errors
    ///
    /// [`MementoError::NotMementoAddress`] when `va` lies outside the
    /// region (software free) and [`MementoError::DoubleFree`] when the
    /// object's bitmap bit is already clear (raised to software as an
    /// exception, §4).
    #[allow(clippy::too_many_arguments)]
    pub fn obj_free(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        tlbs: &mut [Tlb],
        core: usize,
        proc: &mut MementoProcess,
        va: VirtAddr,
    ) -> Result<FreeOutcome, MementoError> {
        let loc = proc
            .paging
            .region
            .locate(va)
            .ok_or(MementoError::NotMementoAddress(va))?;
        self.obj_stats.frees += 1;
        let mut obj_cycles = Cycles::new(self.cfg.costs.hot_access);
        let mut page_cycles = Cycles::ZERO;

        // HOT hit: the arena is the cached current for its class (step 12).
        let entry = self.hots[core].entry_mut(loc.class);
        if entry.valid && entry.header.va == loc.arena_base {
            if !entry.header.is_set(loc.object_index) {
                return Err(MementoError::DoubleFree(va));
            }
            entry.header.clear(loc.object_index);
            entry.dirty = true;
            Self::maybe_decrement_bypass(&mut entry.header, loc.class, loc.object_index);
            self.hots[core].stats_mut().free.hit();
            return Ok(FreeOutcome {
                obj_cycles,
                page_cycles,
                hot_hit: true,
            });
        }
        self.hots[core].stats_mut().free.miss();

        // Miss (step 13): translate the arena base, fetch the header.
        let lookup = tlbs[core].lookup(loc.arena_base);
        obj_cycles += lookup.cycles;
        let header_pa = match lookup.frame {
            Some(f) => f.base_addr(),
            None => {
                let walk = self.page_alloc.demand_walk(
                    mem,
                    mem_sys,
                    backend,
                    core,
                    &mut proc.paging,
                    loc.arena_base,
                )?;
                page_cycles += walk.cycles;
                tlbs[core].insert(loc.arena_base, walk.frame);
                walk.frame.base_addr()
            }
        };
        // Coherence: another core's HOT may own this header dirty.
        obj_cycles += self.coherence_sync(mem, mem_sys, core, header_pa, proc);
        obj_cycles += mem_sys.access(core, AccessKind::Read, header_pa).cycles;
        let mut header = ArenaHeader::load(mem, header_pa);
        if !header.is_set(loc.object_index) {
            return Err(MementoError::DoubleFree(va));
        }
        let was_full = header.is_full();
        header.clear(loc.object_index);
        Self::maybe_decrement_bypass(&mut header, loc.class, loc.object_index);

        let (mut avail_head, mut full_head) = self.heads(core, loc.class, proc);
        if was_full {
            // Move from the full list to the head of the available list.
            full_head = Self::unlink(
                mem,
                mem_sys,
                core,
                &header,
                header_pa,
                full_head,
                &mut obj_cycles,
            );
            header.prev = 0;
            header.next = avail_head;
            if avail_head != 0 {
                raw::set_prev(mem, PhysAddr::new(avail_head), header_pa.raw());
                obj_cycles += mem_sys
                    .access(core, AccessKind::Write, PhysAddr::new(avail_head))
                    .cycles;
            }
            avail_head = header_pa.raw();
            self.obj_stats.free_list_ops += 1;
            self.set_heads(core, loc.class, proc, avail_head, full_head);
        }

        let now_empty = header.is_empty();
        if now_empty && header.prev != CURRENT_SENTINEL {
            // Reclaim the arena (workflow step 7): unlink from the
            // available list and return its pages to the pool.
            avail_head = Self::unlink(
                mem,
                mem_sys,
                core,
                &header,
                header_pa,
                avail_head,
                &mut obj_cycles,
            );
            self.obj_stats.free_list_ops += 1;
            self.set_heads(core, loc.class, proc, avail_head, full_head);
            let freed = self.page_alloc.free_arena(
                mem,
                mem_sys,
                backend,
                core,
                &mut proc.paging,
                loc.class,
                loc.arena_base,
            );
            page_cycles += freed.cycles;
            for (target, tlb) in tlbs.iter_mut().enumerate() {
                if freed.shootdown_cores & (1 << target) != 0 {
                    for page in &freed.unmapped_pages {
                        tlb.shootdown(*page);
                    }
                }
            }
            if self.log_events {
                self.events.push(DeviceEvent::ArenaReclaimed {
                    core,
                    class: loc.class,
                    va: loc.arena_base,
                });
            }
        } else {
            header.store(mem, header_pa);
            obj_cycles += mem_sys.access(core, AccessKind::Write, header_pa).cycles;
        }

        Ok(FreeOutcome {
            obj_cycles,
            page_cycles,
            hot_hit: false,
        })
    }

    /// The paper's bypass-counter decrement: if the freed object's lines
    /// sit exactly at the high-water mark (and start line-aligned), roll
    /// the counter back.
    fn maybe_decrement_bypass(header: &mut ArenaHeader, class: SizeClass, index: usize) {
        let size = class.object_size();
        let off = index * size;
        let first_line = (off / CACHE_LINE_SIZE) as u64;
        let last_line = ((off + size - 1) / CACHE_LINE_SIZE) as u64;
        if off.is_multiple_of(CACHE_LINE_SIZE) && last_line + 1 == header.bypass_counter {
            header.bypass_counter = first_line;
        }
    }

    // ----- bypass + translation -----------------------------------------

    /// Main-memory-bypass check for a demand access to `va` (§3.3): returns
    /// true when the line has provably never been touched, updating the
    /// arena's bypass counter. Only consults the HOT — cold arenas are not
    /// fetched just to answer this.
    pub fn bypass_check(&mut self, core: usize, proc: &MementoProcess, va: VirtAddr) -> bool {
        if !self.cfg.bypass_enabled {
            return false;
        }
        let Some(loc) = proc.paging.region.locate(va) else {
            return false;
        };
        let entry = self.hots[core].entry_mut(loc.class);
        if !entry.valid || entry.header.va != loc.arena_base {
            return false;
        }
        let body_off = va.offset_from(loc.arena_base) - PAGE_SIZE as u64;
        let line_idx = body_off / CACHE_LINE_SIZE as u64;
        if line_idx >= entry.header.bypass_counter {
            entry.header.bypass_counter = line_idx + 1;
            entry.dirty = true;
            self.obj_stats.bypass_grants += 1;
            true
        } else {
            false
        }
    }

    /// Serves a TLB miss for a Memento-region address: the marked page walk
    /// that populates the Memento page table on demand. Returns the backing
    /// frame and charged cycles.
    ///
    /// # Errors
    ///
    /// [`MementoError::PoolExhausted`] when a fresh page must be backed but
    /// the pool is dry and the OS grants nothing.
    pub fn translate_miss(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        core: usize,
        proc: &mut MementoProcess,
        va: VirtAddr,
    ) -> Result<(memento_simcore::physmem::Frame, Cycles), MementoError> {
        let walk =
            self.page_alloc
                .demand_walk(mem, mem_sys, backend, core, &mut proc.paging, va)?;
        Ok((walk.frame, walk.cycles))
    }

    /// Scans every arena reachable from `core`'s HOT (current entries plus
    /// the available and full lists) and returns `(live_bytes,
    /// backed_bytes)`: bytes held by live small objects versus physical
    /// bytes actually backing arena body pages. This is the §6.6
    /// fragmentation measurement — body pages are demand-backed, so unused
    /// slots in never-touched pages cost nothing. Untimed instrumentation.
    pub fn scan_occupancy(&self, mem: &PhysMem, core: usize, proc: &MementoProcess) -> (u64, u64) {
        fn measure(
            header: &ArenaHeader,
            class: SizeClass,
            mem: &PhysMem,
            proc: &MementoProcess,
        ) -> (u64, u64) {
            let live = header.live_objects() as u64 * class.object_size() as u64;
            let mut backed = 0u64;
            // Body pages only: the header page is metadata, not payload.
            for page in 1..class.arena_pages() as u64 {
                let va = header.va.add(page * PAGE_SIZE as u64);
                if proc.paging.page_table.translate(mem, va).is_some() {
                    backed += PAGE_SIZE as u64;
                }
            }
            (live, backed)
        }
        fn visit(pa: u64, class: SizeClass, mem: &PhysMem, proc: &MementoProcess) -> (u64, u64) {
            let (mut live, mut backed) = (0u64, 0u64);
            let mut at = pa;
            let mut guard = 0;
            while at != 0 && at != CURRENT_SENTINEL && guard < 1_000_000 {
                let h = ArenaHeader::load(mem, PhysAddr::new(at));
                let (l, b) = measure(&h, class, mem, proc);
                live += l;
                backed += b;
                at = h.next;
                guard += 1;
            }
            (live, backed)
        }
        let mut live = 0u64;
        let mut backed = 0u64;
        for sc in SizeClass::all() {
            let e = self.hots[core].entry(sc);
            let (avail, full) = if e.valid {
                let (l, b) = measure(&e.header, sc, mem, proc);
                live += l;
                backed += b;
                (e.avail_head, e.full_head)
            } else if let Some(s) = proc.saved.get(&(core, sc.index() as u8)) {
                if s.header_pa != 0 {
                    let h = ArenaHeader::load(mem, PhysAddr::new(s.header_pa));
                    let (l, b) = measure(&h, sc, mem, proc);
                    live += l;
                    backed += b;
                }
                (s.avail_head, s.full_head)
            } else {
                (0, 0)
            };
            let (l1, b1) = visit(avail, sc, mem, proc);
            let (l2, b2) = visit(full, sc, mem, proc);
            live += l1 + l2;
            backed += b1 + b2;
        }
        (live, backed)
    }

    // ----- persistent-memory checkpoints ---------------------------------

    /// Logs a park-to-PM transition (checkpoint sealed under `epoch`) for
    /// external auditors. Untimed, event-log-gated like every device event.
    pub fn note_pm_parked(&mut self, epoch: u64, records: u64) {
        if self.log_events {
            self.events.push(DeviceEvent::PmParked { epoch, records });
        }
    }

    /// Logs a restore-from-PM transition (image of `epoch` replayed).
    pub fn note_pm_restored(&mut self, epoch: u64) {
        if self.log_events {
            self.events.push(DeviceEvent::PmRestored { epoch });
        }
    }

    /// Captures the device-visible Memento state of `proc` for a
    /// persistent checkpoint: every live arena (current, available, and
    /// full lists of every core and class — HOT-cached headers taken from
    /// the cache, which may be dirtier than memory), the AAC bump
    /// pointers, the valid HOT entries, and the Memento page-table
    /// mappings of every live arena page. Deterministically ordered;
    /// untimed instrumentation (the persist cost is charged by the
    /// persistence layer, not here).
    pub fn pm_state(&self, mem: &PhysMem, proc: &MementoProcess) -> PmState {
        let cores = self.hots.len();
        // Live arenas keyed by VA: cached current arenas may also need
        // their in-memory twins skipped, so collect into a map first.
        let mut arenas: BTreeMap<u64, PmArenaState> = BTreeMap::new();
        let mut insert = |header: &ArenaHeader, class: SizeClass, pa: PhysAddr| {
            arenas.insert(
                header.va.raw(),
                PmArenaState {
                    va: header.va,
                    class,
                    bitmap: header.bitmap,
                    header_pa: pa,
                },
            );
        };
        let walk = |head: u64,
                    class: SizeClass,
                    insert: &mut dyn FnMut(&ArenaHeader, SizeClass, PhysAddr)| {
            let mut at = head;
            let mut guard = 0;
            while at != 0 && at != CURRENT_SENTINEL && guard < 1_000_000 {
                let h = ArenaHeader::load(mem, PhysAddr::new(at));
                let next = h.next;
                insert(&h, class, PhysAddr::new(at));
                at = next;
                guard += 1;
            }
        };
        let mut hot = Vec::new();
        for core in 0..cores {
            for sc in SizeClass::all() {
                let e = self.hots[core].entry(sc);
                let (avail, full) = if e.valid && proc.paging.region.contains(e.header.va) {
                    insert(&e.header, sc, e.pa);
                    hot.push(PmHotState {
                        core,
                        class: sc,
                        va: e.header.va,
                        bitmap: e.header.bitmap,
                        header_pa: e.pa,
                    });
                    (e.avail_head, e.full_head)
                } else if let Some(s) = proc.saved.get(&(core, sc.index() as u8)) {
                    if s.header_pa != 0 {
                        let h = ArenaHeader::load(mem, PhysAddr::new(s.header_pa));
                        insert(&h, sc, PhysAddr::new(s.header_pa));
                    }
                    (s.avail_head, s.full_head)
                } else {
                    (0, 0)
                };
                walk(avail, sc, &mut insert);
                walk(full, sc, &mut insert);
            }
        }
        let mut bumps = Vec::new();
        for core in 0..cores {
            for sc in SizeClass::all() {
                let next = proc.paging.bump_for(core, sc);
                if next != 0 {
                    bumps.push((core, sc, next));
                }
            }
        }
        // The page-table mappings backing every live arena page (the
        // working set a demand-refaulting restore would fault back in).
        let mut mappings = Vec::new();
        for state in arenas.values() {
            for page in 0..state.class.arena_pages() as u64 {
                let va = state.va.add(page * PAGE_SIZE as u64);
                if let Some(t) = proc.paging.page_table.translate(mem, va) {
                    mappings.push((va, t.frame.base_addr()));
                }
            }
        }
        PmState {
            arenas: arenas.into_values().collect(),
            bumps,
            hot,
            mappings,
        }
    }

    // ----- context switches ----------------------------------------------

    /// Flushes `core`'s HOT for a context switch (§4 multi-core support):
    /// dirty headers are written back, current-arena PAs and list heads are
    /// spilled to the per-process saved state.
    pub fn flush_hot(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        core: usize,
        proc: &mut MementoProcess,
    ) -> Cycles {
        let mut cycles = Cycles::ZERO;
        let drained = self.hots[core].drain_for_flush();
        for (class, entry) in drained {
            // Only spill entries belonging to this process's region.
            if !proc.paging.region.contains(entry.header.va) {
                continue;
            }
            if entry.dirty {
                entry.header.store(mem, entry.pa);
                cycles += mem_sys.access(core, AccessKind::Write, entry.pa).cycles;
            }
            cycles += Cycles::new(self.cfg.costs.hot_access);
            proc.saved.insert(
                (core, class.index() as u8),
                SavedClass {
                    header_pa: entry.pa.raw(),
                    avail_head: entry.avail_head,
                    full_head: entry.full_head,
                },
            );
        }
        cycles
    }

    // ----- invocation boundaries ------------------------------------------

    /// Invocation-boundary quiesce (§6.3 warm containers): reclaims every
    /// *current* arena whose objects have all died. Non-current arenas are
    /// reclaimed online by `obj-free` the moment they empty; the per-class
    /// current arena is exempt (the AAC bump pointer targets it), so after
    /// the runtime frees a request's remaining objects the currents are the
    /// only empty arenas still pinning pages. Dropping them here returns
    /// their frames to the pool, where the next warm invocation draws them
    /// as recycled grants instead of fresh OS demand.
    pub fn end_invocation_trim(
        &mut self,
        mem: &mut PhysMem,
        mem_sys: &mut MemSystem,
        backend: &mut dyn PoolBackend,
        tlbs: &mut [Tlb],
        core: usize,
        proc: &mut MementoProcess,
    ) -> Cycles {
        let mut cycles = Cycles::ZERO;
        for hot_core in 0..self.hots.len() {
            for class in SizeClass::all() {
                let entry = self.hots[hot_core].entry(class);
                let in_hot = entry.valid && proc.paging.region.contains(entry.header.va);
                let va = if in_hot {
                    cycles += Cycles::new(self.cfg.costs.hot_access);
                    if !entry.header.is_empty() {
                        continue;
                    }
                    entry.header.va
                } else if let Some(s) = proc.saved.get(&(hot_core, class.index() as u8)) {
                    if s.header_pa == 0 {
                        continue;
                    }
                    let pa = PhysAddr::new(s.header_pa);
                    cycles += mem_sys.access(core, AccessKind::Read, pa).cycles;
                    let header = ArenaHeader::load(mem, pa);
                    if !header.is_empty() {
                        continue;
                    }
                    header.va
                } else {
                    continue;
                };
                if in_hot {
                    // The current arena sits in no list; preserve the list
                    // heads before dropping the entry.
                    let e = self.hots[hot_core].entry(class);
                    let (avail, full) = (e.avail_head, e.full_head);
                    self.hots[hot_core].evict(class);
                    proc.saved.insert(
                        (hot_core, class.index() as u8),
                        SavedClass {
                            header_pa: 0,
                            avail_head: avail,
                            full_head: full,
                        },
                    );
                } else if let Some(s) = proc.saved.get_mut(&(hot_core, class.index() as u8)) {
                    s.header_pa = 0;
                }
                let freed = self.page_alloc.free_arena(
                    mem,
                    mem_sys,
                    backend,
                    core,
                    &mut proc.paging,
                    class,
                    va,
                );
                cycles += freed.cycles;
                for (target, tlb) in tlbs.iter_mut().enumerate() {
                    if freed.shootdown_cores & (1 << target) != 0 {
                        for page in &freed.unmapped_pages {
                            tlb.shootdown(*page);
                        }
                    }
                }
                if self.log_events {
                    self.events.push(DeviceEvent::ArenaReclaimed {
                        core: hot_core,
                        class,
                        va,
                    });
                }
            }
        }
        cycles
    }
}

impl fmt::Debug for MementoDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MementoDevice")
            .field("cores", &self.hots.len())
            .field("obj_stats", &self.obj_stats)
            .field("page_stats", &self.page_alloc.stats())
            .finish()
    }
}
