//! The Memento ISA extension: `obj-alloc` and `obj-free` (paper §3.1).
//!
//! Memento adds two instructions so language runtimes can reach the
//! hardware object allocator without hardwiring to any particular software
//! allocator:
//!
//! - `obj-alloc rd, rs` — rs carries the requested size; rd receives the
//!   virtual address of a block satisfying it.
//! - `obj-free rs` — rs carries the virtual address to deallocate.
//!
//! This module gives the instructions a concrete encoding (as an x86-style
//! escape sequence would) plus decode/execute semantics over a
//! [`MementoDevice`], so the integration contract of §4 — software checks
//! the size/region and issues the instruction — is executable and testable.

use crate::device::{AllocOutcome, FreeOutcome, MementoDevice, MementoError, MementoProcess};
use crate::page_alloc::PoolBackend;
use memento_cache::MemSystem;
use memento_simcore::addr::VirtAddr;
use memento_simcore::physmem::PhysMem;
use memento_vm::tlb::Tlb;
use std::fmt;

/// Two-byte opcode prefix chosen from x86's unused 0F 38 escape space.
pub const OPCODE_OBJ_ALLOC: u16 = 0x0FA0;
/// `obj-free` opcode.
pub const OPCODE_OBJ_FREE: u16 = 0x0FA1;

/// A decoded Memento instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MementoInstr {
    /// `obj-alloc rd, rs`: allocate `size` bytes (the value in rs).
    ObjAlloc {
        /// Requested size in bytes (register operand value).
        size: u32,
    },
    /// `obj-free rs`: free the object at `addr` (the value in rs).
    ObjFree {
        /// Virtual address operand value.
        addr: VirtAddr,
    },
}

impl MementoInstr {
    /// Encodes the instruction into a 64-bit word: opcode in the high 16
    /// bits, operand in the low 48 (sizes fit trivially; virtual addresses
    /// use the canonical 48-bit space).
    pub fn encode(self) -> u64 {
        match self {
            MementoInstr::ObjAlloc { size } => ((OPCODE_OBJ_ALLOC as u64) << 48) | size as u64,
            MementoInstr::ObjFree { addr } => {
                ((OPCODE_OBJ_FREE as u64) << 48) | (addr.raw() & 0xFFFF_FFFF_FFFF)
            }
        }
    }

    /// Decodes a 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown opcode.
    pub fn decode(word: u64) -> Result<Self, DecodeError> {
        let opcode = (word >> 48) as u16;
        let operand = word & 0xFFFF_FFFF_FFFF;
        match opcode {
            OPCODE_OBJ_ALLOC => Ok(MementoInstr::ObjAlloc {
                size: operand as u32,
            }),
            OPCODE_OBJ_FREE => Ok(MementoInstr::ObjFree {
                addr: VirtAddr::new(operand),
            }),
            other => Err(DecodeError(other)),
        }
    }
}

impl fmt::Display for MementoInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MementoInstr::ObjAlloc { size } => write!(f, "obj-alloc {size}"),
            MementoInstr::ObjFree { addr } => write!(f, "obj-free {addr}"),
        }
    }
}

/// Unknown opcode during decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError(pub u16);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown Memento opcode {:#06x}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Result of executing a Memento instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecOutcome {
    /// `obj-alloc` retired; rd = allocated address.
    Allocated(AllocOutcome),
    /// `obj-free` retired.
    Freed(FreeOutcome),
}

/// Executes a decoded instruction against the device — the dispatch the
/// core's decoder performs when it encounters a Memento opcode.
///
/// # Errors
///
/// Propagates [`MementoError`]: `SizeTooLarge` and `NotMementoAddress`
/// trap to the software allocator path; `DoubleFree` raises an exception.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    instr: MementoInstr,
    dev: &mut MementoDevice,
    mem: &mut PhysMem,
    mem_sys: &mut MemSystem,
    backend: &mut dyn PoolBackend,
    tlbs: &mut [Tlb],
    core: usize,
    proc: &mut MementoProcess,
) -> Result<ExecOutcome, MementoError> {
    match instr {
        MementoInstr::ObjAlloc { size } => dev
            .obj_alloc(mem, mem_sys, backend, core, proc, size as usize)
            .map(ExecOutcome::Allocated),
        MementoInstr::ObjFree { addr } => dev
            .obj_free(mem, mem_sys, backend, tlbs, core, proc, addr)
            .map(ExecOutcome::Freed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MementoConfig;
    use crate::region::MementoRegion;
    use memento_cache::MemSystemConfig;
    use memento_simcore::physmem::Frame;

    #[test]
    fn encode_decode_roundtrip() {
        for instr in [
            MementoInstr::ObjAlloc { size: 8 },
            MementoInstr::ObjAlloc { size: 512 },
            MementoInstr::ObjFree {
                addr: VirtAddr::new(0x6000_0000_1040),
            },
        ] {
            let word = instr.encode();
            assert_eq!(MementoInstr::decode(word), Ok(instr));
        }
    }

    #[test]
    fn decode_rejects_unknown_opcodes() {
        let err = MementoInstr::decode(0xDEAD_0000_0000_0001).unwrap_err();
        assert_eq!(err.0, 0xDEAD);
        assert!(err.to_string().contains("0xdead"));
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(
            MementoInstr::ObjAlloc { size: 48 }.to_string(),
            "obj-alloc 48"
        );
    }

    struct BumpOs(u64);
    impl PoolBackend for BumpOs {
        fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
            let s = self.0;
            self.0 += n;
            (s..s + n).map(Frame::from_number).collect()
        }
        fn accept_frames(&mut self, _f: &[Frame]) {}
    }

    #[test]
    fn executed_pair_roundtrips_through_the_device() {
        let mut mem = PhysMem::new(1 << 30);
        let scratch = mem.alloc_frame().unwrap().base_addr();
        let mut dev = MementoDevice::new(MementoConfig::paper_default(), 1, scratch);
        let mut os = BumpOs(2048);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlbs = vec![Tlb::default()];
        let mut proc = dev
            .attach_process(&mut mem, &mut os, MementoRegion::standard())
            .expect("attach with live backend");

        // Fetch-decode-execute obj-alloc.
        let word = MementoInstr::ObjAlloc { size: 64 }.encode();
        let out = execute(
            MementoInstr::decode(word).unwrap(),
            &mut dev,
            &mut mem,
            &mut sys,
            &mut os,
            &mut tlbs,
            0,
            &mut proc,
        )
        .unwrap();
        let addr = match out {
            ExecOutcome::Allocated(a) => a.addr,
            other => panic!("expected alloc, got {other:?}"),
        };

        // And obj-free of the returned register value.
        let word = MementoInstr::ObjFree { addr }.encode();
        let out = execute(
            MementoInstr::decode(word).unwrap(),
            &mut dev,
            &mut mem,
            &mut sys,
            &mut os,
            &mut tlbs,
            0,
            &mut proc,
        )
        .unwrap();
        assert!(matches!(out, ExecOutcome::Freed(f) if f.hot_hit));
    }

    #[test]
    fn oversized_alloc_traps_to_software() {
        let mut mem = PhysMem::new(1 << 30);
        let scratch = mem.alloc_frame().unwrap().base_addr();
        let mut dev = MementoDevice::new(MementoConfig::paper_default(), 1, scratch);
        let mut os = BumpOs(2048);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlbs = vec![Tlb::default()];
        let mut proc = dev
            .attach_process(&mut mem, &mut os, MementoRegion::standard())
            .expect("attach with live backend");
        let err = execute(
            MementoInstr::ObjAlloc { size: 4096 },
            &mut dev,
            &mut mem,
            &mut sys,
            &mut os,
            &mut tlbs,
            0,
            &mut proc,
        )
        .unwrap_err();
        assert_eq!(err, MementoError::SizeTooLarge(4096));
    }
}
