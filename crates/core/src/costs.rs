//! Latency model for Memento's hardware structures.
//!
//! Table 3 of the paper: the HOT is a 3.4 KB direct-mapped structure with a
//! 2-cycle access; the AAC is a 32-entry direct-mapped cache with a 1-cycle
//! access. Memory-side work (header loads/writebacks, Memento page-table
//! reads/writes) is charged through the cache hierarchy at simulation time,
//! so the constants here cover only the fixed hardware datapath costs.

/// Fixed cycle costs of Memento datapath operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MementoCosts {
    /// HOT access (hit path of `obj-alloc`/`obj-free`).
    pub hot_access: u64,
    /// AAC hit (bump-pointer read at the memory controller).
    pub aac_hit: u64,
    /// Fixed arena-allocation datapath work (pool pop, header prep control).
    pub arena_alloc_base: u64,
    /// Fixed arena-free datapath work (reclamation control).
    pub arena_free_base: u64,
    /// Per-level control overhead of an on-demand Memento page-table
    /// populate step (beyond the memory accesses themselves).
    pub walk_populate_step: u64,
    /// Cost of delivering one TLB shootdown to a core.
    pub shootdown_per_core: u64,
}

impl MementoCosts {
    /// Paper-calibrated defaults.
    pub fn calibrated() -> Self {
        MementoCosts {
            hot_access: 2,
            aac_hit: 1,
            arena_alloc_base: 12,
            arena_free_base: 18,
            walk_populate_step: 4,
            shootdown_per_core: 120,
        }
    }
}

impl Default for MementoCosts {
    fn default() -> Self {
        MementoCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_hit_is_two_cycles() {
        assert_eq!(MementoCosts::default().hot_access, 2);
        assert_eq!(MementoCosts::default().aac_hit, 1);
    }
}
