//! # memento-core
//!
//! The primary contribution of *Memento: Architectural Support for Ephemeral
//! Memory Management in Serverless Environments* (MICRO '23), reproduced as
//! a library over the `memento-*` simulation substrates:
//!
//! - [`size_class`] — 64 size classes (8..=512 B in 8-byte steps) and arena
//!   geometry (256 objects per arena, header page + body pages).
//! - [`region`] — the reserved per-process VA region exposed through the
//!   `MRS`/`MRE` registers, evenly split into size-class slices so object
//!   addresses decompose into (class, arena, index) with pure arithmetic.
//! - [`arena`] — arena headers (VA field, 256-bit allocation bitmap, 11-bit
//!   bypass counter, list links) as real data in simulated memory.
//! - [`hot`] — the per-core Hardware Object Table: a 64-entry direct-mapped
//!   metadata cache with 2-cycle hits.
//! - [`page_alloc`] — the hardware page allocator at the memory controller:
//!   AAC-cached bump pointers, an OS-replenished physical page pool, and the
//!   on-demand Memento page table (`MPTR`).
//! - [`device`] — the assembled device: `obj-alloc`/`obj-free` ISA
//!   semantics, HOT hit/miss FSM, arena list management, main-memory bypass
//!   checks, and HOT flushes for context switches.
//!
//! # Examples
//!
//! ```
//! use memento_core::device::{MementoConfig, MementoDevice};
//! use memento_core::page_alloc::PoolBackend;
//! use memento_core::region::MementoRegion;
//! use memento_cache::{MemSystem, MemSystemConfig};
//! use memento_simcore::physmem::{Frame, PhysMem};
//! use memento_vm::tlb::Tlb;
//!
//! // A toy OS backend handing out frames from a bump counter.
//! struct Os(u64);
//! impl PoolBackend for Os {
//!     fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
//!         let start = self.0;
//!         self.0 += n;
//!         (start..start + n).map(Frame::from_number).collect()
//!     }
//!     fn accept_frames(&mut self, _frames: &[Frame]) {}
//! }
//!
//! let mut mem = PhysMem::new(1 << 30);
//! let scratch = mem.alloc_frame().unwrap().base_addr();
//! let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
//! let mut tlbs = vec![Tlb::default()];
//! let mut os = Os(1024);
//! let mut dev = MementoDevice::new(MementoConfig::paper_default(), 1, scratch);
//! let mut proc = dev
//!     .attach_process(&mut mem, &mut os, MementoRegion::standard())
//!     .expect("attach with live backend");
//!
//! let a = dev.obj_alloc(&mut mem, &mut sys, &mut os, 0, &mut proc, 48)?;
//! dev.obj_free(&mut mem, &mut sys, &mut os, &mut tlbs, 0, &mut proc, a.addr)?;
//! assert_eq!(dev.hot_stats(0).free.hits, 1);
//! # Ok::<(), memento_core::device::MementoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod costs;
pub mod device;
pub mod hot;
pub mod isa;
pub mod page_alloc;
pub mod region;
pub mod size_class;

pub use costs::MementoCosts;
pub use device::{
    AllocOutcome, FreeOutcome, MementoConfig, MementoDevice, MementoError, MementoProcess, ObjStats,
};
pub use hot::HotStats;
pub use isa::{ExecOutcome, MementoInstr};
pub use page_alloc::{PageAllocStats, PageAllocatorConfig, PoolBackend};
pub use region::MementoRegion;
pub use size_class::{SizeClass, MAX_OBJECT_SIZE, NUM_SIZE_CLASSES, OBJECTS_PER_ARENA};

#[cfg(test)]
mod device_tests;
