//! Size classes and arena geometry.
//!
//! Memento supports allocations up to 512 bytes in 8-byte increments — 64
//! size classes (paper §3.1). Every arena holds exactly
//! [`OBJECTS_PER_ARENA`] objects of one class: its first page is the header,
//! the body follows, rounded up to whole pages.

use memento_simcore::addr::{CACHE_LINE_SIZE, PAGE_SIZE};
use std::fmt;

/// Number of size classes (8..=512 bytes in 8-byte steps).
pub const NUM_SIZE_CLASSES: usize = 64;

/// Largest object size Memento serves; larger requests go to software.
pub const MAX_OBJECT_SIZE: usize = 512;

/// Objects per arena (paper §3.1: 256, balancing metadata cost and internal
/// fragmentation).
pub const OBJECTS_PER_ARENA: usize = 256;

/// A size class index in `0..64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SizeClass(u8);

impl SizeClass {
    /// Builds a size class from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub fn from_index(index: usize) -> Self {
        assert!(
            index < NUM_SIZE_CLASSES,
            "size class index {index} out of range"
        );
        SizeClass(index as u8)
    }

    /// Classifies a request of `size` bytes: rounds up to the nearest 8-byte
    /// boundary. Returns `None` for zero or for sizes above
    /// [`MAX_OBJECT_SIZE`] (those are served by software).
    pub fn for_size(size: usize) -> Option<Self> {
        if size == 0 || size > MAX_OBJECT_SIZE {
            return None;
        }
        Some(SizeClass((size.div_ceil(8) - 1) as u8))
    }

    /// The class index (0..64).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Object size served by this class, in bytes.
    pub const fn object_size(self) -> usize {
        (self.0 as usize + 1) * 8
    }

    /// Bytes of arena body (objects only).
    pub const fn body_bytes(self) -> usize {
        self.object_size() * OBJECTS_PER_ARENA
    }

    /// Pages of arena body (rounded up).
    pub const fn body_pages(self) -> usize {
        self.body_bytes().div_ceil(PAGE_SIZE)
    }

    /// Cache lines in the arena body — the ceiling the bypass counter may
    /// reach, since it counts body lines known to have been written (§3.3).
    pub const fn body_lines(self) -> u64 {
        (self.body_bytes() / CACHE_LINE_SIZE) as u64
    }

    /// Total arena footprint in pages: one header page plus the body.
    pub const fn arena_pages(self) -> usize {
        1 + self.body_pages()
    }

    /// Total arena footprint in bytes.
    pub const fn arena_bytes(self) -> usize {
        self.arena_pages() * PAGE_SIZE
    }

    /// Iterates over all 64 classes.
    pub fn all() -> impl Iterator<Item = SizeClass> {
        (0..NUM_SIZE_CLASSES).map(SizeClass::from_index)
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sc{}({}B)", self.0, self.object_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_rounds_up_to_8() {
        assert_eq!(SizeClass::for_size(1).unwrap().object_size(), 8);
        assert_eq!(SizeClass::for_size(8).unwrap().object_size(), 8);
        assert_eq!(SizeClass::for_size(9).unwrap().object_size(), 16);
        assert_eq!(SizeClass::for_size(512).unwrap().object_size(), 512);
        assert_eq!(SizeClass::for_size(512).unwrap().index(), 63);
    }

    #[test]
    fn out_of_range_sizes_rejected() {
        assert_eq!(SizeClass::for_size(0), None);
        assert_eq!(SizeClass::for_size(513), None);
        assert_eq!(SizeClass::for_size(4096), None);
    }

    #[test]
    fn arena_geometry_small_class() {
        // 8-byte objects: body = 2048 B = 1 page, arena = 2 pages.
        let sc = SizeClass::for_size(8).unwrap();
        assert_eq!(sc.body_bytes(), 2048);
        assert_eq!(sc.body_pages(), 1);
        assert_eq!(sc.arena_pages(), 2);
    }

    #[test]
    fn arena_geometry_large_class() {
        // 512-byte objects: body = 128 KiB = 32 pages, arena = 33 pages.
        let sc = SizeClass::for_size(512).unwrap();
        assert_eq!(sc.body_pages(), 32);
        assert_eq!(sc.arena_pages(), 33);
    }

    #[test]
    fn all_classes_cover_the_range() {
        let classes: Vec<SizeClass> = SizeClass::all().collect();
        assert_eq!(classes.len(), 64);
        for (i, sc) in classes.iter().enumerate() {
            assert_eq!(sc.index(), i);
            assert_eq!(sc.object_size(), (i + 1) * 8);
            assert!(sc.arena_pages() >= 2);
        }
    }

    #[test]
    fn body_lines_match_geometry() {
        assert_eq!(SizeClass::for_size(8).unwrap().body_lines(), 32);
        assert_eq!(SizeClass::for_size(512).unwrap().body_lines(), 2048);
        for sc in SizeClass::all() {
            assert_eq!(sc.body_lines() as usize * CACHE_LINE_SIZE, sc.body_bytes());
        }
    }

    #[test]
    fn display_shows_size() {
        assert_eq!(format!("{}", SizeClass::from_index(0)), "sc0(8B)");
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        SizeClass::from_index(64);
    }
}
