//! Integration-grade tests of the assembled Memento device FSM.

use crate::device::{MementoConfig, MementoDevice, MementoError, MementoProcess};
use crate::page_alloc::PoolBackend;
use crate::region::MementoRegion;
use crate::size_class::{SizeClass, OBJECTS_PER_ARENA};
use memento_cache::{MemSystem, MemSystemConfig};
use memento_simcore::addr::{VirtAddr, PAGE_SIZE};
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_vm::tlb::Tlb;

struct TestOs {
    next: u64,
    returned: Vec<Frame>,
}

impl TestOs {
    fn new() -> Self {
        TestOs {
            next: 4096,
            returned: Vec::new(),
        }
    }
}

impl PoolBackend for TestOs {
    fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
        let start = self.next;
        self.next += n;
        (start..start + n).map(Frame::from_number).collect()
    }

    fn accept_frames(&mut self, frames: &[Frame]) {
        self.returned.extend_from_slice(frames);
    }
}

struct Rig {
    mem: PhysMem,
    sys: MemSystem,
    tlbs: Vec<Tlb>,
    os: TestOs,
    dev: MementoDevice,
    proc: MementoProcess,
}

fn rig() -> Rig {
    rig_with(MementoConfig::paper_default())
}

fn rig_with(cfg: MementoConfig) -> Rig {
    let mut mem = PhysMem::new(4 << 30);
    let scratch = mem.alloc_frame().unwrap().base_addr();
    let mut dev = MementoDevice::new(cfg, 1, scratch);
    let mut os = TestOs::new();
    let proc = dev
        .attach_process(&mut mem, &mut os, MementoRegion::standard())
        .expect("attach with live backend");
    Rig {
        mem,
        sys: MemSystem::new(MemSystemConfig::paper_default(1)),
        tlbs: vec![Tlb::default()],
        os,
        dev,
        proc,
    }
}

impl Rig {
    fn alloc(&mut self, size: usize) -> VirtAddr {
        self.dev
            .obj_alloc(
                &mut self.mem,
                &mut self.sys,
                &mut self.os,
                0,
                &mut self.proc,
                size,
            )
            .expect("alloc")
            .addr
    }

    fn free(&mut self, va: VirtAddr) {
        self.dev
            .obj_free(
                &mut self.mem,
                &mut self.sys,
                &mut self.os,
                &mut self.tlbs,
                0,
                &mut self.proc,
                va,
            )
            .expect("free");
    }
}

#[test]
fn alloc_returns_distinct_in_region_addresses() {
    let mut r = rig();
    let region = r.proc.region();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..1000 {
        let a = r.alloc(24);
        assert!(region.contains(a));
        assert!(seen.insert(a.raw()), "address handed out twice");
    }
}

#[test]
fn first_alloc_misses_then_hits() {
    let mut r = rig();
    r.alloc(8);
    let s = r.dev.hot_stats(0);
    assert_eq!(s.alloc.misses, 1, "initialization counts as a miss");
    for _ in 0..100 {
        r.alloc(8);
    }
    let s = r.dev.hot_stats(0);
    assert_eq!(s.alloc.misses, 1);
    assert_eq!(s.alloc.hits, 100);
}

#[test]
fn hit_cost_is_two_cycles() {
    let mut r = rig();
    r.alloc(8);
    let out = r
        .dev
        .obj_alloc(&mut r.mem, &mut r.sys, &mut r.os, 0, &mut r.proc, 8)
        .unwrap();
    assert!(out.hot_hit);
    assert_eq!(out.obj_cycles, Cycles::new(2));
    assert_eq!(out.page_cycles, Cycles::ZERO);
}

#[test]
fn arena_rollover_after_256_allocations() {
    let mut r = rig();
    let addrs: Vec<VirtAddr> = (0..OBJECTS_PER_ARENA + 1).map(|_| r.alloc(8)).collect();
    // Objects 0..255 in arena 0, object 256 in arena 1.
    let region = r.proc.region();
    let first = region.locate(addrs[0]).unwrap();
    let last_in_first = region.locate(addrs[255]).unwrap();
    let rolled = region.locate(addrs[256]).unwrap();
    assert_eq!(first.arena_base, last_in_first.arena_base);
    assert_ne!(first.arena_base, rolled.arena_base);
    assert_eq!(r.dev.obj_stats().arena_inits, 2);
    assert_eq!(r.dev.obj_stats().alloc_list_ops, 1, "one full-list push");
}

#[test]
fn free_hit_reuses_slot() {
    let mut r = rig();
    let a = r.alloc(64);
    r.free(a);
    let b = r.alloc(64);
    assert_eq!(a, b, "lowest clear bit is the just-freed slot");
    assert_eq!(r.dev.hot_stats(0).free.hits, 1);
}

#[test]
fn double_free_raises_exception() {
    let mut r = rig();
    let a = r.alloc(32);
    r.free(a);
    let err = r
        .dev
        .obj_free(
            &mut r.mem,
            &mut r.sys,
            &mut r.os,
            &mut r.tlbs,
            0,
            &mut r.proc,
            a,
        )
        .unwrap_err();
    assert_eq!(err, MementoError::DoubleFree(a));
}

#[test]
fn free_outside_region_is_software_path() {
    let mut r = rig();
    let err = r
        .dev
        .obj_free(
            &mut r.mem,
            &mut r.sys,
            &mut r.os,
            &mut r.tlbs,
            0,
            &mut r.proc,
            VirtAddr::new(0x1234),
        )
        .unwrap_err();
    assert!(matches!(err, MementoError::NotMementoAddress(_)));
}

#[test]
fn oversized_alloc_is_software_path() {
    let mut r = rig();
    let err = r
        .dev
        .obj_alloc(&mut r.mem, &mut r.sys, &mut r.os, 0, &mut r.proc, 513)
        .unwrap_err();
    assert_eq!(err, MementoError::SizeTooLarge(513));
}

#[test]
fn free_miss_updates_header_in_memory() {
    let mut r = rig();
    // Fill one arena completely so it moves to the full list, plus one more
    // allocation to roll over.
    let addrs: Vec<VirtAddr> = (0..OBJECTS_PER_ARENA + 1).map(|_| r.alloc(8)).collect();
    // Free an object from the *first* (now full-listed) arena: a HOT miss.
    let misses_before = r.dev.hot_stats(0).free.misses;
    r.free(addrs[0]);
    assert_eq!(r.dev.hot_stats(0).free.misses, misses_before + 1);
    assert_eq!(
        r.dev.obj_stats().free_list_ops,
        1,
        "full -> available move is a list op"
    );
    // Allocating 256 more from the current arena then rolling over should
    // pick up the now-available old arena and reuse slot 0.
    let mut last = None;
    for _ in 0..OBJECTS_PER_ARENA {
        last = Some(r.alloc(8));
    }
    assert_eq!(last, Some(addrs[0]), "slot 0 of the first arena reused");
}

#[test]
fn emptied_cold_arena_is_reclaimed() {
    let mut r = rig();
    let addrs: Vec<VirtAddr> = (0..OBJECTS_PER_ARENA + 1).map(|_| r.alloc(8)).collect();
    let arenas_freed_before = r.dev.page_stats().arenas_freed;
    // Free every object of the first arena (all HOT misses; arena moves
    // full -> avail on the first, then empties on the last).
    for va in &addrs[..OBJECTS_PER_ARENA] {
        r.free(*va);
    }
    assert_eq!(r.dev.page_stats().arenas_freed, arenas_freed_before + 1);
    // Its pages were reclaimed: the header VA no longer translates.
    let region = r.proc.region();
    let base = region.locate(addrs[0]).unwrap().arena_base;
    assert!(r.proc.paging.page_table.translate(&r.mem, base).is_none());
}

#[test]
fn current_arena_not_reclaimed_when_emptied() {
    let mut r = rig();
    let a = r.alloc(128);
    r.free(a); // current arena now empty, stays cached
    assert_eq!(r.dev.page_stats().arenas_freed, 0);
    let b = r.alloc(128);
    assert_eq!(a, b);
}

#[test]
fn size_classes_use_disjoint_slices() {
    let mut r = rig();
    let a = r.alloc(8);
    let b = r.alloc(512);
    let region = r.proc.region();
    assert_ne!(
        region.locate(a).unwrap().class,
        region.locate(b).unwrap().class
    );
}

#[test]
fn bypass_grants_first_touch_only() {
    let mut r = rig();
    let a = r.alloc(512); // 512B object: 8 lines
    assert!(r.dev.bypass_check(0, &r.proc, a), "first touch bypasses");
    assert!(!r.dev.bypass_check(0, &r.proc, a), "second touch does not");
    assert!(
        r.dev.bypass_check(0, &r.proc, a.add(64)),
        "next line first touch"
    );
    assert_eq!(r.dev.obj_stats().bypass_grants, 2);
}

#[test]
fn bypass_disabled_config() {
    let mut r = rig_with(MementoConfig {
        bypass_enabled: false,
        ..MementoConfig::paper_default()
    });
    let a = r.alloc(512);
    assert!(!r.dev.bypass_check(0, &r.proc, a));
}

#[test]
fn bypass_counter_rolls_back_on_free() {
    let mut r = rig();
    let a = r.alloc(512);
    // Touch both lines regions: line indexes 0..8 for object 0.
    for l in 0..8u64 {
        assert!(r.dev.bypass_check(0, &r.proc, a.add(l * 64)));
    }
    r.free(a);
    // Counter rolled back to 0: the same lines bypass again after realloc.
    let b = r.alloc(512);
    assert_eq!(a, b);
    assert!(r.dev.bypass_check(0, &r.proc, b));
}

#[test]
fn demand_walk_backs_body_pages() {
    let mut r = rig();
    let a = r.alloc(512);
    // Body pages are not backed until touched.
    let page = a.page_base();
    assert!(r.proc.paging.page_table.translate(&r.mem, page).is_none());
    let (frame, cycles) = r
        .dev
        .translate_miss(&mut r.mem, &mut r.sys, &mut r.os, 0, &mut r.proc, page)
        .expect("walk with live backend");
    assert!(cycles > Cycles::ZERO);
    assert_eq!(
        r.proc
            .paging
            .page_table
            .translate(&r.mem, page)
            .unwrap()
            .frame,
        frame
    );
}

#[test]
fn hot_flush_and_lazy_restore() {
    let mut r = rig();
    let a = r.alloc(40);
    let flush_cycles = r.dev.flush_hot(&mut r.mem, &mut r.sys, 0, &mut r.proc);
    assert!(flush_cycles > Cycles::ZERO);
    assert_eq!(r.dev.hot_stats(0).flushes, 1);
    // Next alloc misses (reload) but continues in the same arena.
    let b = r.alloc(40);
    let region = r.proc.region();
    assert_eq!(
        region.locate(a).unwrap().arena_base,
        region.locate(b).unwrap().arena_base
    );
    // And the free of the original object now hits again.
    r.free(a);
    assert_eq!(r.dev.hot_stats(0).free.hits, 1);
}

#[test]
fn flush_then_free_miss_consults_saved_heads() {
    let mut r = rig();
    // Roll over one arena so the full list is non-empty, then flush.
    let addrs: Vec<VirtAddr> = (0..OBJECTS_PER_ARENA + 1).map(|_| r.alloc(16)).collect();
    r.dev.flush_hot(&mut r.mem, &mut r.sys, 0, &mut r.proc);
    // Free from the full-listed arena while the HOT is cold.
    r.free(addrs[0]);
    assert_eq!(r.dev.obj_stats().free_list_ops, 1);
    // Reload path continues allocating without corruption.
    for _ in 0..10 {
        r.alloc(16);
    }
}

#[test]
fn detach_returns_all_frames_to_os() {
    let mut r = rig();
    for _ in 0..1000 {
        r.alloc(8);
    }
    let in_use = r.proc.paging.frames_in_use();
    assert!(in_use > 0);
    let proc = r.proc;
    r.dev.detach_process(&mut r.mem, &mut r.os, proc, &[0]);
    assert_eq!(r.os.returned.len(), in_use);
}

#[test]
fn list_ops_are_rare() {
    let mut r = rig();
    // 10k allocations with quick frees: list ops should be well under 1%
    // of operations (paper Fig. 13).
    let mut live = Vec::new();
    for i in 0..10_000usize {
        let a = r.alloc(32);
        live.push(a);
        if i % 2 == 1 {
            let v = live.remove(live.len() - 2);
            r.free(v);
        }
    }
    let s = r.dev.obj_stats();
    let rate = (s.alloc_list_ops + s.free_list_ops) as f64 / (s.allocs + s.frees) as f64;
    assert!(rate < 0.01, "list op rate {rate} should be <1%");
}

#[test]
fn every_size_class_allocates() {
    let mut r = rig();
    for sc in SizeClass::all() {
        let size = sc.object_size();
        let a = r.alloc(size);
        let loc = r.proc.region().locate(a).unwrap();
        assert_eq!(loc.class, sc);
        assert_eq!(loc.object_index, 0);
        // Interior pointer of the object still resolves to it.
        let interior = a.add(size as u64 - 1);
        assert_eq!(r.proc.region().locate(interior).unwrap().object_index, 0);
    }
}

#[test]
fn remote_free_from_another_core() {
    // Paper §4: an object allocated by one thread may be freed by another.
    // The hardware-only path handles it as a HOT miss on the freeing core:
    // the arena header is fetched and updated through the (coherent)
    // memory hierarchy.
    let mut mem = PhysMem::new(4 << 30);
    let scratch = mem.alloc_frame().unwrap().base_addr();
    let mut dev = MementoDevice::new(MementoConfig::paper_default(), 2, scratch);
    let mut os = TestOs::new();
    let mut proc = dev
        .attach_process(&mut mem, &mut os, MementoRegion::standard())
        .expect("attach with live backend");
    let mut sys = MemSystem::new(MemSystemConfig::paper_default(2));
    let mut tlbs = vec![Tlb::default(), Tlb::default()];

    // Core 0 allocates.
    let a = dev
        .obj_alloc(&mut mem, &mut sys, &mut os, 0, &mut proc, 64)
        .unwrap();
    // Core 1 frees: must be a HOT miss on core 1 but fully correct.
    let out = dev
        .obj_free(&mut mem, &mut sys, &mut os, &mut tlbs, 1, &mut proc, a.addr)
        .unwrap();
    assert!(!out.hot_hit, "remote free misses the local HOT");
    // The coherence supply invalidated core 0's entry, so core 0 reloads
    // the fresh header on its next allocation and correctly reuses the
    // remotely-freed slot.
    let b = dev
        .obj_alloc(&mut mem, &mut sys, &mut os, 0, &mut proc, 64)
        .unwrap();
    assert!(!b.hot_hit, "invalidated entry reloads");
    assert_eq!(b.addr, a.addr, "coherent reuse of the freed slot");
    // A genuine double free (remote free of the same slot twice in a row)
    // is still detected through memory.
    dev.obj_free(&mut mem, &mut sys, &mut os, &mut tlbs, 1, &mut proc, b.addr)
        .unwrap();
    let err = dev
        .obj_free(&mut mem, &mut sys, &mut os, &mut tlbs, 1, &mut proc, b.addr)
        .unwrap_err();
    assert_eq!(err, MementoError::DoubleFree(b.addr));
}

#[test]
fn per_core_hots_are_isolated() {
    let mut mem = PhysMem::new(4 << 30);
    let scratch = mem.alloc_frame().unwrap().base_addr();
    let mut dev = MementoDevice::new(MementoConfig::paper_default(), 2, scratch);
    let mut os = TestOs::new();
    let mut proc = dev
        .attach_process(&mut mem, &mut os, MementoRegion::standard())
        .expect("attach with live backend");
    let mut sys = MemSystem::new(MemSystemConfig::paper_default(2));

    // Each core allocates from its own arena of the same class (per-core
    // bump pointers interleave arena VAs).
    let a0 = dev
        .obj_alloc(&mut mem, &mut sys, &mut os, 0, &mut proc, 32)
        .unwrap();
    let a1 = dev
        .obj_alloc(&mut mem, &mut sys, &mut os, 1, &mut proc, 32)
        .unwrap();
    let region = proc.region();
    let l0 = region.locate(a0.addr).unwrap();
    let l1 = region.locate(a1.addr).unwrap();
    assert_eq!(l0.class, l1.class);
    assert_ne!(l0.arena_base, l1.arena_base, "per-core arenas are disjoint");
    assert_eq!(dev.hot_stats(0).alloc.total(), 1);
    assert_eq!(dev.hot_stats(1).alloc.total(), 1);
}

#[test]
fn object_addresses_are_beyond_header_page() {
    let mut r = rig();
    let a = r.alloc(8);
    let loc = r.proc.region().locate(a).unwrap();
    assert!(a.offset_from(loc.arena_base) >= PAGE_SIZE as u64);
}
