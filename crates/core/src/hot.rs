//! The Hardware Object Table (HOT) — paper §3.1 and Fig. 5b.
//!
//! A per-core, direct-mapped metadata cache with one entry per size class
//! (64 entries ≈ 3.4 KB of SRAM). Each entry caches the most-recently-used
//! arena header of its class plus the class's available/full list head
//! pointers and the header's physical address. Hits complete in 2 cycles
//! with no memory traffic; misses load/write back headers through the
//! regular memory hierarchy.

use crate::arena::ArenaHeader;
use crate::size_class::{SizeClass, NUM_SIZE_CLASSES};
use memento_simcore::addr::PhysAddr;
use memento_simcore::stats::HitMiss;

/// One HOT entry (Fig. 5b): cached header + PA + list heads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotEntry {
    /// Whether the entry holds a valid arena.
    pub valid: bool,
    /// Cached copy of the arena header.
    pub header: ArenaHeader,
    /// Physical address of the header in memory (for writeback).
    pub pa: PhysAddr,
    /// Head of this class's available list (PA; 0 = empty).
    pub avail_head: u64,
    /// Head of this class's full list (PA; 0 = empty).
    pub full_head: u64,
    /// Whether the cached header diverged from memory.
    pub dirty: bool,
}

/// HOT statistics (drives Fig. 12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// `obj-alloc` hit/miss.
    pub alloc: HitMiss,
    /// `obj-free` hit/miss.
    pub free: HitMiss,
    /// Entries written back by context-switch flushes.
    pub flushed_entries: u64,
    /// Flush operations.
    pub flushes: u64,
}

impl HotStats {
    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: HotStats) -> HotStats {
        HotStats {
            alloc: self.alloc.delta(earlier.alloc),
            free: self.free.delta(earlier.free),
            flushed_entries: self.flushed_entries - earlier.flushed_entries,
            flushes: self.flushes - earlier.flushes,
        }
    }
}

/// The per-core Hardware Object Table.
#[derive(Clone, Debug)]
pub struct Hot {
    entries: Vec<HotEntry>,
    stats: HotStats,
}

impl Hot {
    /// An empty HOT.
    pub fn new() -> Self {
        Hot {
            entries: vec![HotEntry::default(); NUM_SIZE_CLASSES],
            stats: HotStats::default(),
        }
    }

    /// Immutable entry for `class` (direct-mapped — no associative search).
    pub fn entry(&self, class: SizeClass) -> &HotEntry {
        &self.entries[class.index()]
    }

    /// Mutable entry for `class`.
    pub fn entry_mut(&mut self, class: SizeClass) -> &mut HotEntry {
        &mut self.entries[class.index()]
    }

    /// Installs `entry` as the cached arena for `class`, replacing whatever
    /// the direct-mapped slot held. Debug builds check the invariants the
    /// sanitizer audits: only valid entries with a header PA are installed,
    /// and the bypass counter never exceeds the body's line count.
    pub fn install(&mut self, class: SizeClass, entry: HotEntry) {
        debug_assert!(entry.valid, "installing an invalid HOT entry for {class}");
        debug_assert!(
            entry.pa.raw() != 0,
            "HOT entry for {class} lacks a header physical address"
        );
        debug_assert!(
            entry.header.bypass_counter <= class.body_lines(),
            "bypass counter {} beyond the {} body lines of {class}",
            entry.header.bypass_counter,
            class.body_lines()
        );
        self.entries[class.index()] = entry;
    }

    /// Evicts (invalidates) the entry for `class`, returning the previous
    /// contents so the caller can write a dirty header back.
    pub fn evict(&mut self, class: SizeClass) -> HotEntry {
        std::mem::take(&mut self.entries[class.index()])
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HotStats {
        self.stats
    }

    /// Mutable statistics (the object-allocator FSM records hits/misses).
    pub fn stats_mut(&mut self) -> &mut HotStats {
        &mut self.stats
    }

    /// Invalidates every entry, returning the drained valid entries with
    /// their classes so the caller can write dirty headers back and save
    /// list heads per process.
    pub fn drain_for_flush(&mut self) -> Vec<(SizeClass, HotEntry)> {
        self.stats.flushes += 1;
        let mut out = Vec::new();
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.valid {
                self.stats.flushed_entries += 1;
                out.push((SizeClass::from_index(i), *e));
                *e = HotEntry::default();
            }
        }
        out
    }

    /// Iterates over `(class, entry)` for valid entries.
    pub fn iter_valid(&self) -> impl Iterator<Item = (SizeClass, &HotEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(|(i, e)| (SizeClass::from_index(i), e))
    }
}

impl Default for Hot {
    fn default() -> Self {
        Hot::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_simcore::addr::VirtAddr;

    #[test]
    fn starts_invalid() {
        let hot = Hot::new();
        for sc in SizeClass::all() {
            assert!(!hot.entry(sc).valid);
        }
        assert_eq!(hot.iter_valid().count(), 0);
    }

    #[test]
    fn entry_update_and_iter() {
        let mut hot = Hot::new();
        let sc = SizeClass::for_size(16).unwrap();
        let e = hot.entry_mut(sc);
        e.valid = true;
        e.header = ArenaHeader::fresh(VirtAddr::new(0x6000_0000_0000));
        e.pa = PhysAddr::new(0x8000);
        e.dirty = true;
        assert_eq!(hot.iter_valid().count(), 1);
        assert_eq!(hot.entry(sc).pa, PhysAddr::new(0x8000));
    }

    #[test]
    fn flush_drains_valid_entries() {
        let mut hot = Hot::new();
        for size in [8usize, 64, 512] {
            let sc = SizeClass::for_size(size).unwrap();
            let e = hot.entry_mut(sc);
            e.valid = true;
            e.pa = PhysAddr::new(size as u64 * 0x1000);
        }
        let drained = hot.drain_for_flush();
        assert_eq!(drained.len(), 3);
        assert_eq!(hot.iter_valid().count(), 0);
        assert_eq!(hot.stats().flushes, 1);
        assert_eq!(hot.stats().flushed_entries, 3);
        // Classes come back in index order.
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn install_and_evict_roundtrip() {
        let mut hot = Hot::new();
        let sc = SizeClass::for_size(32).unwrap();
        let entry = HotEntry {
            valid: true,
            header: ArenaHeader::fresh(VirtAddr::new(0x6000_0000_0000)),
            pa: PhysAddr::new(0x9000),
            avail_head: 0,
            full_head: 0,
            dirty: true,
        };
        hot.install(sc, entry);
        assert_eq!(hot.iter_valid().count(), 1);
        let evicted = hot.evict(sc);
        assert_eq!(evicted, entry);
        assert!(!hot.entry(sc).valid, "evicted slot is invalid");
        assert_eq!(hot.iter_valid().count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid HOT entry")]
    fn install_rejects_invalid_entries() {
        let mut hot = Hot::new();
        let sc = SizeClass::for_size(32).unwrap();
        hot.install(sc, HotEntry::default());
    }

    #[test]
    fn stats_mutation() {
        let mut hot = Hot::new();
        hot.stats_mut().alloc.hit();
        hot.stats_mut().free.miss();
        assert_eq!(hot.stats().alloc.hits, 1);
        assert_eq!(hot.stats().free.misses, 1);
    }
}
