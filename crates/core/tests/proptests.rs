//! Property-based tests of the Memento core data structures: the arena
//! bitmap, the region's address arithmetic, and the assembled device under
//! arbitrary allocation/free interleavings.

use memento_cache::{MemSystem, MemSystemConfig};
use memento_core::arena::ArenaHeader;
use memento_core::device::{MementoConfig, MementoDevice, MementoError};
use memento_core::page_alloc::PoolBackend;
use memento_core::region::MementoRegion;
use memento_core::size_class::{SizeClass, OBJECTS_PER_ARENA};
use memento_simcore::addr::VirtAddr;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_vm::tlb::Tlb;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena bitmap tracks set/clear operations exactly.
    #[test]
    fn arena_bitmap_model(ops in proptest::collection::vec((0usize..OBJECTS_PER_ARENA, any::<bool>()), 1..300)) {
        let mut header = ArenaHeader::fresh(VirtAddr::new(0x6000_0000_0000));
        let mut model: HashSet<usize> = HashSet::new();
        for (idx, set) in ops {
            // set/clear contract-check redundant transitions in debug
            // builds, so only issue state-changing ops (as the FSM does).
            if set {
                if !header.is_set(idx) {
                    header.set(idx);
                }
                model.insert(idx);
            } else {
                if header.is_set(idx) {
                    header.clear(idx);
                }
                model.remove(&idx);
            }
            prop_assert_eq!(header.is_set(idx), model.contains(&idx));
            prop_assert_eq!(header.live_objects() as usize, model.len());
            prop_assert_eq!(header.is_empty(), model.is_empty());
            prop_assert_eq!(header.is_full(), model.len() == OBJECTS_PER_ARENA);
            if let Some(free) = header.find_clear() {
                prop_assert!(!model.contains(&free));
            } else {
                prop_assert!(header.is_full());
            }
        }
    }

    /// Region address decomposition is the inverse of object-address
    /// composition for every class, arena, index, and interior offset.
    #[test]
    fn region_locate_roundtrip(
        class_idx in 0usize..64,
        arena_n in 0u64..50,
        obj_idx in 0usize..OBJECTS_PER_ARENA,
        interior in 0usize..512,
    ) {
        let region = MementoRegion::standard();
        let class = SizeClass::from_index(class_idx);
        let base = region.arena_at(class, arena_n);
        let addr = region.object_addr(class, base, obj_idx);
        let interior_addr = addr.add((interior % class.object_size()) as u64);
        let loc = region.locate(interior_addr).expect("object addresses locate");
        prop_assert_eq!(loc.class, class);
        prop_assert_eq!(loc.arena_base, base);
        prop_assert_eq!(loc.object_index, obj_idx);
    }
}

struct BumpOs(u64);

impl PoolBackend for BumpOs {
    fn grant_frames(&mut self, n: u64) -> Vec<Frame> {
        let start = self.0;
        self.0 += n;
        (start..start + n).map(Frame::from_number).collect()
    }
    fn accept_frames(&mut self, _frames: &[Frame]) {}
}

#[derive(Clone, Debug)]
enum DevOp {
    Alloc(usize),
    Free(usize),
}

fn dev_ops() -> impl Strategy<Value = Vec<DevOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..=512).prop_map(DevOp::Alloc),
            (0usize..128).prop_map(DevOp::Free),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary alloc/free interleavings the device never hands out
    /// overlapping objects, never loses a free, and always detects double
    /// frees.
    #[test]
    fn device_objects_never_overlap(ops in dev_ops()) {
        let mut mem = PhysMem::new(1 << 30);
        let scratch = mem.alloc_frame().unwrap().base_addr();
        let mut dev = MementoDevice::new(MementoConfig::paper_default(), 1, scratch);
        let mut os = BumpOs(4096);
        let mut sys = MemSystem::new(MemSystemConfig::paper_default(1));
        let mut tlbs = vec![Tlb::default()];
        let mut proc = dev
            .attach_process(&mut mem, &mut os, MementoRegion::standard())
            .expect("attach with live backend");

        // live: address -> rounded size.
        let mut live: HashMap<u64, usize> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                DevOp::Alloc(size) => {
                    let out = dev
                        .obj_alloc(&mut mem, &mut sys, &mut os, 0, &mut proc, size)
                        .expect("alloc within 512B");
                    let rounded = size.div_ceil(8) * 8;
                    let start = out.addr.raw();
                    // No overlap with any live object.
                    for (a, s) in &live {
                        let disjoint = start + rounded as u64 <= *a
                            || *a + *s as u64 <= start;
                        prop_assert!(disjoint, "overlap: [{start:#x}+{rounded}] vs [{a:#x}+{s}]");
                    }
                    live.insert(start, rounded);
                    order.push(start);
                }
                DevOp::Free(idx) => {
                    if !order.is_empty() {
                        let addr = order.remove(idx % order.len());
                        live.remove(&addr);
                        dev.obj_free(
                            &mut mem, &mut sys, &mut os, &mut tlbs, 0, &mut proc,
                            VirtAddr::new(addr),
                        )
                        .expect("free of live object");
                        // An immediate second free must raise the exception.
                        let err = dev
                            .obj_free(
                                &mut mem, &mut sys, &mut os, &mut tlbs, 0, &mut proc,
                                VirtAddr::new(addr),
                            )
                            .unwrap_err();
                        prop_assert!(matches!(err, MementoError::DoubleFree(_)));
                    }
                }
            }
        }

        // Every live object is still findable by the region arithmetic.
        for (addr, _) in live {
            prop_assert!(proc.region().locate(VirtAddr::new(addr)).is_some());
        }
    }
}
