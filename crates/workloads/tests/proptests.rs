//! Property-based tests of the trace generator: any spec in the supported
//! parameter space must produce a well-formed, deterministic trace whose
//! distributions track the spec.

use memento_workloads::event::Event;
use memento_workloads::generator::generate;
use memento_workloads::spec::{
    AllocatorKind, Category, Language, LifetimeProfile, SizeProfile, WorkloadSpec,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop_oneof![
            Just(Language::Python),
            Just(Language::Cpp),
            Just(Language::Golang)
        ],
        200_000u64..2_000_000,
        0.5f64..20.0,
        0.80f64..1.0,
        16.0f64..128.0,
        0.1f64..0.95,
        1.0f64..20.0,
        0.0f64..1.0,
        0.0f64..3.0,
        4usize..128,
        any::<u64>(),
    )
        .prop_map(
            |(
                language,
                insts,
                pki,
                small_frac,
                small_mean,
                short_frac,
                short_dist,
                exit_frac,
                touch,
                hot,
                seed,
            )| WorkloadSpec {
                name: "prop".into(),
                language,
                category: Category::Function,
                allocator: AllocatorKind::PyMalloc,
                total_instructions: insts,
                malloc_pki: pki,
                size: SizeProfile::typical(small_frac, small_mean),
                lifetime: LifetimeProfile {
                    short_fraction: short_frac,
                    short_mean_distance: short_dist,
                    exit_free_fraction: exit_frac,
                },
                touch_intensity: touch,
                hot_set: hot,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural well-formedness: unique ids, no touch/free of dead or
    /// unknown objects, touches in bounds, exactly one terminal Exit.
    #[test]
    fn traces_are_well_formed(spec in arb_spec()) {
        let trace = generate(&spec);
        let mut live: HashMap<u64, u32> = HashMap::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut exited = false;
        for e in &trace.events {
            prop_assert!(!exited, "event after Exit");
            match e {
                Event::Alloc { id, size } => {
                    prop_assert!(*size >= 8);
                    prop_assert!(seen.insert(id.0), "id reuse");
                    live.insert(id.0, *size);
                }
                Event::Free { id } => {
                    prop_assert!(live.remove(&id.0).is_some(), "bad free");
                }
                Event::Touch { id, offset, len, .. } => {
                    let size = *live.get(&id.0).expect("touch of dead object");
                    prop_assert!(offset + len <= size, "touch out of bounds");
                    prop_assert!(*len >= 1);
                }
                Event::Compute { instructions } => prop_assert!(*instructions >= 1),
                Event::Exit => exited = true,
            }
        }
        prop_assert!(exited);
    }

    /// Determinism: the same spec generates byte-identical traces.
    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.events, b.events);
    }

    /// The realized MallocPKI tracks the spec within tolerance.
    #[test]
    fn pki_tracks_spec(spec in arb_spec()) {
        let trace = generate(&spec);
        let realized = trace.malloc_pki();
        prop_assert!(
            (realized - spec.malloc_pki).abs() / spec.malloc_pki < 0.30,
            "realized {realized} vs spec {}",
            spec.malloc_pki
        );
    }

    /// The small-allocation fraction tracks the spec's size profile.
    #[test]
    fn size_fraction_tracks_spec(spec in arb_spec()) {
        let trace = generate(&spec);
        let (mut small, mut total) = (0u64, 0u64);
        for e in &trace.events {
            if let Event::Alloc { size, .. } = e {
                total += 1;
                if *size <= 512 {
                    small += 1;
                }
            }
        }
        prop_assume!(total > 200);
        let frac = small as f64 / total as f64;
        prop_assert!(
            (frac - spec.size.small_fraction).abs() < 0.08,
            "small fraction {frac} vs spec {}",
            spec.size.small_fraction
        );
    }
}
