//! Calibrated serverless workload generators.
//!
//! The paper evaluates fourteen function benchmarks (SeBS, FunctionBench,
//! pyperformance, DeathStarBench ports) across Python, C++ and Golang, three
//! OpenFaaS platform operations, and four data-processing applications. We
//! cannot run the real binaries under the Rust simulator, so this crate
//! generates **deterministic synthetic allocation traces** per named
//! workload, calibrated to the paper's own characterization:
//!
//! - ≥93 % of allocations under 512 B (Fig. 2), with per-category skews
//!   (98 % data-processing, 99 % platform);
//! - bimodal malloc-free distance (Fig. 3): ~71 % freed within 16
//!   same-class allocations, ~27 % living until function exit, with
//!   per-language profiles (C++ short-lived, Python mostly short, Golang
//!   batch-freed because GC never runs in a short function);
//! - per-workload MallocPKI ≥ 0.5 and heap working sets from hundreds of
//!   KB to tens of MB (§5).
//!
//! A trace is a stream of [`Event`]s (`Alloc`/`Free`/`Touch`/`Compute`/
//! `Exit`) that `memento-system` executes against either the baseline
//! software stack or the Memento hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod generator;
pub mod spec;
pub mod suite;

pub use analysis::{Characterization, JointQuadrants};
pub use event::{Event, ObjectId, Trace};
pub use generator::generate;
pub use spec::{AllocatorKind, Category, Language, LifetimeProfile, SizeProfile, WorkloadSpec};
pub use suite::{all_workloads, data_proc_workloads, function_workloads, platform_workloads};
