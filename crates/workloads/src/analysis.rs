//! Trace characterization: the measurements behind Fig. 2 (allocation
//! sizes), Fig. 3 (malloc-free distance) and Table 1 (joint distribution).

use crate::event::{Event, Trace};
use memento_simcore::stats::Histogram;
use std::collections::BTreeMap;

/// Fig. 2 geometry: 512-byte bins up to 4 KB, then overflow.
pub const SIZE_BIN_WIDTH: u64 = 512;
/// Number of regular size bins.
pub const SIZE_BINS: usize = 8;

/// Fig. 3 geometry: 16-wide distance bins up to 256, then overflow
/// ([257-Inf], which also holds never-freed objects).
pub const LIFETIME_BIN_WIDTH: u64 = 16;
/// Number of regular lifetime bins.
pub const LIFETIME_BINS: usize = 16;

/// Table 1's quadrants, as percentages of all allocations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JointQuadrants {
    /// ≤512 B, freed within 16 same-class allocations... (short-lived).
    pub small_short: f64,
    /// ≤512 B, long-lived.
    pub small_long: f64,
    /// >512 B, short-lived.
    pub large_short: f64,
    /// >512 B, long-lived.
    pub large_long: f64,
}

/// The full characterization of one trace.
#[derive(Clone, Debug)]
pub struct Characterization {
    /// Allocation-size histogram (Fig. 2).
    pub size_hist: Histogram,
    /// Malloc-free distance histogram (Fig. 3); overflow = long-lived.
    pub lifetime_hist: Histogram,
    /// Table 1 quadrants.
    pub quadrants: JointQuadrants,
}

impl Characterization {
    /// An empty characterization (for merging).
    pub fn empty() -> Self {
        Characterization {
            size_hist: Histogram::new(SIZE_BIN_WIDTH, SIZE_BINS),
            lifetime_hist: Histogram::new(LIFETIME_BIN_WIDTH, LIFETIME_BINS),
            quadrants: JointQuadrants::default(),
        }
    }

    /// Fraction of allocations ≤ 512 B. The histogram's first bin covers
    /// [0, 512), so count sizes of exactly 512 via the quadrants instead.
    pub fn small_fraction(&self) -> f64 {
        (self.quadrants.small_short + self.quadrants.small_long) / 100.0
    }

    /// Fraction of allocations freed within 16 same-class allocations.
    pub fn short16_fraction(&self) -> f64 {
        self.lifetime_hist.percent(0) / 100.0
    }

    /// Fraction of allocations that are long-lived (never freed or freed
    /// only at teardown).
    pub fn long_fraction(&self) -> f64 {
        self.lifetime_hist.percent_overflow() / 100.0
    }
}

fn class_key(size: u32) -> usize {
    if size as usize > 512 {
        64
    } else {
        (size as usize).div_ceil(8) - 1
    }
}

/// Characterizes one trace. Teardown frees (after the last allocation) are
/// counted as long-lived, matching the paper's treatment of objects that
/// "rely on OS deallocation when the function exits".
pub fn characterize(trace: &Trace) -> Characterization {
    let mut ch = Characterization::empty();
    // Index of the last Alloc event: frees after it are teardown frees.
    let last_alloc_idx = trace
        .events
        .iter()
        .rposition(|e| matches!(e, Event::Alloc { .. }))
        .unwrap_or(0);

    let mut class_counts = [0u64; 65];
    // id → (size, class, class count at allocation).
    let mut live: BTreeMap<u64, (u32, usize, u64)> = BTreeMap::new();
    let mut distances: Vec<(u32, Option<u64>)> = Vec::new();

    for (idx, event) in trace.events.iter().enumerate() {
        match event {
            Event::Alloc { id, size } => {
                let class = class_key(*size);
                class_counts[class] += 1;
                live.insert(id.0, (*size, class, class_counts[class]));
            }
            Event::Free { id } => {
                if let Some((size, class, at)) = live.remove(&id.0) {
                    if idx > last_alloc_idx {
                        distances.push((size, None)); // teardown: long-lived
                    } else {
                        distances.push((size, Some(class_counts[class] - at + 1)));
                    }
                }
            }
            _ => {}
        }
    }
    // Survivors are long-lived.
    for (_, (size, _, _)) in live {
        distances.push((size, None));
    }

    let total = distances.len() as f64;
    for (size, dist) in distances {
        // Fig. 2 bins are inclusive ([1,512], [513,1024], ...): shift by
        // one so a 512-byte allocation lands in the first bin.
        ch.size_hist.record(size as u64 - 1);
        match dist {
            // Fig. 3 bins are inclusive too: distance 16 is in [1-16].
            Some(d) => ch.lifetime_hist.record(d - 1),
            None => ch.lifetime_hist.record(u64::MAX),
        }
        let small = size <= 512;
        let short = matches!(dist, Some(d) if d <= 256);
        let q = &mut ch.quadrants;
        match (small, short) {
            (true, true) => q.small_short += 1.0,
            (true, false) => q.small_long += 1.0,
            (false, true) => q.large_short += 1.0,
            (false, false) => q.large_long += 1.0,
        }
    }
    if total > 0.0 {
        ch.quadrants.small_short *= 100.0 / total;
        ch.quadrants.small_long *= 100.0 / total;
        ch.quadrants.large_short *= 100.0 / total;
        ch.quadrants.large_long *= 100.0 / total;
    }
    ch
}

/// Merges characterizations (e.g. per-language aggregation for Fig. 2/3).
pub fn merge(items: &[Characterization]) -> Characterization {
    let mut out = Characterization::empty();
    let mut weight = 0.0;
    for item in items {
        out.size_hist.merge(&item.size_hist);
        out.lifetime_hist.merge(&item.lifetime_hist);
        let w = item.size_hist.total() as f64;
        out.quadrants.small_short += item.quadrants.small_short * w;
        out.quadrants.small_long += item.quadrants.small_long * w;
        out.quadrants.large_short += item.quadrants.large_short * w;
        out.quadrants.large_long += item.quadrants.large_long * w;
        weight += w;
    }
    if weight > 0.0 {
        out.quadrants.small_short /= weight;
        out.quadrants.small_long /= weight;
        out.quadrants.large_short /= weight;
        out.quadrants.large_long /= weight;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObjectId;

    fn mk(events: Vec<Event>) -> Trace {
        Trace {
            name: "t".into(),
            events,
        }
    }

    #[test]
    fn short_lived_distance_one() {
        let t = mk(vec![
            Event::Alloc {
                id: ObjectId(1),
                size: 8,
            },
            Event::Free { id: ObjectId(1) },
            Event::Alloc {
                id: ObjectId(2),
                size: 8,
            },
            Event::Exit,
        ]);
        let ch = characterize(&t);
        // Object 1 freed with distance 1 → bin 0; object 2 never freed →
        // overflow.
        assert_eq!(ch.lifetime_hist.count(0), 1);
        assert_eq!(ch.lifetime_hist.overflow(), 1);
        assert!((ch.quadrants.small_short - 50.0).abs() < 1e-9);
        assert!((ch.quadrants.small_long - 50.0).abs() < 1e-9);
    }

    #[test]
    fn distance_counts_same_class_only() {
        let t = mk(vec![
            Event::Alloc {
                id: ObjectId(1),
                size: 8,
            },
            // Ten allocations of a different class in between.
            Event::Alloc {
                id: ObjectId(2),
                size: 256,
            },
            Event::Alloc {
                id: ObjectId(3),
                size: 256,
            },
            Event::Free { id: ObjectId(1) },
            Event::Alloc {
                id: ObjectId(4),
                size: 8,
            },
            Event::Exit,
        ]);
        let ch = characterize(&t);
        // Object 1's same-class distance is 1 despite interleaved allocs.
        assert_eq!(ch.lifetime_hist.count(0), 1);
    }

    #[test]
    fn teardown_frees_count_long() {
        let t = mk(vec![
            Event::Alloc {
                id: ObjectId(1),
                size: 64,
            },
            Event::Alloc {
                id: ObjectId(2),
                size: 64,
            },
            // Teardown: frees after the last alloc.
            Event::Free { id: ObjectId(1) },
            Event::Free { id: ObjectId(2) },
            Event::Exit,
        ]);
        let ch = characterize(&t);
        assert_eq!(ch.lifetime_hist.overflow(), 2);
        assert!((ch.long_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn size_bins_follow_fig2() {
        let t = mk(vec![
            Event::Alloc {
                id: ObjectId(1),
                size: 100,
            },
            Event::Alloc {
                id: ObjectId(2),
                size: 512,
            },
            Event::Alloc {
                id: ObjectId(3),
                size: 1000,
            },
            Event::Exit,
        ]);
        let ch = characterize(&t);
        assert_eq!(ch.size_hist.count(0), 2, "[1,512] bin");
        assert_eq!(ch.size_hist.count(1), 1, "[513,1024] bin");
        assert!((ch.small_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_weighs_by_allocations() {
        let a = characterize(&mk(vec![
            Event::Alloc {
                id: ObjectId(1),
                size: 8,
            },
            Event::Exit,
        ]));
        let b = characterize(&mk(vec![
            Event::Alloc {
                id: ObjectId(1),
                size: 1000,
            },
            Event::Alloc {
                id: ObjectId(2),
                size: 1000,
            },
            Event::Exit,
        ]));
        let m = merge(&[a, b]);
        assert_eq!(m.size_hist.total(), 3);
        assert!((m.quadrants.small_long - 100.0 / 3.0).abs() < 1e-6);
    }
}
