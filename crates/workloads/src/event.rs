//! The trace event model executed by the machine.

use memento_simcore::json::{self, Value};
use std::fmt;

/// A workload-level object identifier (the machine maps ids to addresses at
/// execution time, since baseline and Memento place objects differently).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// One trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Allocate `size` bytes as object `id`.
    Alloc {
        /// Object id (unique per trace).
        id: ObjectId,
        /// Requested size in bytes.
        size: u32,
    },
    /// Free object `id` (for Golang this marks death; the GC model decides
    /// when storage is actually reclaimed).
    Free {
        /// Object id.
        id: ObjectId,
    },
    /// Access `len` bytes of object `id` starting at `offset`.
    Touch {
        /// Object id.
        id: ObjectId,
        /// Byte offset within the object.
        offset: u32,
        /// Bytes accessed.
        len: u32,
        /// Store (true) or load (false).
        write: bool,
    },
    /// Execute `instructions` of non-allocator application work.
    Compute {
        /// Instruction count.
        instructions: u32,
    },
    /// Function exits; the OS batch-frees remaining memory.
    Exit,
}

impl Event {
    /// Serializes to a JSON value: `{"Alloc":{"id":7,"size":24}}` for data
    /// variants, `"Exit"` for the unit variant, with object ids as bare
    /// numbers (the format serde's externally-tagged enums used, so traces
    /// saved by earlier builds still load).
    pub fn to_json(&self) -> Value {
        let tagged = |tag: &str, fields: &[(&str, u64)]| {
            let mut inner = Value::object();
            for (k, v) in fields {
                inner.set(k, *v);
            }
            let mut outer = Value::object();
            outer.set(tag, inner);
            outer
        };
        match *self {
            Event::Alloc { id, size } => tagged("Alloc", &[("id", id.0), ("size", size as u64)]),
            Event::Free { id } => tagged("Free", &[("id", id.0)]),
            Event::Touch {
                id,
                offset,
                len,
                write,
            } => {
                let mut inner = Value::object();
                inner
                    .set("id", id.0)
                    .set("offset", offset as u64)
                    .set("len", len as u64)
                    .set("write", write);
                let mut outer = Value::object();
                outer.set("Touch", inner);
                outer
            }
            Event::Compute { instructions } => {
                tagged("Compute", &[("instructions", instructions as u64)])
            }
            Event::Exit => Value::Str("Exit".into()),
        }
    }

    /// Parses a value produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        if v.as_str() == Some("Exit") {
            return Ok(Event::Exit);
        }
        let Value::Object(members) = v else {
            return Err(format!("expected event object, got {v}"));
        };
        let [(tag, body)] = members.as_slice() else {
            return Err("expected single-variant event object".into());
        };
        let field = |name: &str| -> Result<u64, String> {
            body.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{tag}: missing or bad field '{name}'"))
        };
        let narrow = |name: &str| -> Result<u32, String> {
            u32::try_from(field(name)?).map_err(|_| format!("{tag}: '{name}' out of range"))
        };
        match tag.as_str() {
            "Alloc" => Ok(Event::Alloc {
                id: ObjectId(field("id")?),
                size: narrow("size")?,
            }),
            "Free" => Ok(Event::Free {
                id: ObjectId(field("id")?),
            }),
            "Touch" => Ok(Event::Touch {
                id: ObjectId(field("id")?),
                offset: narrow("offset")?,
                len: narrow("len")?,
                write: body
                    .get("write")
                    .and_then(Value::as_bool)
                    .ok_or("Touch: missing or bad field 'write'")?,
            }),
            "Compute" => Ok(Event::Compute {
                instructions: narrow("instructions")?,
            }),
            other => Err(format!("unknown event variant '{other}'")),
        }
    }
}

/// A complete generated trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Workload name the trace was generated from.
    pub name: String,
    /// The events in program order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Serializes the whole trace as one JSON value.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("name", self.name.as_str()).set(
            "events",
            Value::Array(self.events.iter().map(Event::to_json).collect()),
        );
        doc
    }

    /// Parses a value produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("trace: missing or bad field 'name'")?
            .to_owned();
        let events = v
            .get("events")
            .and_then(Value::as_array)
            .ok_or("trace: missing or bad field 'events'")?
            .iter()
            .map(Event::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { name, events })
    }

    /// Serializes the trace to JSON for record/replay workflows.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string())
    }

    /// Loads a trace previously written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let doc = json::parse(&text).map_err(std::io::Error::other)?;
        Self::from_json(&doc).map_err(std::io::Error::other)
    }

    /// Number of `Alloc` events.
    pub fn alloc_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Alloc { .. }))
            .count()
    }

    /// Number of `Free` events.
    pub fn free_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Free { .. }))
            .count()
    }

    /// Total `Compute` instructions.
    pub fn total_instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Compute { instructions } => *instructions as u64,
                _ => 0,
            })
            .sum()
    }

    /// Mallocs per kilo-instruction (the paper's workload-selection
    /// criterion is ≥ 0.5 MallocPKI).
    pub fn malloc_pki(&self) -> f64 {
        let insts = self.total_instructions();
        if insts == 0 {
            return 0.0;
        }
        self.alloc_count() as f64 * 1000.0 / insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counters() {
        let t = Trace {
            name: "t".into(),
            events: vec![
                Event::Alloc {
                    id: ObjectId(1),
                    size: 8,
                },
                Event::Touch {
                    id: ObjectId(1),
                    offset: 0,
                    len: 8,
                    write: true,
                },
                Event::Compute { instructions: 1000 },
                Event::Free { id: ObjectId(1) },
                Event::Exit,
            ],
        };
        assert_eq!(t.alloc_count(), 1);
        assert_eq!(t.free_count(), 1);
        assert_eq!(t.total_instructions(), 1000);
        assert!((t.malloc_pki() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn save_load_roundtrip() {
        let t = Trace {
            name: "roundtrip".into(),
            events: vec![
                Event::Alloc {
                    id: ObjectId(1),
                    size: 64,
                },
                Event::Exit,
            ],
        };
        let dir = std::env::temp_dir().join("memento-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.events, t.events);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn events_serialize() {
        let e = Event::Alloc {
            id: ObjectId(7),
            size: 24,
        };
        let text = e.to_json().to_string();
        assert_eq!(text, r#"{"Alloc":{"id":7,"size":24}}"#);
        let back = Event::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(e, back);
        // Every variant shape survives the round trip.
        for e in [
            Event::Free { id: ObjectId(3) },
            Event::Touch {
                id: ObjectId(3),
                offset: 16,
                len: 8,
                write: true,
            },
            Event::Compute { instructions: 512 },
            Event::Exit,
        ] {
            let doc = json::parse(&e.to_json().to_string()).unwrap();
            assert_eq!(Event::from_json(&doc).unwrap(), e);
        }
    }
}
