//! The trace event model executed by the machine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A workload-level object identifier (the machine maps ids to addresses at
/// execution time, since baseline and Memento place objects differently).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// One trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Allocate `size` bytes as object `id`.
    Alloc {
        /// Object id (unique per trace).
        id: ObjectId,
        /// Requested size in bytes.
        size: u32,
    },
    /// Free object `id` (for Golang this marks death; the GC model decides
    /// when storage is actually reclaimed).
    Free {
        /// Object id.
        id: ObjectId,
    },
    /// Access `len` bytes of object `id` starting at `offset`.
    Touch {
        /// Object id.
        id: ObjectId,
        /// Byte offset within the object.
        offset: u32,
        /// Bytes accessed.
        len: u32,
        /// Store (true) or load (false).
        write: bool,
    },
    /// Execute `instructions` of non-allocator application work.
    Compute {
        /// Instruction count.
        instructions: u32,
    },
    /// Function exits; the OS batch-frees remaining memory.
    Exit,
}

/// A complete generated trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name the trace was generated from.
    pub name: String,
    /// The events in program order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Serializes the trace to JSON for record/replay workflows.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)
            .map_err(std::io::Error::other)
    }

    /// Loads a trace previously written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(std::io::Error::other)
    }

    /// Number of `Alloc` events.
    pub fn alloc_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Alloc { .. }))
            .count()
    }

    /// Number of `Free` events.
    pub fn free_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Free { .. }))
            .count()
    }

    /// Total `Compute` instructions.
    pub fn total_instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Compute { instructions } => *instructions as u64,
                _ => 0,
            })
            .sum()
    }

    /// Mallocs per kilo-instruction (the paper's workload-selection
    /// criterion is ≥ 0.5 MallocPKI).
    pub fn malloc_pki(&self) -> f64 {
        let insts = self.total_instructions();
        if insts == 0 {
            return 0.0;
        }
        self.alloc_count() as f64 * 1000.0 / insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counters() {
        let t = Trace {
            name: "t".into(),
            events: vec![
                Event::Alloc {
                    id: ObjectId(1),
                    size: 8,
                },
                Event::Touch {
                    id: ObjectId(1),
                    offset: 0,
                    len: 8,
                    write: true,
                },
                Event::Compute { instructions: 1000 },
                Event::Free { id: ObjectId(1) },
                Event::Exit,
            ],
        };
        assert_eq!(t.alloc_count(), 1);
        assert_eq!(t.free_count(), 1);
        assert_eq!(t.total_instructions(), 1000);
        assert!((t.malloc_pki() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn save_load_roundtrip() {
        let t = Trace {
            name: "roundtrip".into(),
            events: vec![
                Event::Alloc {
                    id: ObjectId(1),
                    size: 64,
                },
                Event::Exit,
            ],
        };
        let dir = std::env::temp_dir().join("memento-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.events, t.events);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn events_serialize() {
        let e = Event::Alloc {
            id: ObjectId(7),
            size: 24,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
