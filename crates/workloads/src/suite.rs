//! The 23 named workloads of the paper's evaluation (§5), with calibrated
//! generator parameters.
//!
//! Instruction volumes are scaled down (millions instead of billions) so a
//! full sweep simulates in seconds; MallocPKI, size and lifetime shapes are
//! preserved, which is what Memento's benefit depends on.

use crate::spec::{Category, Language, LifetimeProfile, SizeProfile, WorkloadSpec};

/// Builder for one suite entry.
#[allow(clippy::too_many_arguments)]
fn spec(
    name: &str,
    language: Language,
    category: Category,
    total_instructions: u64,
    malloc_pki: f64,
    small_fraction: f64,
    small_mean_bytes: f64,
    touch_intensity: f64,
    hot_set: usize,
    seed: u64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        language,
        category,
        allocator: WorkloadSpec::default_allocator(language, category),
        total_instructions,
        malloc_pki,
        size: SizeProfile::typical(small_fraction, small_mean_bytes),
        lifetime: LifetimeProfile::for_language(language),
        touch_intensity,
        hot_set,
        seed,
    }
}

/// The sixteen function workloads (nine Python, four C++ DeathStarBench
/// ports, three Golang ports), in Fig. 8 order.
pub fn function_workloads() -> Vec<WorkloadSpec> {
    use Category::Function as F;
    use Language::{Cpp, Golang, Python};
    let mut v = vec![
        // SeBS: dynamic-html — template rendering, allocation- and
        // bandwidth-hungry (the paper's peak speedup and bypass showcase).
        spec("html", Python, F, 6_000_000, 2.84, 0.95, 36.0, 2.6, 48, 101),
        // SeBS: image-recognition — tensor-heavy, more large allocations.
        {
            let mut s = spec("ir", Python, F, 3_000_000, 2.84, 0.88, 64.0, 3.0, 64, 102);
            s.size.large_mean_bytes = 8192.0;
            s
        },
        // SeBS: graph-bfs — pointer-chasing graph build.
        spec("bfs", Python, F, 8_000_000, 1.30, 0.96, 36.0, 2.0, 64, 103),
        // SeBS: dna-visualisation — sequence buffers.
        {
            let mut s = spec("dna", Python, F, 5_000_000, 1.85, 0.90, 56.0, 2.4, 48, 104);
            s.size.large_mean_bytes = 6144.0;
            s
        },
        // FunctionBench: pyaes — tight crypto loops, small working set.
        {
            let mut s = spec("aes", Python, F, 10_000_000, 1.12, 0.97, 32.0, 1.2, 16, 105);
            s.lifetime.short_fraction = 0.88;
            s.lifetime.short_mean_distance = 4.0;
            s
        },
        // FunctionBench: feature_reducer.
        spec("fr", Python, F, 10_000_000, 0.99, 0.94, 40.0, 2.0, 48, 106),
        // pyperformance: json_loads — parser churn, small working set.
        {
            let mut s = spec("jl", Python, F, 10_000_000, 1.19, 0.96, 32.0, 1.4, 24, 107);
            s.lifetime.short_fraction = 0.90;
            s.lifetime.short_mean_distance = 4.0;
            s
        },
        // pyperformance: json_dumps.
        spec("jd", Python, F, 10_000_000, 0.82, 0.96, 36.0, 1.0, 32, 108),
        // pyperformance: mako templates.
        spec("mk", Python, F, 8_000_000, 1.31, 0.95, 40.0, 2.2, 48, 109),
        // DeathStarBench: UrlShorten.
        spec("US", Cpp, F, 4_000_000, 2.30, 0.93, 56.0, 1.6, 32, 110),
        // DeathStarBench: UserMentions — string-heavy, bandwidth-sensitive.
        {
            let mut s = spec("UM", Cpp, F, 6_000_000, 0.62, 0.93, 80.0, 2.4, 48, 111);
            s.lifetime.short_fraction = 0.55;
            s
        },
        // DeathStarBench: ComposeMedia — media buffers.
        {
            let mut s = spec("CM", Cpp, F, 2_000_000, 3.03, 0.90, 96.0, 2.6, 48, 112);
            s.size.large_mean_bytes = 4096.0;
            s.lifetime.short_fraction = 0.55;
            s
        },
        // DeathStarBench: MovieID.
        spec("MI", Cpp, F, 4_000_000, 1.09, 0.94, 48.0, 1.4, 32, 113),
        // Golang ports of dynamic-html / graph-bfs / pyaes.
        spec(
            "html-go", Golang, F, 4_000_000, 1.52, 0.95, 72.0, 2.2, 48, 114,
        ),
        spec(
            "bfs-go", Golang, F, 4_000_000, 1.14, 0.96, 48.0, 1.8, 64, 115,
        ),
        {
            let mut s = spec(
                "aes-go", Golang, F, 6_000_000, 0.62, 0.97, 40.0, 1.2, 16, 116,
            );
            s.lifetime.short_fraction = 0.40;
            s
        },
    ];
    // Functions communicate with a Redis backend over RPC; that cost is
    // small (§5) and outside Memento's scope, so it is folded into compute.
    for s in &mut v {
        debug_assert!(s.malloc_pki >= 0.5, "paper selects ≥0.5 MallocPKI");
    }
    v
}

/// The four long-running data-processing applications (§5): two key-value
/// stores and two in-memory databases, measured at steady state with a
/// tiny-object value-size distribution.
pub fn data_proc_workloads() -> Vec<WorkloadSpec> {
    use Category::DataProc as D;
    use Language::Cpp;
    vec![
        // Redis: SDS strings for keys/values/temporaries (biggest gainer).
        {
            let mut s = spec("Redis", Cpp, D, 4_000_000, 3.30, 0.98, 48.0, 2.2, 64, 201);
            s.lifetime.short_fraction = 0.93;
            s.lifetime.short_mean_distance = 5.0;
            s
        },
        // Memcached: slab-friendly steady churn.
        {
            let mut s = spec(
                "Memcached",
                Cpp,
                D,
                4_000_000,
                0.87,
                0.98,
                56.0,
                2.0,
                64,
                202,
            );
            s.lifetime.short_fraction = 0.95;
            s
        },
        // Silo: in-memory OLTP.
        {
            let mut s = spec("Silo", Cpp, D, 6_000_000, 1.35, 0.97, 64.0, 2.0, 64, 203);
            s.lifetime.short_fraction = 0.94;
            s
        },
        // SQLite3: parser allocates many small short-lived objects.
        {
            let mut s = spec(
                "SQLite3", Cpp, D, 4_000_000, 0.50, 0.97, 56.0, 0.88, 48, 204,
            );
            s.lifetime.short_fraction = 0.96;
            s.lifetime.short_mean_distance = 4.0;
            s
        },
    ]
}

/// The three OpenFaaS platform operations (§5): `up`, `deploy`, `invoke`.
/// Golang services measured over their regions of interest; allocations
/// are overwhelmingly small and long-lived under the Go GC.
pub fn platform_workloads() -> Vec<WorkloadSpec> {
    use Category::Platform as P;
    use Language::Golang;
    let mut v = vec![
        spec("up", Golang, P, 8_000_000, 0.50, 0.99, 56.0, 0.5, 64, 301),
        spec(
            "deploy", Golang, P, 8_000_000, 0.50, 0.99, 52.0, 1.0, 64, 302,
        ),
        spec(
            "invoke", Golang, P, 8_000_000, 0.83, 0.99, 48.0, 1.0, 64, 303,
        ),
    ];
    for s in &mut v {
        // Platform services are long-running: most allocations live until
        // a GC cycle rather than a function exit (§2.2: "most allocations
        // are long-lived due to the Golang garbage collection").
        // Objects die quickly but storage is only reclaimed by periodic
        // GC cycles, which is why the paper classifies platform
        // allocations as long-lived.
        s.lifetime.short_fraction = 0.75;
        s.lifetime.short_mean_distance = 8.0;
    }
    v
}

/// All 23 workloads in Fig. 8 order (functions, data processing, platform).
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut v = function_workloads();
    v.extend(data_proc_workloads());
    v.extend(platform_workloads());
    v
}

/// Looks a workload up by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::characterize;
    use crate::generator::generate;

    #[test]
    fn suite_has_23_workloads() {
        assert_eq!(function_workloads().len(), 16);
        assert_eq!(data_proc_workloads().len(), 4);
        assert_eq!(platform_workloads().len(), 3);
        assert_eq!(all_workloads().len(), 23);
    }

    #[test]
    fn names_are_unique_and_findable() {
        let all = all_workloads();
        let names: std::collections::HashSet<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 23);
        assert!(by_name("Redis").is_some());
        assert!(by_name("html").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_meets_pki_threshold() {
        for s in all_workloads() {
            assert!(s.malloc_pki >= 0.5, "{} below 0.5 MallocPKI", s.name);
        }
    }

    #[test]
    fn aggregate_small_fraction_matches_fig2() {
        // Paper: 93% of function allocations are < 512B; 98% data-proc,
        // 99% platform.
        let mut all = Vec::new();
        for s in function_workloads() {
            all.push(characterize(&generate(&s)));
        }
        let merged = crate::analysis::merge(&all);
        let frac = merged.small_fraction();
        assert!(
            (0.88..=0.97).contains(&frac),
            "function small fraction {frac} out of band"
        );
    }

    #[test]
    fn function_lifetimes_are_bimodal() {
        // Paper: ~71% freed within 16 same-class allocations, ~27%
        // long-lived.
        let mut all = Vec::new();
        for s in function_workloads() {
            all.push(characterize(&generate(&s)));
        }
        let merged = crate::analysis::merge(&all);
        let short16 = merged.short16_fraction();
        let long = merged.long_fraction();
        assert!(
            (0.55..=0.85).contains(&short16),
            "short16 {short16} out of band"
        );
        assert!((0.15..=0.45).contains(&long), "long {long} out of band");
    }

    #[test]
    fn language_lifetime_ordering_holds() {
        let gen_short = |name: &str| {
            let s = by_name(name).unwrap();
            characterize(&generate(&s)).short16_fraction()
        };
        let cpp = gen_short("US");
        let py = gen_short("html");
        let go = gen_short("html-go");
        assert!(cpp > py * 0.9, "C++ at least as short-lived as Python");
        assert!(py > go, "Python shorter-lived than Golang");
    }

    #[test]
    fn traces_generate_for_every_workload() {
        for s in all_workloads() {
            let t = generate(&s);
            assert!(t.alloc_count() > 100, "{} too few allocs", s.name);
            assert!(
                (t.malloc_pki() - s.malloc_pki).abs() / s.malloc_pki < 0.25,
                "{} pki drift: {} vs {}",
                s.name,
                t.malloc_pki(),
                s.malloc_pki
            );
        }
    }
}
