//! `memento-trace`: generate, inspect, and characterize workload traces
//! from the command line.
//!
//! ```text
//! memento-trace list                      # the 23 named workloads
//! memento-trace gen <name> [out.json]     # generate (and optionally save)
//! memento-trace stats <trace.json>        # characterize a saved trace
//! ```

use memento_workloads::analysis::characterize;
use memento_workloads::event::Trace;
use memento_workloads::generator::generate;
use memento_workloads::suite;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: memento-trace <list | gen <workload> [out.json] | stats <trace.json>>");
    ExitCode::FAILURE
}

fn print_summary(trace: &Trace) {
    let ch = characterize(trace);
    println!("trace '{}'", trace.name);
    println!("  events:        {}", trace.events.len());
    println!("  allocations:   {}", trace.alloc_count());
    println!("  frees:         {}", trace.free_count());
    println!("  instructions:  {}", trace.total_instructions());
    println!("  MallocPKI:     {:.2}", trace.malloc_pki());
    println!("  <=512B:        {:.1}%", ch.small_fraction() * 100.0);
    println!(
        "  short-lived:   {:.1}% freed within 16 same-class allocations",
        ch.short16_fraction() * 100.0
    );
    println!(
        "  long-lived:    {:.1}% survive to teardown",
        ch.long_fraction() * 100.0
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<12} {:<8} {:<10} {:>12} {:>6}",
                "name", "language", "category", "instructions", "pki"
            );
            for spec in suite::all_workloads() {
                println!(
                    "{:<12} {:<8} {:<10} {:>12} {:>6.2}",
                    spec.name,
                    spec.language.to_string(),
                    spec.category.to_string(),
                    spec.total_instructions,
                    spec.malloc_pki
                );
            }
            ExitCode::SUCCESS
        }
        Some("gen") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(spec) = suite::by_name(name) else {
                eprintln!("unknown workload '{name}' (try `memento-trace list`)");
                return ExitCode::FAILURE;
            };
            let trace = generate(&spec);
            print_summary(&trace);
            if let Some(out) = args.get(2) {
                if let Err(e) = trace.save(out) {
                    eprintln!("failed to save {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  saved to:      {out}");
            }
            ExitCode::SUCCESS
        }
        Some("stats") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match Trace::load(path) {
                Ok(trace) => {
                    print_summary(&trace);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("failed to load {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
