//! The deterministic trace generator.
//!
//! Produces an event stream with the spec's MallocPKI, size distribution,
//! and bimodal lifetime behaviour. Short-lived objects are freed after a
//! geometric number of same-class allocations (Fig. 3's malloc-free
//! distance metric); long-lived objects survive to exit, where a
//! per-language fraction is freed explicitly (interpreter teardown /
//! destructors) and the rest are batch-freed by the OS.

use crate::event::{Event, ObjectId, Trace};
use crate::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Cap on short-lived malloc-free distance (stays within Fig. 3's axis).
const MAX_SHORT_DISTANCE: u64 = 240;

/// Index used for the "large" pseudo-class when tracking distances.
const LARGE_CLASS: usize = 64;

fn geometric(rng: &mut StdRng, mean: f64) -> u64 {
    // Geometric with the given mean (≥ 1): inverse-transform sampling.
    let p = (1.0 / mean.max(1.0)).clamp(1e-6, 1.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    let val = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    1 + val as u64
}

fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

fn sample_size(rng: &mut StdRng, spec: &WorkloadSpec) -> u32 {
    if rng.gen_range(0.0..1.0) < spec.size.small_fraction {
        // Small: geometric over 8-byte classes around the mean.
        let mean_class = (spec.size.small_mean_bytes / 8.0).max(1.0);
        let class = geometric(rng, mean_class).min(64);
        (class * 8) as u32
    } else {
        let extra = exponential(rng, spec.size.large_mean_bytes - 512.0);
        let size = 513.0 + extra;
        (size.min(spec.size.large_max_bytes as f64)) as u32
    }
}

fn class_index(size: u32) -> usize {
    if size as usize > 512 {
        LARGE_CLASS
    } else {
        (size as usize).div_ceil(8) - 1
    }
}

/// Generates the trace for `spec`. Deterministic in `spec.seed`.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_allocs = spec.expected_allocs().max(1);
    let compute_per_alloc = (1000.0 / spec.malloc_pki.max(0.001)) as u64;

    let mut events = Vec::with_capacity(n_allocs as usize * 5);
    let mut next_id = 0u64;
    // Allocation counter per size class (distance is measured in same-class
    // allocations, matching the paper's metric).
    let mut class_counts = [0u64; 65];
    // Scheduled short-lived frees: per class, due-count → object ids.
    let mut pending: Vec<BTreeMap<u64, Vec<(ObjectId, u32)>>> =
        (0..65).map(|_| BTreeMap::new()).collect();
    // Long-lived survivors.
    let mut long_lived: Vec<(ObjectId, u32)> = Vec::new();
    // Hot set for re-touches: (id, size).
    let mut hot: Vec<(ObjectId, u32)> = Vec::new();

    #[allow(clippy::explicit_counter_loop)] // next_id also grows via frees
    for _ in 0..n_allocs {
        // Application compute between allocations (±30% jitter).
        let jitter = rng.gen_range(0.7..1.3);
        let insts = ((compute_per_alloc as f64) * jitter).max(1.0) as u32;
        events.push(Event::Compute {
            instructions: insts,
        });

        // Re-touch hot objects (temporal locality of freshly built data).
        let touches = spec.touch_intensity * rng.gen_range(0.5..1.5);
        for _ in 0..touches.round() as usize {
            if hot.is_empty() {
                break;
            }
            let (id, size) = hot[rng.gen_range(0..hot.len())];
            let max_off = (size.saturating_sub(8)) / 8 * 8;
            let offset = if max_off == 0 {
                0
            } else {
                rng.gen_range(0..=(max_off / 8)) * 8
            };
            let len = (size - offset).clamp(1, 64);
            events.push(Event::Touch {
                id,
                offset,
                len,
                write: rng.gen_bool(0.4),
            });
        }

        // The allocation itself.
        let size = sample_size(&mut rng, spec);
        let id = ObjectId(next_id);
        next_id += 1;
        events.push(Event::Alloc { id, size });
        // Objects are initialized right after allocation.
        events.push(Event::Touch {
            id,
            offset: 0,
            len: size,
            write: true,
        });

        let class = class_index(size);
        class_counts[class] += 1;

        // Lifetime decision.
        if rng.gen_range(0.0..1.0) < spec.lifetime.short_fraction {
            let d = geometric(&mut rng, spec.lifetime.short_mean_distance).min(MAX_SHORT_DISTANCE);
            pending[class]
                .entry(class_counts[class] + d)
                .or_default()
                .push((id, size));
            hot.push((id, size));
        } else {
            long_lived.push((id, size));
            hot.push((id, size));
        }
        if hot.len() > spec.hot_set {
            hot.remove(0);
        }

        // Emit frees that came due for this class.
        let due: Vec<u64> = pending[class]
            .range(..=class_counts[class])
            .map(|(k, _)| *k)
            .collect();
        for k in due {
            for (fid, _fsize) in pending[class].remove(&k).unwrap_or_default() {
                hot.retain(|(h, _)| *h != fid);
                events.push(Event::Free { id: fid });
            }
        }
    }

    // Drain short-lived objects whose due count never arrived.
    for class in pending.iter_mut() {
        for (_, ids) in std::mem::take(class) {
            for (fid, _) in ids {
                hot.retain(|(h, _)| *h != fid);
                events.push(Event::Free { id: fid });
            }
        }
    }

    // Exit-time teardown frees (Python refcount teardown, C++ destructors).
    let n_exit_frees = (long_lived.len() as f64 * spec.lifetime.exit_free_fraction) as usize;
    for (fid, _) in long_lived.drain(..n_exit_frees.min(long_lived.len())) {
        events.push(Event::Free { id: fid });
    }

    events.push(Event::Exit);
    Trace {
        name: spec.name.clone(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AllocatorKind, Category, Language, LifetimeProfile, SizeProfile};
    use std::collections::HashSet;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            language: Language::Python,
            category: Category::Function,
            allocator: AllocatorKind::PyMalloc,
            total_instructions: 1_000_000,
            malloc_pki: 10.0,
            size: SizeProfile::typical(0.93, 64.0),
            lifetime: LifetimeProfile::for_language(Language::Python),
            touch_intensity: 1.0,
            hot_set: 32,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s = spec();
        let a = generate(&s);
        s.seed = 43;
        let b = generate(&s);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn pki_close_to_spec() {
        let t = generate(&spec());
        let pki = t.malloc_pki();
        assert!((pki - 10.0).abs() < 1.5, "pki {pki} far from spec");
    }

    #[test]
    fn trace_is_well_formed() {
        let t = generate(&spec());
        let mut live: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut exited = false;
        for e in &t.events {
            assert!(!exited, "no events after Exit");
            match e {
                Event::Alloc { id, size } => {
                    assert!(*size >= 8);
                    assert!(seen.insert(id.0), "id reused");
                    live.insert(id.0);
                }
                Event::Free { id } => {
                    assert!(live.remove(&id.0), "free of dead/unknown object");
                }
                Event::Touch {
                    id, offset, len, ..
                } => {
                    assert!(live.contains(&id.0), "touch of dead object");
                    assert!(*len >= 1);
                    assert!(offset % 8 == 0);
                }
                Event::Compute { instructions } => assert!(*instructions >= 1),
                Event::Exit => exited = true,
            }
        }
        assert!(exited, "trace must end with Exit");
    }

    #[test]
    fn touches_stay_in_bounds() {
        let t = generate(&spec());
        let mut sizes = std::collections::HashMap::new();
        for e in &t.events {
            match e {
                Event::Alloc { id, size } => {
                    sizes.insert(id.0, *size);
                }
                Event::Touch {
                    id, offset, len, ..
                } => {
                    let size = sizes[&id.0];
                    assert!(
                        offset + len <= size,
                        "touch beyond object: off {offset} len {len} size {size}"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn size_distribution_mostly_small() {
        let t = generate(&spec());
        let (mut small, mut total) = (0u64, 0u64);
        for e in &t.events {
            if let Event::Alloc { size, .. } = e {
                total += 1;
                if *size <= 512 {
                    small += 1;
                }
            }
        }
        let frac = small as f64 / total as f64;
        assert!((frac - 0.93).abs() < 0.03, "small fraction {frac}");
    }

    #[test]
    fn go_traces_free_nothing_before_gc() {
        let mut s = spec();
        s.language = Language::Golang;
        s.lifetime = LifetimeProfile::for_language(Language::Golang);
        let t = generate(&s);
        // Go still emits death marks for short-lived objects, but no
        // exit-frees (exit_free_fraction = 0).
        let frees = t.free_count();
        let allocs = t.alloc_count();
        assert!(frees < allocs / 2, "most Go objects die with the process");
    }
}
