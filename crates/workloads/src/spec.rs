//! Workload specifications: the calibrated knobs each named workload sets.

use std::fmt;

/// Language runtime of the original benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Language {
    /// CPython 3.8 (pymalloc).
    Python,
    /// C/C++ against jemalloc.
    Cpp,
    /// Golang 1.13 runtime allocator.
    Golang,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Language::Python => f.write_str("Python"),
            Language::Cpp => f.write_str("C++"),
            Language::Golang => f.write_str("Golang"),
        }
    }
}

/// Workload category in the paper's grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Serverless function.
    Function,
    /// Long-running data-processing application.
    DataProc,
    /// Serverless platform operation (OpenFaaS).
    Platform,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Function => f.write_str("function"),
            Category::DataProc => f.write_str("data-proc"),
            Category::Platform => f.write_str("platform"),
        }
    }
}

/// Which software allocator model the baseline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorKind {
    /// CPython pymalloc.
    PyMalloc,
    /// pymalloc with a non-default arena size (the §6.6 software-allocator
    /// tuning study).
    PyMallocTuned {
        /// Arena size in KiB (default 256).
        arena_kb: u64,
    },
    /// jemalloc with the given pool geometry. Function workloads use a
    /// generously pre-mapped pool (4 MB / 64 pre-faulted pages — Table 2's
    /// 96 %-user C++ split); data-processing uses a small pool with
    /// frequent extensions, reproducing their 62 % kernel share.
    JeMalloc {
        /// Pre-mapped pool in KiB.
        pool_kb: u64,
        /// Pages pre-faulted at init.
        prefault_pages: u64,
    },
    /// The Go runtime allocator (span-based, GC'd).
    GoAlloc,
}

/// Allocation-size distribution knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeProfile {
    /// Fraction of allocations ≤ 512 B (Fig. 2: ≥0.93).
    pub small_fraction: f64,
    /// Mean small-object size in bytes (geometric over 8-byte classes).
    pub small_mean_bytes: f64,
    /// Mean large-object size in bytes (exponential above 512).
    pub large_mean_bytes: f64,
    /// Cap on large objects.
    pub large_max_bytes: u64,
}

impl SizeProfile {
    /// A generic language profile.
    pub fn typical(small_fraction: f64, small_mean_bytes: f64) -> Self {
        SizeProfile {
            small_fraction,
            small_mean_bytes,
            large_mean_bytes: 2048.0,
            large_max_bytes: 64 * 1024,
        }
    }
}

/// Object-lifetime distribution knobs (Fig. 3's bimodal shape).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeProfile {
    /// Fraction of objects freed shortly after allocation.
    pub short_fraction: f64,
    /// Mean malloc-free distance (same-class allocations) of short-lived
    /// objects; geometric, so most fall in Fig. 3's [1-16] bin.
    pub short_mean_distance: f64,
    /// Of the long-lived remainder, the fraction explicitly freed at exit
    /// (Python interpreter teardown refcounting / C++ destructors); the
    /// rest die with the process (Golang's never-collected garbage).
    pub exit_free_fraction: f64,
}

impl LifetimeProfile {
    /// Per-language defaults from §2.2.
    pub fn for_language(lang: Language) -> Self {
        match lang {
            // "for Python they are primarily short-lived except for a few
            // long-lived ones" — interpreter globals freed at teardown.
            Language::Python => LifetimeProfile {
                short_fraction: 0.74,
                short_mean_distance: 6.0,
                exit_free_fraction: 0.85,
            },
            // "for C++ the majority of allocations are short-lived".
            Language::Cpp => LifetimeProfile {
                short_fraction: 0.90,
                short_mean_distance: 5.0,
                exit_free_fraction: 0.95,
            },
            // "Golang allocations are long-lived because garbage collection
            // is not invoked due to the short runtime".
            Language::Golang => LifetimeProfile {
                short_fraction: 0.30,
                short_mean_distance: 8.0,
                exit_free_fraction: 0.0,
            },
        }
    }
}

/// A complete workload specification.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Paper name ("dh", "ir", "Redis", "deploy", ...).
    pub name: String,
    /// Language runtime.
    pub language: Language,
    /// Paper grouping.
    pub category: Category,
    /// Baseline software allocator.
    pub allocator: AllocatorKind,
    /// Application compute volume (instructions; scaled-down from the
    /// paper's sub-second-to-seconds runs to keep simulation tractable).
    pub total_instructions: u64,
    /// Mallocs per kilo-instruction (paper selects ≥ 0.5).
    pub malloc_pki: f64,
    /// Size distribution.
    pub size: SizeProfile,
    /// Lifetime distribution.
    pub lifetime: LifetimeProfile,
    /// Average re-touches of each live hot object between allocations
    /// (drives cache/DRAM traffic and bandwidth sensitivity).
    pub touch_intensity: f64,
    /// Hot-set size (recently allocated objects kept warm).
    pub hot_set: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The default allocator for a (language, category) pair.
    pub fn default_allocator(language: Language, category: Category) -> AllocatorKind {
        match (language, category) {
            (Language::Python, _) => AllocatorKind::PyMalloc,
            (Language::Cpp, Category::DataProc) => AllocatorKind::JeMalloc {
                pool_kb: 256,
                prefault_pages: 4,
            },
            (Language::Cpp, _) => AllocatorKind::JeMalloc {
                pool_kb: 4096,
                prefault_pages: 64,
            },
            (Language::Golang, _) => AllocatorKind::GoAlloc,
        }
    }

    /// Expected number of allocations implied by the spec.
    pub fn expected_allocs(&self) -> u64 {
        (self.total_instructions as f64 * self.malloc_pki / 1000.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_lifetimes_match_paper_narrative() {
        let py = LifetimeProfile::for_language(Language::Python);
        let cpp = LifetimeProfile::for_language(Language::Cpp);
        let go = LifetimeProfile::for_language(Language::Golang);
        assert!(cpp.short_fraction > py.short_fraction);
        assert!(py.short_fraction > go.short_fraction);
        assert_eq!(go.exit_free_fraction, 0.0, "Go never frees in a function");
    }

    #[test]
    fn default_allocators() {
        assert_eq!(
            WorkloadSpec::default_allocator(Language::Python, Category::Function),
            AllocatorKind::PyMalloc
        );
        assert!(matches!(
            WorkloadSpec::default_allocator(Language::Cpp, Category::DataProc),
            AllocatorKind::JeMalloc { pool_kb: 256, .. }
        ));
        assert_eq!(
            WorkloadSpec::default_allocator(Language::Golang, Category::Platform),
            AllocatorKind::GoAlloc
        );
    }

    #[test]
    fn expected_allocs_scale_with_pki() {
        let spec = WorkloadSpec {
            name: "x".into(),
            language: Language::Python,
            category: Category::Function,
            allocator: AllocatorKind::PyMalloc,
            total_instructions: 1_000_000,
            malloc_pki: 5.0,
            size: SizeProfile::typical(0.93, 64.0),
            lifetime: LifetimeProfile::for_language(Language::Python),
            touch_intensity: 1.0,
            hot_set: 32,
            seed: 1,
        };
        assert_eq!(spec.expected_allocs(), 5000);
    }
}
