//! Cache hierarchy and DRAM timing model for the Memento simulator.
//!
//! Models the memory system of Table 3 in the paper: per-core L1I/L1D
//! (32 KB, 8-way, 2 cycles), per-core L2 (256 KB, 8-way, 14 cycles), a shared
//! LLC slice (2 MB, 16-way, 40 cycles) and DDR4-3200-style DRAM with 16 banks
//! and an open-row policy.
//!
//! The hierarchy is physically addressed and write-back/write-allocate.
//! [`MemSystem::access`] walks an access down the hierarchy, charges the
//! traversal latency and records DRAM traffic; [`MemSystem::access_bypassed`]
//! implements Memento's main-memory bypass by instantiating a missing line
//! directly in the LLC (the paper's §3.3: newly allocated lines need no DRAM
//! fetch because software has no expectation about their content).
//!
//! # Examples
//!
//! ```
//! use memento_cache::{MemSystem, MemSystemConfig, AccessKind};
//! use memento_simcore::PhysAddr;
//!
//! let mut mem = MemSystem::new(MemSystemConfig::paper_default(1));
//! let cold = mem.access(0, AccessKind::Read, PhysAddr::new(0x4000));
//! let warm = mem.access(0, AccessKind::Read, PhysAddr::new(0x4000));
//! assert!(cold.cycles > warm.cycles);
//! assert!(cold.dram_fill);
//! assert!(!warm.dram_fill);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use dram::{Dram, DramConfig, DramStats};
pub use hierarchy::{
    AccessKind, AccessOutcome, HitLevel, MemSystem, MemSystemConfig, MemSystemStats,
    DRAM_QUEUE_CYCLES,
};
