//! The assembled memory hierarchy: per-core L1I/L1D/L2, shared LLC, DRAM.

use crate::cache::{CacheConfig, CacheStats, Eviction, SetAssocCache};
use crate::dram::{Dram, DramConfig, DramStats};
use memento_obs::Log2Hist;
use memento_simcore::addr::PhysAddr;
use memento_simcore::cycles::Cycles;

/// Extra cycles a DRAM line fill pays per *additional* active core, modeling
/// memory-controller queueing under co-located load (charged only while the
/// machine reports more than one in-flight invocation). The constant is
/// deliberately coarse — roughly one bank cycle of queueing per contender on
/// DDR4-3200 — and is pinned by the contention tests.
pub const DRAM_QUEUE_CYCLES: u64 = 24;

/// Kind of memory access issued to the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store (write-allocate).
    Write,
    /// Instruction fetch (routed to L1I).
    InstrFetch,
}

/// Level at which an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
    /// Satisfied by LLC line instantiation (Memento main-memory bypass).
    Bypass,
}

/// Result of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Latency charged for the access.
    pub cycles: Cycles,
    /// Where the line was found (or created).
    pub level: HitLevel,
    /// True when the access caused a DRAM line read.
    pub dram_fill: bool,
}

/// Configuration of the whole memory system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Number of cores (each gets private L1I/L1D/L2).
    pub cores: usize,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared LLC geometry.
    pub llc: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl MemSystemConfig {
    /// The paper's Table 3 configuration for `cores` cores.
    pub fn paper_default(cores: usize) -> Self {
        MemSystemConfig {
            cores,
            l1i: CacheConfig::paper_l1("L1I"),
            l1d: CacheConfig::paper_l1("L1D"),
            l2: CacheConfig::paper_l2(),
            llc: CacheConfig::paper_llc(),
            dram: DramConfig::ddr4_3200(),
        }
    }

    /// Iso-storage variant (§6.1): HOT SRAM donated to the L1D (36 KB,
    /// 9-way) instead of implementing Memento.
    pub fn iso_storage(cores: usize) -> Self {
        let mut cfg = Self::paper_default(cores);
        cfg.l1d = CacheConfig::iso_storage_l1d();
        cfg
    }
}

struct CoreCaches {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
}

/// Aggregated statistics snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSystemStats {
    /// Combined L1I stats across cores.
    pub l1i: CacheStats,
    /// Combined L1D stats across cores.
    pub l1d: CacheStats,
    /// Combined L2 stats across cores.
    pub l2: CacheStats,
    /// Shared LLC stats.
    pub llc: CacheStats,
    /// DRAM traffic.
    pub dram: DramStats,
    /// Lines instantiated in the LLC via Memento main-memory bypass.
    pub bypassed_fills: u64,
    /// Extra cycles charged for memory-controller queueing under
    /// multi-core contention (zero while at most one core is active).
    pub dram_queue_cycles: u64,
}

impl MemSystemStats {
    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: &MemSystemStats) -> MemSystemStats {
        MemSystemStats {
            l1i: self.l1i.delta(earlier.l1i),
            l1d: self.l1d.delta(earlier.l1d),
            l2: self.l2.delta(earlier.l2),
            llc: self.llc.delta(earlier.llc),
            dram: self.dram.delta(earlier.dram),
            bypassed_fills: self.bypassed_fills - earlier.bypassed_fills,
            dram_queue_cycles: self.dram_queue_cycles - earlier.dram_queue_cycles,
        }
    }
}

fn merge_cache_stats(dst: &mut CacheStats, src: CacheStats) {
    dst.demand.merge(src.demand);
    dst.fills += src.fills;
    dst.writebacks += src.writebacks;
    dst.flushed += src.flushed;
}

/// The shared downstream every per-core fill cascades into: the LLC and
/// the DRAM channel, tagged with the filling core and its fair-share
/// eviction quota.
struct Downstream<'a> {
    llc: &'a mut SetAssocCache,
    dram: &'a mut Dram,
    owner: usize,
    fair_ways: usize,
}

/// The full memory system: private L1s/L2 per core, shared LLC and DRAM.
pub struct MemSystem {
    cfg: MemSystemConfig,
    cores: Vec<CoreCaches>,
    llc: SetAssocCache,
    dram: Dram,
    bypassed_fills: u64,
    demand_lat: Log2Hist,
    /// Cores with an invocation in flight right now. Contention (LLC
    /// fair-share eviction, DRAM queueing) is inert at 1, so a machine
    /// running one invocation at a time behaves exactly like the
    /// single-core model regardless of how many cores exist.
    active_cores: usize,
    dram_queue_cycles: u64,
}

impl MemSystem {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0`.
    pub fn new(cfg: MemSystemConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        let cores = (0..cfg.cores)
            .map(|_| CoreCaches {
                l1i: SetAssocCache::new(cfg.l1i.clone()),
                l1d: SetAssocCache::new(cfg.l1d.clone()),
                l2: SetAssocCache::new(cfg.l2.clone()),
            })
            .collect();
        MemSystem {
            cores,
            llc: SetAssocCache::new(cfg.llc.clone()),
            dram: Dram::new(cfg.dram.clone()),
            bypassed_fills: 0,
            demand_lat: Log2Hist::default(),
            active_cores: 1,
            dram_queue_cycles: 0,
            cfg,
        }
    }

    /// Declares how many cores currently have an invocation in flight.
    /// Clamped to `[1, cores]`. At 1 (the default) every contention model
    /// is inert and the hierarchy is bit-identical to the single-core one.
    pub fn set_active_cores(&mut self, n: usize) {
        self.active_cores = n.clamp(1, self.cfg.cores);
    }

    /// Number of cores currently counted as active for contention.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Read-only view of the shared LLC (occupancy/fair-share invariants).
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Distribution of demand-access latencies (cycles per access, both
    /// plain and bypass-eligible).
    pub fn demand_latency(&self) -> &Log2Hist {
        &self.demand_lat
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemSystemConfig {
        &self.cfg
    }

    /// DRAM statistics (traffic behind Fig. 10).
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Full statistics snapshot.
    pub fn stats(&self) -> MemSystemStats {
        let mut s = MemSystemStats {
            dram: self.dram.stats(),
            llc: self.llc.stats(),
            bypassed_fills: self.bypassed_fills,
            dram_queue_cycles: self.dram_queue_cycles,
            ..MemSystemStats::default()
        };
        for core in &self.cores {
            merge_cache_stats(&mut s.l1i, core.l1i.stats());
            merge_cache_stats(&mut s.l1d, core.l1d.stats());
            merge_cache_stats(&mut s.l2, core.l2.stats());
        }
        s
    }

    fn fill_llc(down: &mut Downstream<'_>, addr: PhysAddr, dirty: bool) {
        if let Eviction::Dirty(victim) =
            down.llc.fill_owned(addr, dirty, down.owner, down.fair_ways)
        {
            down.dram.write_line(victim);
        }
    }

    fn fill_l2(core: &mut CoreCaches, down: &mut Downstream<'_>, addr: PhysAddr) {
        if let Eviction::Dirty(victim) = core.l2.fill(addr, false) {
            Self::fill_llc(down, victim, true);
        }
    }

    fn fill_l1(
        core: &mut CoreCaches,
        down: &mut Downstream<'_>,
        instr: bool,
        addr: PhysAddr,
        dirty: bool,
    ) {
        let l1 = if instr { &mut core.l1i } else { &mut core.l1d };
        if let Eviction::Dirty(victim) = l1.fill(addr, dirty) {
            // Dirty L1 victim moves to L2 (which may cascade to LLC/DRAM).
            if let Eviction::Dirty(v2) = core.l2.fill(victim, true) {
                Self::fill_llc(down, v2, true);
            }
        }
    }

    /// LLC ways each active core may hold per set before becoming the
    /// preferred eviction target; 0 disables fair-share partitioning
    /// (single active core).
    fn llc_fair_ways(&self) -> usize {
        if self.active_cores > 1 {
            self.llc.config().assoc / self.active_cores
        } else {
            0
        }
    }

    fn access_inner(
        &mut self,
        core_id: usize,
        kind: AccessKind,
        addr: PhysAddr,
        bypass_on_miss: bool,
    ) -> AccessOutcome {
        let addr = addr.line_base();
        let instr = kind == AccessKind::InstrFetch;
        let write = kind == AccessKind::Write;
        let fair_ways = self.llc_fair_ways();
        let core = &mut self.cores[core_id];
        let mut down = Downstream {
            llc: &mut self.llc,
            dram: &mut self.dram,
            owner: core_id,
            fair_ways,
        };
        let mut cycles = Cycles::ZERO;

        // L1 lookup.
        let l1 = if instr { &mut core.l1i } else { &mut core.l1d };
        cycles += l1.config().latency;
        if l1.access(addr, write) {
            return AccessOutcome {
                cycles,
                level: HitLevel::L1,
                dram_fill: false,
            };
        }

        // L2 lookup.
        cycles += core.l2.config().latency;
        if core.l2.access(addr, false) {
            Self::fill_l1(core, &mut down, instr, addr, write);
            return AccessOutcome {
                cycles,
                level: HitLevel::L2,
                dram_fill: false,
            };
        }

        // LLC lookup.
        cycles += down.llc.config().latency;
        if down.llc.access(addr, false) {
            Self::fill_l2(core, &mut down, addr);
            Self::fill_l1(core, &mut down, instr, addr, write);
            return AccessOutcome {
                cycles,
                level: HitLevel::Llc,
                dram_fill: false,
            };
        }

        if bypass_on_miss {
            // Memento main-memory bypass (§3.3): the line belongs to a newly
            // allocated object and has never been touched, so it is
            // instantiated (zero-filled) in the LLC without a DRAM fetch.
            // The LLC copy is dirty: DRAM does not hold this data.
            self.bypassed_fills += 1;
            Self::fill_llc(&mut down, addr, true);
            Self::fill_l2(core, &mut down, addr);
            Self::fill_l1(core, &mut down, instr, addr, write);
            return AccessOutcome {
                cycles,
                level: HitLevel::Bypass,
                dram_fill: false,
            };
        }

        // DRAM fill, plus memory-controller queueing when co-located
        // invocations contend for the channel.
        cycles += down.dram.read_line(addr);
        if self.active_cores > 1 {
            let queue = DRAM_QUEUE_CYCLES * (self.active_cores as u64 - 1);
            cycles += Cycles::new(queue);
            self.dram_queue_cycles += queue;
        }
        Self::fill_llc(&mut down, addr, false);
        Self::fill_l2(core, &mut down, addr);
        Self::fill_l1(core, &mut down, instr, addr, write);
        AccessOutcome {
            cycles,
            level: HitLevel::Dram,
            dram_fill: true,
        }
    }

    /// Performs a demand access, charging the full traversal latency.
    ///
    /// # Panics
    ///
    /// Panics if `core_id` is out of range.
    pub fn access(&mut self, core_id: usize, kind: AccessKind, addr: PhysAddr) -> AccessOutcome {
        let out = self.access_inner(core_id, kind, addr, false);
        self.demand_lat.record(out.cycles.raw());
        out
    }

    /// Performs a demand access that is *eligible for main-memory bypass*:
    /// if the line misses everywhere, it is instantiated in the LLC instead
    /// of being fetched from DRAM.
    pub fn access_bypassed(
        &mut self,
        core_id: usize,
        kind: AccessKind,
        addr: PhysAddr,
    ) -> AccessOutcome {
        let out = self.access_inner(core_id, kind, addr, true);
        self.demand_lat.record(out.cycles.raw());
        out
    }

    /// Writes a full line back to DRAM directly (used for explicit flushes
    /// of hardware structures such as the HOT).
    pub fn writeback_line(&mut self, addr: PhysAddr) {
        self.dram.write_line(addr.line_base());
    }

    /// Flushes every cache on every core (dirty lines generate DRAM
    /// writebacks). Heavyweight; only used between experiment phases.
    pub fn flush_all(&mut self) {
        let mut dirty = Vec::new();
        for core in &mut self.cores {
            dirty.extend(core.l1i.flush());
            dirty.extend(core.l1d.flush());
            dirty.extend(core.l2.flush());
        }
        dirty.extend(self.llc.flush());
        for addr in dirty {
            self.dram.write_line(addr);
        }
    }
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("cores", &self.cores.len())
            .field("dram", &self.dram.stats())
            .field("bypassed_fills", &self.bypassed_fills)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemSystemConfig::paper_default(2))
    }

    #[test]
    fn cold_access_reaches_dram() {
        let mut m = sys();
        let out = m.access(0, AccessKind::Read, PhysAddr::new(0x100000));
        assert_eq!(out.level, HitLevel::Dram);
        assert!(out.dram_fill);
        // 2 (L1) + 14 (L2) + 40 (LLC) + 130 (row miss) cycles.
        assert_eq!(out.cycles, Cycles::new(2 + 14 + 40 + 130));
        assert_eq!(m.dram_stats().read_lines, 1);
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut m = sys();
        let a = PhysAddr::new(0x100000);
        m.access(0, AccessKind::Read, a);
        let out = m.access(0, AccessKind::Read, a);
        assert_eq!(out.level, HitLevel::L1);
        assert_eq!(out.cycles, Cycles::new(2));
        assert_eq!(m.dram_stats().read_lines, 1);
    }

    #[test]
    fn cross_core_sharing_via_llc() {
        let mut m = sys();
        let a = PhysAddr::new(0x200000);
        m.access(0, AccessKind::Read, a);
        let out = m.access(1, AccessKind::Read, a);
        assert_eq!(out.level, HitLevel::Llc);
        assert!(!out.dram_fill);
        assert_eq!(m.dram_stats().read_lines, 1);
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut m = sys();
        let a = PhysAddr::new(0x300000);
        m.access(0, AccessKind::InstrFetch, a);
        let out = m.access(0, AccessKind::InstrFetch, a);
        assert_eq!(out.level, HitLevel::L1);
        // Same line as data access still misses L1D but hits L2.
        let dout = m.access(0, AccessKind::Read, a);
        assert_eq!(dout.level, HitLevel::L2);
    }

    #[test]
    fn bypass_skips_dram() {
        let mut m = sys();
        let a = PhysAddr::new(0x400000);
        let out = m.access_bypassed(0, AccessKind::Write, a);
        assert_eq!(out.level, HitLevel::Bypass);
        assert!(!out.dram_fill);
        assert_eq!(m.dram_stats().read_lines, 0);
        assert_eq!(m.stats().bypassed_fills, 1);
        // Line is now resident: a second access hits L1.
        let again = m.access(0, AccessKind::Read, a);
        assert_eq!(again.level, HitLevel::L1);
    }

    #[test]
    fn bypass_irrelevant_when_line_resident() {
        let mut m = sys();
        let a = PhysAddr::new(0x500000);
        m.access(0, AccessKind::Read, a);
        let out = m.access_bypassed(0, AccessKind::Read, a);
        assert_eq!(out.level, HitLevel::L1);
        assert_eq!(m.stats().bypassed_fills, 0);
    }

    #[test]
    fn dirty_data_eventually_written_back() {
        let mut m = MemSystem::new(MemSystemConfig {
            cores: 1,
            l1i: CacheConfig::new("L1I", 512, 2, 2),
            l1d: CacheConfig::new("L1D", 512, 2, 2),
            l2: CacheConfig::new("L2", 1024, 2, 14),
            llc: CacheConfig::new("LLC", 2048, 2, 40),
            dram: DramConfig::ddr4_3200(),
        });
        // Write many distinct lines to force dirty evictions down to DRAM.
        for i in 0..256u64 {
            m.access(0, AccessKind::Write, PhysAddr::new(i * 64 * 17));
        }
        assert!(m.dram_stats().write_lines > 0, "writebacks must reach DRAM");
    }

    #[test]
    fn flush_all_writes_back_dirty_lines() {
        let mut m = sys();
        m.access(0, AccessKind::Write, PhysAddr::new(0x700000));
        let before = m.dram_stats().write_lines;
        m.flush_all();
        assert!(m.dram_stats().write_lines > before);
        // After flush the line is gone from caches.
        let out = m.access(0, AccessKind::Read, PhysAddr::new(0x700000));
        assert_eq!(out.level, HitLevel::Dram);
    }

    #[test]
    fn stats_aggregate_across_cores() {
        let mut m = sys();
        m.access(0, AccessKind::Read, PhysAddr::new(0x1000));
        m.access(1, AccessKind::Read, PhysAddr::new(0x2000));
        let s = m.stats();
        assert_eq!(s.l1d.demand.total(), 2);
        assert_eq!(s.dram.read_lines, 2);
    }

    #[test]
    fn active_cores_clamped_to_core_count() {
        let mut m = sys();
        assert_eq!(m.active_cores(), 1);
        m.set_active_cores(99);
        assert_eq!(m.active_cores(), 2);
        m.set_active_cores(0);
        assert_eq!(m.active_cores(), 1);
    }

    #[test]
    fn contention_inflates_dram_latency() {
        let mut m = sys();
        m.set_active_cores(2);
        let out = m.access(0, AccessKind::Read, PhysAddr::new(0x100000));
        assert_eq!(out.level, HitLevel::Dram);
        // Cold traversal plus one contender's worth of queueing.
        assert_eq!(
            out.cycles,
            Cycles::new(2 + 14 + 40 + 130 + DRAM_QUEUE_CYCLES)
        );
        assert_eq!(m.stats().dram_queue_cycles, DRAM_QUEUE_CYCLES);
        // Back to one active core: queueing vanishes.
        m.set_active_cores(1);
        let solo = m.access(1, AccessKind::Read, PhysAddr::new(0x900000));
        assert_eq!(solo.cycles, Cycles::new(2 + 14 + 40 + 130));
        assert_eq!(m.stats().dram_queue_cycles, DRAM_QUEUE_CYCLES);
    }

    #[test]
    fn llc_occupancy_bounded_by_capacity() {
        let mut m = sys();
        m.set_active_cores(2);
        for i in 0..10_000u64 {
            m.access(
                (i % 2) as usize,
                AccessKind::Read,
                PhysAddr::new(i * 64 * 3),
            );
        }
        let llc = m.llc();
        assert!(llc.occupancy() <= llc.capacity_lines());
        assert_eq!(
            llc.occupancy(),
            llc.owner_occupancy(0) + llc.owner_occupancy(1)
        );
    }

    #[test]
    fn accesses_are_line_granular() {
        let mut m = sys();
        m.access(0, AccessKind::Read, PhysAddr::new(0x1000));
        let out = m.access(0, AccessKind::Read, PhysAddr::new(0x1004));
        assert_eq!(
            out.level,
            HitLevel::L1,
            "same line despite different offset"
        );
    }
}
