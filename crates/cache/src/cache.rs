//! A single set-associative, write-back, write-allocate cache with LRU
//! replacement.
//!
//! The cache tracks presence and dirtiness of 64-byte lines; data lives in
//! [`memento_simcore::PhysMem`]. Timing is charged by the hierarchy layer.

use memento_simcore::addr::{PhysAddr, CACHE_LINE_SHIFT, CACHE_LINE_SIZE};
use memento_simcore::cycles::Cycles;
use memento_simcore::stats::HitMiss;

/// Geometry and latency of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "LLC", ...), used in reports.
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Access latency charged on a lookup at this level.
    pub latency: Cycles,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `assoc * 64` and the set
    /// count is a power of two (or 1).
    pub fn new(name: &str, size_bytes: usize, assoc: usize, latency: u64) -> Self {
        let cfg = CacheConfig {
            name: name.to_owned(),
            size_bytes,
            assoc,
            latency: Cycles::new(latency),
        };
        let sets = cfg.num_sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.assoc * CACHE_LINE_SIZE)
    }

    /// 32 KB, 8-way, 2-cycle L1 (paper Table 3).
    pub fn paper_l1(name: &str) -> Self {
        CacheConfig::new(name, 32 * 1024, 8, 2)
    }

    /// Hypothetical 36 KB 9-way L1D used by the iso-storage study (§6.1):
    /// the HOT's SRAM is given to the L1D as an extra way at the same
    /// latency.
    pub fn iso_storage_l1d() -> Self {
        CacheConfig::new("L1D+HOT", 36 * 1024, 9, 2)
    }

    /// 256 KB, 8-way, 14-cycle L2 (paper Table 3).
    pub fn paper_l2() -> Self {
        CacheConfig::new("L2", 256 * 1024, 8, 14)
    }

    /// 2 MB slice, 16-way, 40-cycle LLC (paper Table 3).
    pub fn paper_llc() -> Self {
        CacheConfig::new("LLC", 2 * 1024 * 1024, 16, 40)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
    /// Core that last filled this line (fair-share accounting in the LLC;
    /// always 0 in private levels).
    owner: usize,
}

/// Per-level statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits/misses.
    pub demand: HitMiss,
    /// Lines filled into this level.
    pub fills: u64,
    /// Dirty lines evicted (written back toward memory).
    pub writebacks: u64,
    /// Lines invalidated by explicit flushes.
    pub flushed: u64,
}

impl CacheStats {
    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            demand: self.demand.delta(earlier.demand),
            fills: self.fills - earlier.fills,
            writebacks: self.writebacks - earlier.writebacks,
            flushed: self.flushed - earlier.flushed,
        }
    }
}

/// What happened to the victim way during a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eviction {
    /// No valid line was displaced.
    None,
    /// A clean line was silently dropped.
    Clean(PhysAddr),
    /// A dirty line must be written back; carries its base address.
    Dirty(PhysAddr),
}

/// One set-associative cache level.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stamp: u64,
    stats: CacheStats,
    set_mask: u64,
    set_shift: u32,
}

impl SetAssocCache {
    /// Builds an empty cache from its config.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        SetAssocCache {
            sets: vec![vec![Line::default(); cfg.assoc]; num_sets],
            stamp: 0,
            stats: CacheStats::default(),
            set_mask: num_sets as u64 - 1,
            set_shift: CACHE_LINE_SHIFT,
            cfg,
        }
    }

    /// This level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// This level's statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.raw() >> self.set_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up the line holding `addr`. On a hit the LRU stamp is refreshed
    /// and the line is marked dirty when `write`. Records demand stats.
    pub fn access(&mut self, addr: PhysAddr, write: bool) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];
        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = stamp;
                line.dirty |= write;
                self.stats.demand.hit();
                return true;
            }
        }
        self.stats.demand.miss();
        false
    }

    /// Probes without updating LRU or stats (used by coherence-style checks).
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line holding `addr`, evicting the LRU way if needed.
    /// Marks the new line dirty when `dirty`. Ownership defaults to core 0
    /// with fair-share partitioning disabled — the single-core fill path.
    pub fn fill(&mut self, addr: PhysAddr, dirty: bool) -> Eviction {
        self.fill_owned(addr, dirty, 0, 0)
    }

    /// Installs the line holding `addr` on behalf of `owner`, evicting a
    /// victim if needed.
    ///
    /// With `fair_ways == 0` the victim is the plain LRU way — exactly the
    /// behaviour of [`SetAssocCache::fill`]. With `fair_ways > 0` (shared
    /// LLC under contention) victim selection prefers, among the valid
    /// ways of the set, the LRU line whose owner currently holds *more*
    /// than `fair_ways` ways in this set: cores that overflow their fair
    /// share of the set are evicted first, approximating way-partitioned
    /// occupancy without hard partitioning.
    pub fn fill_owned(
        &mut self,
        addr: PhysAddr,
        dirty: bool,
        owner: usize,
        fair_ways: usize,
    ) -> Eviction {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        self.stats.fills += 1;
        let set_bits = self.set_mask.count_ones();
        let set_shift = self.set_shift;
        let set = &mut self.sets[set_idx];

        // Already present (e.g. racing fill): refresh in place. The last
        // filler takes ownership of the line.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            line.dirty |= dirty;
            line.owner = owner;
            return Eviction::None;
        }

        let victim_idx = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => Self::pick_victim(set, fair_ways),
        };
        let victim = set[victim_idx];
        let eviction = if victim.valid {
            let victim_line = (victim.tag << set_bits) | set_idx as u64;
            let victim_addr = PhysAddr::new(victim_line << set_shift);
            if victim.dirty {
                self.stats.writebacks += 1;
                Eviction::Dirty(victim_addr)
            } else {
                Eviction::Clean(victim_addr)
            }
        } else {
            Eviction::None
        };
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty,
            lru: stamp,
            owner,
        };
        eviction
    }

    /// Victim way for a full set: LRU among over-quota owners when fair-share
    /// partitioning is on, plain LRU otherwise.
    fn pick_victim(set: &[Line], fair_ways: usize) -> usize {
        if fair_ways > 0 {
            let over_quota =
                |l: &Line| set.iter().filter(|o| o.valid && o.owner == l.owner).count() > fair_ways;
            if let Some(i) = set
                .iter()
                .enumerate()
                .filter(|(_, l)| over_quota(l))
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
            {
                return i;
            }
        }
        set.iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("non-empty set")
    }

    /// Number of valid lines currently owned by `owner` (LLC fair-share
    /// observability; private levels report everything under owner 0).
    pub fn owner_occupancy(&self, owner: usize) -> usize {
        self.sets
            .iter()
            .flat_map(|set| set.iter())
            .filter(|l| l.valid && l.owner == owner)
            .count()
    }

    /// Total number of valid lines resident in the cache.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|set| set.iter())
            .filter(|l| l.valid)
            .count()
    }

    /// Line capacity of the cache (sets × ways).
    pub fn capacity_lines(&self) -> usize {
        self.cfg.num_sets() * self.cfg.assoc
    }

    /// Invalidates every line, returning the base addresses of dirty lines
    /// that must be written back. Models a flush at context switch.
    pub fn flush(&mut self) -> Vec<PhysAddr> {
        let set_bits = self.set_mask.count_ones();
        let set_shift = self.set_shift;
        let mut dirty = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for line in set.iter_mut() {
                if line.valid {
                    self.stats.flushed += 1;
                    if line.dirty {
                        let victim_line = (line.tag << set_bits) | set_idx as u64;
                        dirty.push(PhysAddr::new(victim_line << set_shift));
                    }
                    *line = Line::default();
                }
            }
        }
        dirty
    }

    /// Invalidates the single line holding `addr` if present; returns whether
    /// it was dirty.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<bool> {
        let (set_idx, tag) = self.set_and_tag(addr);
        for line in self.sets[set_idx].iter_mut() {
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                *line = Line::default();
                self.stats.flushed += 1;
                return Some(was_dirty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B = 256B.
        SetAssocCache::new(CacheConfig::new("T", 256, 2, 1))
    }

    fn addr(set: u64, tag: u64) -> PhysAddr {
        PhysAddr::new(((tag << 1) | set) << CACHE_LINE_SHIFT)
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1("L1D").num_sets(), 64);
        assert_eq!(CacheConfig::paper_l2().num_sets(), 512);
        assert_eq!(CacheConfig::paper_llc().num_sets(), 2048);
        assert_eq!(CacheConfig::iso_storage_l1d().num_sets(), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = addr(0, 1);
        assert!(!c.access(a, false));
        assert_eq!(c.fill(a, false), Eviction::None);
        assert!(c.access(a, false));
        assert_eq!(c.stats().demand.hits, 1);
        assert_eq!(c.stats().demand.misses, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let a = addr(0, 1);
        let b = addr(0, 2);
        let d = addr(0, 3);
        c.fill(a, false);
        c.fill(b, false);
        // Touch `a` so `b` becomes LRU.
        assert!(c.access(a, false));
        match c.fill(d, false) {
            Eviction::Clean(victim) => assert_eq!(victim, b),
            other => panic!("expected clean eviction of b, got {other:?}"),
        }
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        let a = addr(1, 1);
        let b = addr(1, 2);
        let d = addr(1, 3);
        c.fill(a, true);
        c.fill(b, false);
        match c.fill(d, false) {
            Eviction::Dirty(victim) => assert_eq!(victim, a),
            other => panic!("expected dirty eviction of a, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        let a = addr(0, 5);
        c.fill(a, false);
        assert!(c.access(a, true));
        assert_eq!(c.invalidate(a), Some(true));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn refill_existing_line_keeps_single_copy() {
        let mut c = tiny();
        let a = addr(0, 7);
        c.fill(a, false);
        assert_eq!(c.fill(a, true), Eviction::None);
        // Dirty bit merged.
        assert_eq!(c.invalidate(a), Some(true));
    }

    #[test]
    fn flush_returns_dirty_lines() {
        let mut c = tiny();
        let a = addr(0, 1);
        let b = addr(1, 1);
        c.fill(a, true);
        c.fill(b, false);
        let mut dirty = c.flush();
        dirty.sort();
        assert_eq!(dirty, vec![a]);
        assert!(!c.probe(a));
        assert!(!c.probe(b));
        assert_eq!(c.stats().flushed, 2);
    }

    #[test]
    fn fair_share_evicts_over_quota_owner_first() {
        // One set, four ways: enough room for owners to differ in quota.
        let mut c = SetAssocCache::new(CacheConfig::new("T4", 256, 4, 1));
        let line = |tag: u64| PhysAddr::new(tag << CACHE_LINE_SHIFT);
        // Core 1 fills first, so its line is the *global* LRU...
        c.fill_owned(line(4), false, 1, 2);
        // ...then core 0 claims the remaining three ways (over its fair
        // share of 4 ways / 2 cores = 2).
        c.fill_owned(line(1), false, 0, 2);
        c.fill_owned(line(2), false, 0, 2);
        c.fill_owned(line(3), false, 0, 2);
        assert_eq!(c.owner_occupancy(0), 3);
        assert_eq!(c.owner_occupancy(1), 1);
        // Core 1 fills again: plain LRU would evict its own line(4); the
        // fair-share policy instead evicts the LRU line of over-quota
        // core 0, which is line(1).
        match c.fill_owned(line(5), false, 1, 2) {
            Eviction::Clean(victim) => assert_eq!(victim, line(1)),
            other => panic!("expected clean eviction of over-quota line, got {other:?}"),
        }
        assert!(c.probe(line(4)), "under-quota owner keeps its line");
        assert_eq!(c.owner_occupancy(0), 2);
        assert_eq!(c.owner_occupancy(1), 2);
    }

    #[test]
    fn fair_share_zero_is_plain_lru() {
        let mut c = tiny();
        let a = addr(0, 1);
        let b = addr(0, 2);
        let d = addr(0, 3);
        c.fill_owned(a, false, 0, 0);
        c.fill_owned(b, false, 1, 0);
        assert!(c.access(a, false));
        // fair_ways == 0: plain LRU picks `b` regardless of owners.
        match c.fill_owned(d, false, 1, 0) {
            Eviction::Clean(victim) => assert_eq!(victim, b),
            other => panic!("expected clean LRU eviction of b, got {other:?}"),
        }
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.capacity_lines(), 4);
        c.fill_owned(addr(0, 1), false, 0, 0);
        c.fill_owned(addr(1, 1), false, 1, 0);
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.owner_occupancy(0), 1);
        assert_eq!(c.owner_occupancy(1), 1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn victim_address_reconstruction() {
        // Fill three distinct tags in the same set of a tiny cache and make
        // sure the reconstructed victim address equals the original fill.
        let mut c = tiny();
        let a = addr(1, 10);
        let b = addr(1, 20);
        let d = addr(1, 30);
        c.fill(a, true);
        c.fill(b, true);
        match c.fill(d, false) {
            Eviction::Dirty(victim) => assert_eq!(victim, a),
            other => panic!("unexpected {other:?}"),
        }
    }
}
