//! DDR4-style DRAM timing and traffic model.
//!
//! A deliberately lightweight stand-in for DRAMSim3 (which the paper uses):
//! per-bank open-row tracking with distinct row-hit and row-miss latencies,
//! plus precise read/write traffic accounting — the quantity behind the
//! paper's Fig. 10 (memory-bandwidth savings).

use memento_simcore::addr::{PhysAddr, CACHE_LINE_SIZE};
use memento_simcore::cycles::Cycles;

/// DRAM geometry and timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (paper Table 3: 16).
    pub banks: usize,
    /// Bytes per row (row-buffer reach per bank).
    pub row_bytes: u64,
    /// Core cycles for a row-buffer hit (CAS only).
    pub row_hit: Cycles,
    /// Core cycles for a row-buffer miss (precharge + activate + CAS).
    pub row_miss: Cycles,
}

impl DramConfig {
    /// DDR4-3200-like defaults at a 3 GHz core: ~22 ns row hit, ~43 ns miss.
    pub fn ddr4_3200() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 8 * 1024,
            row_hit: Cycles::new(66),
            row_miss: Cycles::new(130),
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_3200()
    }
}

/// Traffic and row-buffer statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Cache lines read from DRAM (demand fills and page walks).
    pub read_lines: u64,
    /// Cache lines written to DRAM (writebacks).
    pub write_lines: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
}

impl DramStats {
    /// Total bytes moved on the memory bus.
    pub fn total_bytes(&self) -> u64 {
        (self.read_lines + self.write_lines) * CACHE_LINE_SIZE as u64
    }

    /// Traffic accumulated since `earlier`.
    pub fn delta(&self, earlier: DramStats) -> DramStats {
        DramStats {
            read_lines: self.read_lines - earlier.read_lines,
            write_lines: self.write_lines - earlier.write_lines,
            row_hits: self.row_hits - earlier.row_hits,
            row_misses: self.row_misses - earlier.row_misses,
        }
    }
}

/// The DRAM device.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM with all row buffers closed.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero banks or zero-size rows.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0 && cfg.row_bytes > 0, "degenerate DRAM config");
        Dram {
            open_rows: vec![None; cfg.banks],
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_and_row(&self, addr: PhysAddr) -> (usize, u64) {
        // Interleave consecutive rows across banks: bank bits above row bits.
        let row_global = addr.raw() / self.cfg.row_bytes;
        let bank = (row_global % self.cfg.banks as u64) as usize;
        let row = row_global / self.cfg.banks as u64;
        (bank, row)
    }

    fn touch(&mut self, addr: PhysAddr) -> Cycles {
        let (bank, row) = self.bank_and_row(addr);
        if self.open_rows[bank] == Some(row) {
            self.stats.row_hits += 1;
            self.cfg.row_hit
        } else {
            self.open_rows[bank] = Some(row);
            self.stats.row_misses += 1;
            self.cfg.row_miss
        }
    }

    /// Reads the line holding `addr`; returns the access latency.
    pub fn read_line(&mut self, addr: PhysAddr) -> Cycles {
        self.stats.read_lines += 1;
        self.touch(addr)
    }

    /// Writes the line holding `addr` (a writeback); returns the latency.
    /// Writebacks are posted in real systems, so callers typically do not
    /// charge this latency on the critical path — but traffic is recorded.
    pub fn write_line(&mut self, addr: PhysAddr) -> Cycles {
        self.stats.write_lines += 1;
        self.touch(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_buffer_hit_after_miss() {
        let mut d = Dram::new(DramConfig::ddr4_3200());
        let a = PhysAddr::new(0x10000);
        let first = d.read_line(a);
        let second = d.read_line(a.add(64));
        assert_eq!(first, Cycles::new(130));
        assert_eq!(second, Cycles::new(66));
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().read_lines, 2);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = DramConfig::ddr4_3200();
        let stride = cfg.row_bytes * cfg.banks as u64; // same bank, next row
        let mut d = Dram::new(cfg);
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(stride);
        assert_eq!(d.read_line(a), Cycles::new(130));
        assert_eq!(d.read_line(b), Cycles::new(130));
        assert_eq!(d.read_line(a), Cycles::new(130)); // row was closed by b
    }

    #[test]
    fn bank_interleaving_keeps_rows_open() {
        let cfg = DramConfig::ddr4_3200();
        let row_bytes = cfg.row_bytes;
        let mut d = Dram::new(cfg);
        // Adjacent rows land on different banks; re-touching each is a hit.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(row_bytes);
        d.read_line(a);
        d.read_line(b);
        assert_eq!(d.read_line(a), Cycles::new(66));
        assert_eq!(d.read_line(b), Cycles::new(66));
    }

    #[test]
    fn traffic_accounting() {
        let mut d = Dram::new(DramConfig::ddr4_3200());
        d.read_line(PhysAddr::new(0));
        d.write_line(PhysAddr::new(64));
        d.write_line(PhysAddr::new(128));
        assert_eq!(d.stats().read_lines, 1);
        assert_eq!(d.stats().write_lines, 2);
        assert_eq!(d.stats().total_bytes(), 3 * 64);
    }
}
