//! Property-based tests of the cache hierarchy: inclusion-free coherence
//! of presence state, conservation of dirty data, and hit/latency sanity
//! under arbitrary access streams.

use memento_cache::{AccessKind, CacheConfig, Dram, DramConfig, MemSystem, MemSystemConfig};
use memento_simcore::addr::PhysAddr;
use proptest::prelude::*;
use std::collections::HashSet;

fn small_system() -> MemSystem {
    MemSystem::new(MemSystemConfig {
        cores: 2,
        l1i: CacheConfig::new("L1I", 1024, 2, 2),
        l1d: CacheConfig::new("L1D", 1024, 2, 2),
        l2: CacheConfig::new("L2", 4096, 4, 14),
        llc: CacheConfig::new("LLC", 8192, 4, 40),
        dram: DramConfig::ddr4_3200(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every demand read of a line is served from DRAM at most... as many
    /// times as it was evicted + 1; in particular, re-reading a just-read
    /// line never goes to DRAM, and total DRAM reads never exceed the
    /// number of accesses.
    #[test]
    fn dram_reads_bounded_by_misses(
        accesses in proptest::collection::vec((0usize..2, 0u64..256, any::<bool>()), 1..400)
    ) {
        let mut sys = small_system();
        let mut total = 0u64;
        for (core, line, write) in accesses {
            let addr = PhysAddr::new(line * 64);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let out = sys.access(core, kind, addr);
            total += 1;
            // Immediately re-access: must hit L1 with no DRAM traffic.
            let reads_before = sys.dram_stats().read_lines;
            let again = sys.access(core, kind, addr);
            prop_assert_eq!(again.level, memento_cache::HitLevel::L1);
            prop_assert_eq!(sys.dram_stats().read_lines, reads_before);
            prop_assert!(out.cycles.raw() >= 2, "L1 latency is the floor");
            total += 1;
        }
        prop_assert!(sys.dram_stats().read_lines <= total);
    }

    /// Writes are never lost: every written line is either still cached
    /// somewhere (a later read hits above DRAM) or was written back (DRAM
    /// write counter covers it). Flush-all forces the written-back count
    /// to cover every dirty line.
    #[test]
    fn dirty_lines_conserved(lines in proptest::collection::vec(0u64..512, 1..200)) {
        let mut sys = small_system();
        let unique: HashSet<u64> = lines.iter().copied().collect();
        for line in &lines {
            sys.access(0, AccessKind::Write, PhysAddr::new(line * 64));
        }
        sys.flush_all();
        // After a full flush every dirty line went to DRAM at least once.
        prop_assert!(
            sys.dram_stats().write_lines >= unique.len() as u64,
            "writebacks {} < dirty lines {}",
            sys.dram_stats().write_lines,
            unique.len()
        );
    }

    /// DRAM row-buffer accounting: hits + misses equals accesses, and
    /// hitting the same line twice in a row is always a row hit.
    #[test]
    fn dram_row_accounting(lines in proptest::collection::vec(0u64..4096, 1..200)) {
        let mut dram = Dram::new(DramConfig::ddr4_3200());
        let mut n = 0;
        for line in lines {
            dram.read_line(PhysAddr::new(line * 64));
            let misses_before = dram.stats().row_misses;
            dram.read_line(PhysAddr::new(line * 64));
            prop_assert_eq!(dram.stats().row_misses, misses_before, "same row re-read");
            n += 2;
        }
        let s = dram.stats();
        prop_assert_eq!(s.row_hits + s.row_misses, n);
        prop_assert_eq!(s.read_lines, n);
    }
}
