//! 4-level radix page tables stored in simulated physical memory.
//!
//! Entries follow the x86-64 long-mode shape: bit 0 present, bit 1 writable,
//! bit 63 no-execute, bits 12..=50 the frame base. Tables are genuine data in
//! [`PhysMem`], so the hardware walker and Memento's on-demand table
//! construction read and write the same bytes the OS does.

use memento_simcore::addr::{PhysAddr, VirtAddr};
use memento_simcore::physmem::{Frame, PhysMem};
use std::fmt;

/// Number of entries per table page (4096 / 8).
pub const ENTRIES_PER_TABLE: usize = 512;

/// Leaf permissions (read access is implied by presence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtePerms {
    /// Page may be written.
    pub writable: bool,
    /// Page may be executed.
    pub executable: bool,
}

impl PtePerms {
    /// Readable + writable + no-execute: the only combination Memento's page
    /// allocator hands out (paper §3.2 — heap memory only).
    pub const fn rw() -> Self {
        PtePerms {
            writable: true,
            executable: false,
        }
    }

    /// Read-only, no-execute.
    pub const fn ro() -> Self {
        PtePerms {
            writable: false,
            executable: false,
        }
    }

    /// Readable + executable (text pages).
    pub const fn rx() -> Self {
        PtePerms {
            writable: false,
            executable: true,
        }
    }
}

/// A page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(u64);

impl Pte {
    const PRESENT: u64 = 1 << 0;
    const WRITABLE: u64 = 1 << 1;
    const NX: u64 = 1 << 63;
    const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

    /// The all-zero (not present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Creates an entry from its raw bits.
    pub const fn from_raw(raw: u64) -> Self {
        Pte(raw)
    }

    /// Raw bits.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Builds a non-leaf entry pointing at the next-level table.
    pub fn table(frame: Frame) -> Self {
        Pte(Self::PRESENT | Self::WRITABLE | (frame.base_addr().raw() & Self::ADDR_MASK))
    }

    /// Builds a leaf entry mapping a data frame with `perms`.
    pub fn leaf(frame: Frame, perms: PtePerms) -> Self {
        let mut bits = Self::PRESENT | (frame.base_addr().raw() & Self::ADDR_MASK);
        if perms.writable {
            bits |= Self::WRITABLE;
        }
        if !perms.executable {
            bits |= Self::NX;
        }
        Pte(bits)
    }

    /// Whether the entry is present.
    pub const fn present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// Whether the mapped page is writable.
    pub const fn writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }

    /// Whether the mapped page is no-execute.
    pub const fn no_execute(self) -> bool {
        self.0 & Self::NX != 0
    }

    /// The frame the entry points to.
    pub fn frame(self) -> Frame {
        Frame::containing(PhysAddr::new(self.0 & Self::ADDR_MASK))
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.present() {
            return write!(f, "Pte(not-present)");
        }
        write!(
            f,
            "Pte({} r{}{})",
            self.frame(),
            if self.writable() { "w" } else { "-" },
            if self.no_execute() { "-" } else { "x" },
        )
    }
}

/// A successful translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// The mapped frame.
    pub frame: Frame,
    /// Leaf permissions.
    pub perms: PtePerms,
    /// Physical address of the leaf PTE (for invalidation/repair).
    pub pte_addr: PhysAddr,
}

/// Errors from mapping operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The frame source could not provide a table page.
    OutOfTableFrames,
    /// The virtual page is already mapped.
    AlreadyMapped,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::OutOfTableFrames => f.write_str("no frames available for page tables"),
            MapError::AlreadyMapped => f.write_str("virtual page already mapped"),
        }
    }
}

impl std::error::Error for MapError {}

/// Result of an unmap: the data frame (if any) plus table pages that became
/// empty and were freed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnmapResult {
    /// The previously mapped data frame.
    pub leaf_frame: Option<Frame>,
    /// Table pages freed because they became empty.
    pub freed_tables: Vec<Frame>,
}

/// A 4-level page table rooted at a physical frame.
#[derive(Clone, Debug)]
pub struct PageTable {
    root: Frame,
    /// Table pages currently allocated (including the root).
    table_pages: u64,
}

impl PageTable {
    /// Allocates a fresh root from boot memory.
    ///
    /// # Errors
    ///
    /// Returns `None`-like error if boot memory is exhausted.
    pub fn new(mem: &mut PhysMem) -> Result<Self, MapError> {
        let root = mem.alloc_frame().map_err(|_| MapError::OutOfTableFrames)?;
        mem.zero_frame(root);
        Ok(PageTable {
            root,
            table_pages: 1,
        })
    }

    /// Wraps an existing root frame (already zeroed by the caller).
    pub fn with_root(root: Frame) -> Self {
        PageTable {
            root,
            table_pages: 1,
        }
    }

    /// The root frame (what CR3 / MPTR holds).
    pub fn root(&self) -> Frame {
        self.root
    }

    /// Number of table pages currently allocated, including the root.
    pub fn table_pages(&self) -> u64 {
        self.table_pages
    }

    /// Records a table page added by an external constructor (Memento's
    /// hardware page allocator writes entries directly during walks), so
    /// later [`PageTable::unmap`] accounting stays consistent.
    pub fn note_external_table(&mut self) {
        self.table_pages += 1;
    }

    /// Physical address of the entry for `va` at `level` within the current
    /// tree, or `None` if an intermediate table is missing. Level 3 is the
    /// root, level 0 the leaf.
    pub fn entry_addr(&self, mem: &PhysMem, va: VirtAddr, level: u8) -> Option<PhysAddr> {
        let mut table = self.root;
        for lvl in (level..=3).rev() {
            let addr = table.base_addr().add(va.pt_index(lvl) as u64 * 8);
            if lvl == level {
                return Some(addr);
            }
            let pte = Pte::from_raw(mem.read_u64(addr));
            if !pte.present() {
                return None;
            }
            table = pte.frame();
        }
        // lint:allow(panic-in-lib): the range loop always reaches the target level and returns
        unreachable!("loop covers level..=3");
    }

    /// Maps `va -> frame` with `perms`, allocating intermediate tables from
    /// `table_source`.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if a leaf exists;
    /// [`MapError::OutOfTableFrames`] if `table_source` runs dry.
    pub fn map(
        &mut self,
        mem: &mut PhysMem,
        va: VirtAddr,
        frame: Frame,
        perms: PtePerms,
        table_source: &mut dyn FnMut(&mut PhysMem) -> Option<Frame>,
    ) -> Result<(), MapError> {
        let mut table = self.root;
        for lvl in (1..=3).rev() {
            let addr = table.base_addr().add(va.pt_index(lvl) as u64 * 8);
            let pte = Pte::from_raw(mem.read_u64(addr));
            table = if pte.present() {
                pte.frame()
            } else {
                let new_table = table_source(mem).ok_or(MapError::OutOfTableFrames)?;
                mem.zero_frame(new_table);
                mem.write_u64(addr, Pte::table(new_table).raw());
                self.table_pages += 1;
                new_table
            };
        }
        let leaf_addr = table.base_addr().add(va.pt_index(0) as u64 * 8);
        if Pte::from_raw(mem.read_u64(leaf_addr)).present() {
            return Err(MapError::AlreadyMapped);
        }
        mem.write_u64(leaf_addr, Pte::leaf(frame, perms).raw());
        Ok(())
    }

    /// Convenience mapping that takes intermediate tables from boot memory.
    ///
    /// # Errors
    ///
    /// Same as [`PageTable::map`].
    pub fn map_boot(
        &mut self,
        mem: &mut PhysMem,
        va: VirtAddr,
        frame: Frame,
        perms: PtePerms,
    ) -> Result<(), MapError> {
        self.map(mem, va, frame, perms, &mut |m| m.alloc_frame().ok())
    }

    /// Software translation (no timing, no TLB).
    pub fn translate(&self, mem: &PhysMem, va: VirtAddr) -> Option<Translation> {
        let leaf_addr = self.entry_addr(mem, va, 0)?;
        let pte = Pte::from_raw(mem.read_u64(leaf_addr));
        if !pte.present() {
            return None;
        }
        Some(Translation {
            frame: pte.frame(),
            perms: PtePerms {
                writable: pte.writable(),
                executable: !pte.no_execute(),
            },
            pte_addr: leaf_addr,
        })
    }

    fn table_is_empty(mem: &PhysMem, table: Frame) -> bool {
        (0..ENTRIES_PER_TABLE as u64).all(|i| mem.read_u64(table.base_addr().add(i * 8)) == 0)
    }

    /// Unmaps `va`, returning the data frame and any table pages freed
    /// because they became empty. Missing mappings unmap to an empty result.
    pub fn unmap(&mut self, mem: &mut PhysMem, va: VirtAddr) -> UnmapResult {
        // Record the walk path: (table frame, entry address) per level.
        let mut path: Vec<(Frame, PhysAddr)> = Vec::with_capacity(4);
        let mut table = self.root;
        for lvl in (0..=3).rev() {
            let addr = table.base_addr().add(va.pt_index(lvl) as u64 * 8);
            path.push((table, addr));
            if lvl == 0 {
                break;
            }
            let pte = Pte::from_raw(mem.read_u64(addr));
            if !pte.present() {
                return UnmapResult::default();
            }
            table = pte.frame();
        }
        let (_, leaf_addr) = *path.last().expect("leaf level present");
        let leaf = Pte::from_raw(mem.read_u64(leaf_addr));
        if !leaf.present() {
            return UnmapResult::default();
        }
        mem.write_u64(leaf_addr, 0);
        let mut result = UnmapResult {
            leaf_frame: Some(leaf.frame()),
            freed_tables: Vec::new(),
        };
        // Free empty tables bottom-up (never the root).
        for window in (1..path.len()).rev() {
            let (table_frame, _) = path[window];
            let (_, parent_entry) = path[window - 1];
            if Self::table_is_empty(mem, table_frame) {
                mem.write_u64(parent_entry, 0);
                mem.release_frame(table_frame);
                result.freed_tables.push(table_frame);
                self.table_pages -= 1;
            } else {
                break;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_simcore::addr::PAGE_SIZE;

    fn setup() -> (PhysMem, PageTable) {
        let mut mem = PhysMem::new(4 << 20);
        let pt = PageTable::new(&mut mem).unwrap();
        (mem, pt)
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut mem, mut pt) = setup();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x5555_0000_1000);
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        let t = pt.translate(&mem, va).unwrap();
        assert_eq!(t.frame, frame);
        assert!(t.perms.writable);
        assert!(!t.perms.executable);
        assert!(pt.translate(&mem, va.add(PAGE_SIZE as u64)).is_none());
    }

    #[test]
    fn table_page_accounting() {
        let (mut mem, mut pt) = setup();
        assert_eq!(pt.table_pages(), 1);
        let frame = mem.alloc_frame().unwrap();
        pt.map_boot(&mut mem, VirtAddr::new(0x1000), frame, PtePerms::rw())
            .unwrap();
        // Root + 3 intermediates.
        assert_eq!(pt.table_pages(), 4);
        // A neighbouring page reuses the whole path.
        let f2 = mem.alloc_frame().unwrap();
        pt.map_boot(&mut mem, VirtAddr::new(0x2000), f2, PtePerms::rw())
            .unwrap();
        assert_eq!(pt.table_pages(), 4);
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut pt) = setup();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x4000);
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        assert_eq!(
            pt.map_boot(&mut mem, va, frame, PtePerms::rw()),
            Err(MapError::AlreadyMapped)
        );
    }

    #[test]
    fn unmap_returns_frame_and_frees_tables() {
        let (mut mem, mut pt) = setup();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x6000_0000_0000);
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        assert_eq!(pt.table_pages(), 4);
        let res = pt.unmap(&mut mem, va);
        assert_eq!(res.leaf_frame, Some(frame));
        assert_eq!(res.freed_tables.len(), 3, "all intermediates emptied");
        assert_eq!(pt.table_pages(), 1);
        assert!(pt.translate(&mem, va).is_none());
    }

    #[test]
    fn unmap_keeps_shared_tables() {
        let (mut mem, mut pt) = setup();
        let f1 = mem.alloc_frame().unwrap();
        let f2 = mem.alloc_frame().unwrap();
        let va1 = VirtAddr::new(0x1000);
        let va2 = VirtAddr::new(0x2000);
        pt.map_boot(&mut mem, va1, f1, PtePerms::rw()).unwrap();
        pt.map_boot(&mut mem, va2, f2, PtePerms::rw()).unwrap();
        let res = pt.unmap(&mut mem, va1);
        assert_eq!(res.leaf_frame, Some(f1));
        assert!(res.freed_tables.is_empty(), "leaf table still holds va2");
        assert!(pt.translate(&mem, va2).is_some());
    }

    #[test]
    fn unmap_missing_is_noop() {
        let (mut mem, mut pt) = setup();
        let res = pt.unmap(&mut mem, VirtAddr::new(0x0dea_d000));
        assert_eq!(res, UnmapResult::default());
    }

    #[test]
    fn map_out_of_table_frames() {
        let (mut mem, mut pt) = setup();
        let frame = mem.alloc_frame().unwrap();
        let err = pt.map(
            &mut mem,
            VirtAddr::new(0x9000_0000),
            frame,
            PtePerms::rw(),
            &mut |_| None,
        );
        assert_eq!(err, Err(MapError::OutOfTableFrames));
    }

    #[test]
    fn pte_bit_layout() {
        let frame = Frame::from_number(0x1234);
        let leaf = Pte::leaf(frame, PtePerms::rw());
        assert!(leaf.present());
        assert!(leaf.writable());
        assert!(leaf.no_execute());
        assert_eq!(leaf.frame(), frame);
        let text = Pte::leaf(frame, PtePerms::rx());
        assert!(!text.writable());
        assert!(!text.no_execute());
        let table = Pte::table(frame);
        assert!(table.present() && table.writable());
        assert!(!Pte::EMPTY.present());
        assert_eq!(format!("{:?}", Pte::EMPTY), "Pte(not-present)");
    }

    #[test]
    fn entry_addr_levels() {
        let (mut mem, mut pt) = setup();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x7000);
        assert!(pt.entry_addr(&mem, va, 3).is_some(), "root always present");
        assert!(pt.entry_addr(&mem, va, 0).is_none(), "no path yet");
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        let leaf_addr = pt.entry_addr(&mem, va, 0).unwrap();
        assert_eq!(
            pt.translate(&mem, va).unwrap().pte_addr,
            leaf_addr,
            "translate and entry_addr agree"
        );
    }
}
