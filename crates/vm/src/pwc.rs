//! Paging-structure caches (PWC).
//!
//! Real MMUs cache intermediate page-table entries (PGD/PUD/PMD, in Linux
//! terms) so a TLB miss usually needs one memory access — the leaf PTE —
//! instead of four. The reference configuration leaves the PWC disabled to
//! match the calibrated baseline; the ablation study enables it to measure
//! how much of Memento's page-management win survives a stronger walker.

use memento_simcore::addr::VirtAddr;
use memento_simcore::physmem::Frame;
use memento_simcore::stats::HitMiss;

/// Geometry of one PWC level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PwcConfig {
    /// Entries per cached level (levels 1..=3; the leaf is never cached —
    /// that is the TLB's job).
    pub entries_per_level: usize,
}

impl PwcConfig {
    /// A typical modern geometry (e.g. 32 entries per structure level).
    pub fn typical() -> Self {
        PwcConfig {
            entries_per_level: 32,
        }
    }
}

impl Default for PwcConfig {
    fn default() -> Self {
        PwcConfig::typical()
    }
}

#[derive(Clone, Copy, Debug)]
struct PwcEntry {
    /// Root frame the entry belongs to (address-space discriminator).
    root: u64,
    /// The virtual-address prefix covered (upper bits above the level).
    tag: u64,
    /// The table frame the walk may resume from.
    table: Frame,
    valid: bool,
    lru: u64,
}

/// Per-core paging-structure cache covering levels 3 (entries pointing to
/// level-2 tables) down to 1 (entries pointing to leaf tables).
#[derive(Clone, Debug)]
pub struct PagingStructureCache {
    /// `levels[i]` caches the table reached *after* consuming the entry at
    /// level `i + 1` (i.e. `levels[0]` holds level-1 tables).
    levels: [Vec<PwcEntry>; 3],
    stamp: u64,
    stats: HitMiss,
}

fn tag_for(va: VirtAddr, level: u8) -> u64 {
    // Bits above the given level's index field.
    va.raw() >> (12 + 9 * (level as u32 + 1))
}

impl PagingStructureCache {
    /// Builds an empty PWC.
    pub fn new(cfg: PwcConfig) -> Self {
        let mk = || {
            vec![
                PwcEntry {
                    root: 0,
                    tag: 0,
                    table: Frame::from_number(0),
                    valid: false,
                    lru: 0,
                };
                cfg.entries_per_level
            ]
        };
        PagingStructureCache {
            levels: [mk(), mk(), mk()],
            stamp: 0,
            stats: HitMiss::default(),
        }
    }

    /// Lookup statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Finds the deepest cached table on the walk path for `va` under
    /// `root`. Returns `(level_of_table, table)` where `level_of_table` is
    /// the level whose entry should be read next (2, 1, or 0); `None`
    /// means the walk must start from the root (level 3).
    pub fn lookup(&mut self, root: Frame, va: VirtAddr) -> Option<(u8, Frame)> {
        self.stamp += 1;
        let stamp = self.stamp;
        // Deepest first: a level-1 table lets the walker read the leaf
        // directly.
        for table_level in 0..3u8 {
            let tag = tag_for(va, table_level);
            if let Some(e) = self.levels[table_level as usize]
                .iter_mut()
                .find(|e| e.valid && e.root == root.number() && e.tag == tag)
            {
                e.lru = stamp;
                self.stats.hit();
                return Some((table_level, e.table));
            }
        }
        self.stats.miss();
        None
    }

    /// Records that the walk for `va` under `root` reached `table`, a
    /// structure table at `table_level` (0 = leaf table, 1, or 2).
    pub fn insert(&mut self, root: Frame, va: VirtAddr, table_level: u8, table: Frame) {
        debug_assert!(table_level < 3);
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = tag_for(va, table_level);
        let set = &mut self.levels[table_level as usize];
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.root == root.number() && e.tag == tag)
        {
            e.table = table;
            e.lru = stamp;
            return;
        }
        let victim = set.iter().position(|e| !e.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        set[victim] = PwcEntry {
            root: root.number(),
            tag,
            table,
            valid: true,
            lru: stamp,
        };
    }

    /// Invalidates everything (context switch / page-table teardown).
    pub fn flush(&mut self) {
        for level in &mut self.levels {
            for e in level.iter_mut() {
                e.valid = false;
            }
        }
    }
}

impl Default for PagingStructureCache {
    fn default() -> Self {
        PagingStructureCache::new(PwcConfig::typical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Frame {
        Frame::from_number(7)
    }

    #[test]
    fn miss_then_hit_at_depth() {
        let mut pwc = PagingStructureCache::default();
        let va = VirtAddr::new(0x1234_5678_9000);
        assert_eq!(pwc.lookup(root(), va), None);
        pwc.insert(root(), va, 0, Frame::from_number(100));
        assert_eq!(pwc.lookup(root(), va), Some((0, Frame::from_number(100))));
        // A neighbouring page in the same 2 MB window shares the leaf table.
        let sibling = VirtAddr::new(0x1234_5678_A000);
        assert_eq!(
            pwc.lookup(root(), sibling),
            Some((0, Frame::from_number(100)))
        );
    }

    #[test]
    fn deeper_entries_win() {
        let mut pwc = PagingStructureCache::default();
        let va = VirtAddr::new(0x4000_0000_0000);
        pwc.insert(root(), va, 2, Frame::from_number(50)); // 512 GB window
        pwc.insert(root(), va, 0, Frame::from_number(52)); // 2 MB window
        assert_eq!(pwc.lookup(root(), va), Some((0, Frame::from_number(52))));
        // Outside the 2 MB window but inside the 512 GB window: level 2.
        let far = VirtAddr::new(0x4000_4000_0000);
        assert_eq!(pwc.lookup(root(), far), Some((2, Frame::from_number(50))));
    }

    #[test]
    fn roots_are_isolated() {
        let mut pwc = PagingStructureCache::default();
        let va = VirtAddr::new(0x9000);
        pwc.insert(root(), va, 0, Frame::from_number(9));
        assert_eq!(pwc.lookup(Frame::from_number(8), va), None);
    }

    #[test]
    fn flush_clears() {
        let mut pwc = PagingStructureCache::default();
        let va = VirtAddr::new(0x9000);
        pwc.insert(root(), va, 1, Frame::from_number(9));
        pwc.flush();
        assert_eq!(pwc.lookup(root(), va), None);
    }

    #[test]
    fn lru_eviction_within_level() {
        let mut pwc = PagingStructureCache::new(PwcConfig {
            entries_per_level: 2,
        });
        let mk = |i: u64| VirtAddr::new(i << 21); // distinct 2MB windows
        pwc.insert(root(), mk(1), 0, Frame::from_number(1));
        pwc.insert(root(), mk(2), 0, Frame::from_number(2));
        pwc.lookup(root(), mk(1)); // make (2) the LRU
        pwc.insert(root(), mk(3), 0, Frame::from_number(3));
        assert!(pwc.lookup(root(), mk(1)).is_some());
        assert_eq!(pwc.lookup(root(), mk(2)), None, "LRU victim evicted");
        assert!(pwc.lookup(root(), mk(3)).is_some());
    }
}
