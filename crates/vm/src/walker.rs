//! Hardware page-table walker.
//!
//! On a TLB miss the MMU walks the radix tree rooted at CR3 (or, for
//! addresses inside the Memento region, at the MPTR register — that walk is
//! driven by `memento-core`, which reuses the per-level address arithmetic
//! here). Each level costs one real memory access through the cache
//! hierarchy, so hot page-table lines are cheap and cold ones pay DRAM
//! latency, exactly the behaviour that makes page faults expensive in the
//! baseline.

use crate::pagetable::Pte;
use crate::pwc::PagingStructureCache;
use memento_cache::{AccessKind, MemSystem};
use memento_obs::Log2Hist;
use memento_simcore::addr::{PhysAddr, VirtAddr};
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_simcore::stats::HitMiss;

/// Why a walk ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Translation found; carries the mapped frame.
    Mapped(Frame),
    /// An entry at `level` was not present (page fault in the baseline;
    /// on-demand construction point for Memento). Level 0 is the leaf.
    NotPresent {
        /// Level of the missing entry (3 = root table entry, 0 = leaf PTE).
        level: u8,
        /// Physical address of the missing entry.
        entry_addr: PhysAddr,
    },
}

/// Result of a hardware page walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkResult {
    /// Outcome (mapped or faulting level).
    pub outcome: WalkOutcome,
    /// Cycles spent reading page-table entries.
    pub cycles: Cycles,
}

/// Walker statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkerStats {
    /// Completed walks ending in a translation (hit) vs. a fault (miss).
    pub walks: HitMiss,
    /// Page-table entry reads issued to the memory system.
    pub pte_reads: u64,
}

/// The hardware page walker. Stateless except for statistics.
#[derive(Clone, Debug, Default)]
pub struct PageWalker {
    stats: WalkerStats,
    depth: Log2Hist,
}

impl PageWalker {
    /// Creates a walker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> WalkerStats {
        self.stats
    }

    /// Distribution of PTE reads per walk (1 = PWC leaf hit, 4 = full
    /// four-level walk).
    pub fn depth_hist(&self) -> &Log2Hist {
        &self.depth
    }

    /// Walks the table rooted at `root` for `va`, issuing one memory access
    /// per level via `mem_sys` on behalf of `core`.
    pub fn walk(
        &mut self,
        mem_sys: &mut MemSystem,
        mem: &PhysMem,
        core: usize,
        root: Frame,
        va: VirtAddr,
    ) -> WalkResult {
        self.walk_from(mem_sys, mem, core, root, va, 3, None)
    }

    /// Walks with a paging-structure cache: the PWC may skip the upper
    /// levels entirely, and every structure table discovered on the way
    /// down is inserted for future walks.
    ///
    /// Invalidation contract: the caller must [`PagingStructureCache::flush`]
    /// whenever structure tables may have been freed (munmap that empties
    /// tables, address-space teardown, context switch) — exactly when real
    /// kernels execute `INVLPG`/CR3 writes. A stale entry would resume the
    /// walk from a recycled frame.
    #[allow(clippy::too_many_arguments)]
    pub fn walk_with_pwc(
        &mut self,
        mem_sys: &mut MemSystem,
        mem: &PhysMem,
        core: usize,
        root: Frame,
        va: VirtAddr,
        pwc: &mut PagingStructureCache,
    ) -> WalkResult {
        let (start_level, start_table) = match pwc.lookup(root, va) {
            Some((table_level, table)) => (table_level, table),
            None => (3, root),
        };
        self.walk_from(
            mem_sys,
            mem,
            core,
            root,
            va,
            start_level,
            Some((start_table, pwc)),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_from(
        &mut self,
        mem_sys: &mut MemSystem,
        mem: &PhysMem,
        core: usize,
        root: Frame,
        va: VirtAddr,
        start_level: u8,
        pwc_state: Option<(Frame, &mut PagingStructureCache)>,
    ) -> WalkResult {
        let (start_table, mut pwc) = match pwc_state {
            Some((t, p)) => (t, Some(p)),
            None => (root, None),
        };
        let mut cycles = Cycles::ZERO;
        let mut table = start_table;
        let mut reads = 0u64;
        for level in (0..=start_level).rev() {
            let entry_addr = table.base_addr().add(va.pt_index(level) as u64 * 8);
            cycles += mem_sys.access(core, AccessKind::Read, entry_addr).cycles;
            self.stats.pte_reads += 1;
            reads += 1;
            let pte = Pte::from_raw(mem.read_u64(entry_addr));
            if !pte.present() {
                self.stats.walks.miss();
                self.depth.record(reads);
                return WalkResult {
                    outcome: WalkOutcome::NotPresent { level, entry_addr },
                    cycles,
                };
            }
            if level == 0 {
                self.stats.walks.hit();
                self.depth.record(reads);
                return WalkResult {
                    outcome: WalkOutcome::Mapped(pte.frame()),
                    cycles,
                };
            }
            table = pte.frame();
            if let Some(p) = pwc.as_deref_mut() {
                // `table` is the structure table reached after consuming
                // the entry at `level`; it serves lookups at `level - 1`.
                p.insert(root, va, level - 1, table);
            }
        }
        // lint:allow(panic-in-lib): the level loop runs 3..=0 and level 0 always returns
        unreachable!("walk terminates at level 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::{PageTable, PtePerms};
    use memento_cache::MemSystemConfig;

    fn setup() -> (PhysMem, MemSystem, PageTable, PageWalker) {
        let mut mem = PhysMem::new(8 << 20);
        let pt = PageTable::new(&mut mem).unwrap();
        let sys = MemSystem::new(MemSystemConfig::paper_default(1));
        (mem, sys, pt, PageWalker::new())
    }

    #[test]
    fn walk_finds_mapping() {
        let (mut mem, mut sys, mut pt, mut walker) = setup();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x1234_5000);
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        let res = walker.walk(&mut sys, &mem, 0, pt.root(), va);
        assert_eq!(res.outcome, WalkOutcome::Mapped(frame));
        assert!(res.cycles > Cycles::ZERO);
        assert_eq!(walker.stats().pte_reads, 4);
        assert_eq!(walker.stats().walks.hits, 1);
    }

    #[test]
    fn walk_reports_missing_level() {
        let (mem, mut sys, pt, mut walker) = setup();
        let res = walker.walk(&mut sys, &mem, 0, pt.root(), VirtAddr::new(0x9000));
        match res.outcome {
            WalkOutcome::NotPresent { level, .. } => assert_eq!(level, 3),
            other => panic!("expected fault, got {other:?}"),
        }
        assert_eq!(walker.stats().walks.misses, 1);
    }

    #[test]
    fn missing_leaf_reports_level_zero() {
        let (mut mem, mut sys, mut pt, mut walker) = setup();
        let frame = mem.alloc_frame().unwrap();
        // Map one page, then walk its neighbour: path exists, leaf missing.
        pt.map_boot(&mut mem, VirtAddr::new(0x1000), frame, PtePerms::rw())
            .unwrap();
        let res = walker.walk(&mut sys, &mem, 0, pt.root(), VirtAddr::new(0x2000));
        match res.outcome {
            WalkOutcome::NotPresent { level, entry_addr } => {
                assert_eq!(level, 0);
                assert_eq!(
                    entry_addr,
                    pt.entry_addr(&mem, VirtAddr::new(0x2000), 0).unwrap()
                );
            }
            other => panic!("expected leaf fault, got {other:?}"),
        }
    }

    #[test]
    fn pwc_skips_upper_levels() {
        let (mut mem, mut sys, mut pt, mut walker) = setup();
        let mut pwc = crate::pwc::PagingStructureCache::default();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x5000_0000);
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        let reads_before = walker.stats().pte_reads;
        let first = walker.walk_with_pwc(&mut sys, &mem, 0, pt.root(), va, &mut pwc);
        assert_eq!(first.outcome, WalkOutcome::Mapped(frame));
        assert_eq!(
            walker.stats().pte_reads - reads_before,
            4,
            "cold: full walk"
        );
        // Map a neighbour sharing the leaf table: the PWC jumps straight
        // to the leaf level (one PTE read).
        let f2 = mem.alloc_frame().unwrap();
        let va2 = va.add(memento_simcore::addr::PAGE_SIZE as u64);
        pt.map_boot(&mut mem, va2, f2, PtePerms::rw()).unwrap();
        let reads_before = walker.stats().pte_reads;
        let second = walker.walk_with_pwc(&mut sys, &mem, 0, pt.root(), va2, &mut pwc);
        assert_eq!(second.outcome, WalkOutcome::Mapped(f2));
        assert_eq!(
            walker.stats().pte_reads - reads_before,
            1,
            "warm: leaf only"
        );
        assert!(pwc.stats().hits >= 1);
    }

    #[test]
    fn repeated_walks_get_cheaper() {
        let (mut mem, mut sys, mut pt, mut walker) = setup();
        let frame = mem.alloc_frame().unwrap();
        let va = VirtAddr::new(0x4000_0000);
        pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
        let cold = walker.walk(&mut sys, &mem, 0, pt.root(), va);
        let warm = walker.walk(&mut sys, &mem, 0, pt.root(), va);
        assert!(warm.cycles < cold.cycles, "PTE lines now cached");
    }
}
