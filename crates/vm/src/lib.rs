//! Virtual-memory substrate: x86-64 style 4-level page tables resident in
//! simulated physical memory, a hardware page walker that issues real cache
//! accesses, and a two-level TLB (Table 3: L1 64-entry 4-way, L2 2048-entry
//! 12-way).
//!
//! Both the OS (via `memento-kernel`) and Memento's hardware page allocator
//! build page tables with the structures defined here — the Memento page
//! table reached through the `MPTR` register is an ordinary radix table, just
//! constructed by hardware on demand (paper §3.2).
//!
//! # Examples
//!
//! ```
//! use memento_simcore::{PhysMem, VirtAddr};
//! use memento_vm::pagetable::{PageTable, PtePerms};
//!
//! let mut mem = PhysMem::new(1 << 22);
//! let mut pt = PageTable::new(&mut mem).unwrap();
//! let frame = mem.alloc_frame().unwrap();
//! let va = VirtAddr::new(0x7000_0000_0000);
//! pt.map_boot(&mut mem, va, frame, PtePerms::rw()).unwrap();
//! assert_eq!(pt.translate(&mem, va).unwrap().frame, frame);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pagetable;
pub mod pwc;
pub mod tlb;
pub mod walker;

pub use pagetable::{MapError, PageTable, Pte, PtePerms, Translation};
pub use pwc::{PagingStructureCache, PwcConfig};
pub use tlb::{Tlb, TlbConfig, TlbLookup, TlbStats};
pub use walker::{PageWalker, WalkOutcome, WalkResult};
