//! Two-level set-associative TLB (paper Table 3: L1 64-entry 4-way,
//! L2 2048-entry 12-way).
//!
//! The TLB caches virtual-page-number → frame translations. Misses at both
//! levels trigger a hardware page walk (see [`crate::walker`]). Shootdowns
//! invalidate single pages; context switches flush everything (the simulated
//! machine has no ASIDs, matching the paper's single-process-per-core focus).

use memento_obs::Log2Hist;
use memento_simcore::addr::VirtAddr;
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::Frame;
use memento_simcore::stats::HitMiss;

/// Geometry of one TLB level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbLevelConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Lookup latency charged when the translation is found at this level.
    pub latency: Cycles,
}

/// Geometry of the two-level TLB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// First level.
    pub l1: TlbLevelConfig,
    /// Second level.
    pub l2: TlbLevelConfig,
}

impl TlbConfig {
    /// The paper's Table 3 TLB: L1 64-entry 4-way (free on hit), L2
    /// 2048-entry 12-way (7-cycle hit).
    pub fn paper_default() -> Self {
        TlbConfig {
            l1: TlbLevelConfig {
                entries: 64,
                assoc: 4,
                latency: Cycles::new(0),
            },
            l2: TlbLevelConfig {
                entries: 2048,
                assoc: 12,
                latency: Cycles::new(7),
            },
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::paper_default()
    }
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    vpn: u64,
    frame: Frame,
    valid: bool,
    lru: u64,
}

#[derive(Clone, Debug)]
struct TlbArray {
    sets: Vec<Vec<TlbEntry>>,
    stamp: u64,
    latency: Cycles,
}

impl TlbArray {
    fn new(cfg: TlbLevelConfig) -> Self {
        // Paper geometry (2048-entry, 12-way) is not an exact multiple, so
        // round the set count up — matching how sliced TLBs are built.
        let num_sets = cfg.entries.div_ceil(cfg.assoc).max(1);
        TlbArray {
            sets: vec![
                vec![
                    TlbEntry {
                        vpn: 0,
                        frame: Frame::from_number(0),
                        valid: false,
                        lru: 0,
                    };
                    cfg.assoc
                ];
                num_sets
            ],
            stamp: 0,
            latency: cfg.latency,
        }
    }

    fn set_index(&self, vpn: u64) -> usize {
        (vpn % self.sets.len() as u64) as usize
    }

    fn lookup(&mut self, vpn: u64) -> Option<Frame> {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_index(vpn);
        for e in self.sets[idx].iter_mut() {
            if e.valid && e.vpn == vpn {
                e.lru = stamp;
                return Some(e.frame);
            }
        }
        None
    }

    fn insert(&mut self, vpn: u64, frame: Frame) {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.frame = frame;
            e.lru = stamp;
            return;
        }
        let victim = match set.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("non-empty set"),
        };
        set[victim] = TlbEntry {
            vpn,
            frame,
            valid: true,
            lru: stamp,
        };
    }

    fn invalidate(&mut self, vpn: u64) -> bool {
        let idx = self.set_index(vpn);
        let mut any = false;
        for e in self.sets[idx].iter_mut() {
            if e.valid && e.vpn == vpn {
                e.valid = false;
                any = true;
            }
        }
        any
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            for e in set.iter_mut() {
                e.valid = false;
            }
        }
    }
}

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// First-level lookups.
    pub l1: HitMiss,
    /// Second-level lookups (only on L1 miss).
    pub l2: HitMiss,
    /// Pages invalidated by shootdowns.
    pub shootdowns: u64,
    /// Full flushes (context switches).
    pub flushes: u64,
}

/// Outcome of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbLookup {
    /// The translation, if cached at either level.
    pub frame: Option<Frame>,
    /// Lookup latency (0 on an L1 hit with the default config).
    pub cycles: Cycles,
}

/// A two-level TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    l1: TlbArray,
    l2: TlbArray,
    stats: TlbStats,
    lat: Log2Hist,
}

impl Tlb {
    /// Builds an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            l1: TlbArray::new(cfg.l1),
            l2: TlbArray::new(cfg.l2),
            stats: TlbStats::default(),
            lat: Log2Hist::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Distribution of lookup latencies (cycles; bucket 0 = free L1 hits).
    pub fn hit_latency(&self) -> &Log2Hist {
        &self.lat
    }

    /// Looks up the page containing `va` in both levels; promotes L2 hits
    /// into L1.
    pub fn lookup(&mut self, va: VirtAddr) -> TlbLookup {
        let vpn = va.page_number();
        if let Some(frame) = self.l1.lookup(vpn) {
            self.stats.l1.hit();
            self.lat.record(self.l1.latency.raw());
            return TlbLookup {
                frame: Some(frame),
                cycles: self.l1.latency,
            };
        }
        self.stats.l1.miss();
        let cycles = self.l1.latency + self.l2.latency;
        self.lat.record(cycles.raw());
        if let Some(frame) = self.l2.lookup(vpn) {
            self.stats.l2.hit();
            self.l1.insert(vpn, frame);
            return TlbLookup {
                frame: Some(frame),
                cycles,
            };
        }
        self.stats.l2.miss();
        TlbLookup {
            frame: None,
            cycles,
        }
    }

    /// Installs a translation into both levels (post-walk insert).
    pub fn insert(&mut self, va: VirtAddr, frame: Frame) {
        let vpn = va.page_number();
        self.l1.insert(vpn, frame);
        self.l2.insert(vpn, frame);
    }

    /// Invalidates one page (TLB shootdown).
    pub fn shootdown(&mut self, va: VirtAddr) {
        let vpn = va.page_number();
        let hit = self.l1.invalidate(vpn) | self.l2.invalidate(vpn);
        if hit {
            self.stats.shootdowns += 1;
        }
    }

    /// Flushes all translations (context switch).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.stats.flushes += 1;
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(TlbConfig::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_simcore::addr::PAGE_SIZE;

    fn page(n: u64) -> VirtAddr {
        VirtAddr::new(n * PAGE_SIZE as u64)
    }

    #[test]
    fn miss_insert_hit() {
        let mut tlb = Tlb::default();
        let va = page(7);
        assert_eq!(tlb.lookup(va).frame, None);
        tlb.insert(va, Frame::from_number(42));
        let hit = tlb.lookup(va);
        assert_eq!(hit.frame, Some(Frame::from_number(42)));
        assert_eq!(hit.cycles, Cycles::ZERO, "L1 hit is free");
        assert_eq!(tlb.stats().l1.hits, 1);
        assert_eq!(tlb.stats().l1.misses, 1);
    }

    #[test]
    fn l2_backstops_l1_evictions() {
        let mut tlb = Tlb::default();
        // Fill far more pages than L1 holds (64 entries) but fewer than L2.
        for n in 0..512u64 {
            tlb.insert(page(n), Frame::from_number(n));
        }
        // Page 0 was evicted from L1 but should hit in L2 with latency 7.
        let out = tlb.lookup(page(0));
        assert_eq!(out.frame, Some(Frame::from_number(0)));
        assert_eq!(out.cycles, Cycles::new(7));
        assert_eq!(tlb.stats().l2.hits, 1);
        // And is now promoted to L1.
        assert_eq!(tlb.lookup(page(0)).cycles, Cycles::ZERO);
    }

    #[test]
    fn same_page_offsets_share_entry() {
        let mut tlb = Tlb::default();
        tlb.insert(VirtAddr::new(0x1004), Frame::from_number(9));
        assert_eq!(
            tlb.lookup(VirtAddr::new(0x1ffc)).frame,
            Some(Frame::from_number(9))
        );
    }

    #[test]
    fn shootdown_removes_page() {
        let mut tlb = Tlb::default();
        tlb.insert(page(3), Frame::from_number(3));
        tlb.shootdown(page(3));
        assert_eq!(tlb.lookup(page(3)).frame, None);
        assert_eq!(tlb.stats().shootdowns, 1);
        // Shooting down an absent page does not count.
        tlb.shootdown(page(99));
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn flush_clears_everything() {
        let mut tlb = Tlb::default();
        for n in 0..32u64 {
            tlb.insert(page(n), Frame::from_number(n));
        }
        tlb.flush();
        for n in 0..32u64 {
            assert_eq!(tlb.lookup(page(n)).frame, None);
        }
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn reinsert_updates_mapping() {
        let mut tlb = Tlb::default();
        tlb.insert(page(1), Frame::from_number(10));
        tlb.insert(page(1), Frame::from_number(20));
        assert_eq!(tlb.lookup(page(1)).frame, Some(Frame::from_number(20)));
    }
}
