//! Property-based tests of the virtual-memory substrate: page tables under
//! arbitrary map/unmap interleavings, and the TLB against a reference
//! model.

use memento_simcore::addr::{VirtAddr, PAGE_SIZE};
use memento_simcore::cycles::Cycles;
use memento_simcore::physmem::{Frame, PhysMem};
use memento_vm::pagetable::{PageTable, PtePerms};
use memento_vm::pwc::{PagingStructureCache, PwcConfig};
use memento_vm::tlb::Tlb;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum PtOp {
    Map(u16),
    Unmap(u16),
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(PtOp::Map),
            any::<u16>().prop_map(PtOp::Unmap),
        ],
        1..150,
    )
}

fn page_va(n: u16) -> VirtAddr {
    // Spread pages over several table subtrees.
    VirtAddr::new((n as u64 % 1024) * PAGE_SIZE as u64 + (n as u64 / 1024) * (1 << 30))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The page table agrees with a hash-map model under arbitrary
    /// map/unmap sequences, and table-page accounting never leaks.
    #[test]
    fn page_table_matches_model(ops in pt_ops()) {
        let mut mem = PhysMem::new(256 << 20);
        let mut pt = PageTable::new(&mut mem).unwrap();
        let mut model: HashMap<u64, Frame> = HashMap::new();
        let mut next_frame = 10_000u64;

        for op in ops {
            match op {
                PtOp::Map(n) => {
                    let va = page_va(n);
                    let frame = Frame::from_number(next_frame);
                    next_frame += 1;
                    let res = pt.map_boot(&mut mem, va, frame, PtePerms::rw());
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(va.raw()) {
                        prop_assert!(res.is_ok());
                        e.insert(frame);
                    } else {
                        prop_assert!(res.is_err(), "double map must fail");
                    }
                }
                PtOp::Unmap(n) => {
                    let va = page_va(n);
                    let res = pt.unmap(&mut mem, va);
                    prop_assert_eq!(res.leaf_frame, model.remove(&va.raw()));
                }
            }
            prop_assert!(pt.table_pages() >= 1, "root always allocated");
        }

        // Model equivalence for every address ever seen.
        for (va, frame) in &model {
            let t = pt.translate(&mem, VirtAddr::new(*va)).expect("mapped");
            prop_assert_eq!(t.frame, *frame);
        }
        // Unmapping the rest returns to a root-only table.
        let addrs: Vec<u64> = model.keys().copied().collect();
        for va in addrs {
            pt.unmap(&mut mem, VirtAddr::new(va));
        }
        prop_assert_eq!(pt.table_pages(), 1, "all tables reclaimed");
    }

    /// The TLB never returns a stale or wrong translation relative to the
    /// insert/shootdown/flush history.
    #[test]
    fn tlb_never_lies(ops in proptest::collection::vec((0u8..3, any::<u16>()), 1..300)) {
        let mut tlb = Tlb::default();
        let mut model: HashMap<u64, Frame> = HashMap::new();
        for (kind, n) in ops {
            let va = page_va(n);
            match kind {
                0 => {
                    let frame = Frame::from_number(n as u64 + 5);
                    tlb.insert(va, frame);
                    model.insert(va.page_number(), frame);
                }
                1 => {
                    tlb.shootdown(va);
                    model.remove(&va.page_number());
                }
                _ => {
                    // Lookup: a hit must match the model exactly; a miss is
                    // always allowed (capacity evictions).
                    if let Some(frame) = tlb.lookup(va).frame {
                        prop_assert_eq!(
                            Some(&frame),
                            model.get(&va.page_number()),
                            "TLB returned a translation the model disagrees with"
                        );
                    }
                }
            }
        }
        tlb.flush();
        for key in model.keys() {
            let va = VirtAddr::new(key * PAGE_SIZE as u64);
            prop_assert!(tlb.lookup(va).frame.is_none(), "flush must clear");
        }
    }

    /// Statistics are conserved under arbitrary op interleavings: every
    /// lookup lands in exactly one L1 bucket, L2 is consulted exactly on
    /// L1 misses, and the latency histogram records every lookup.
    #[test]
    fn tlb_stats_account_every_lookup(
        ops in proptest::collection::vec((0u8..4, any::<u16>()), 1..300)
    ) {
        let mut tlb = Tlb::default();
        let mut lookups = 0u64;
        for (kind, n) in ops {
            let va = page_va(n);
            match kind {
                0 => tlb.insert(va, Frame::from_number(n as u64 + 5)),
                1 => tlb.shootdown(va),
                2 => tlb.flush(),
                _ => {
                    let _ = tlb.lookup(va);
                    lookups += 1;
                }
            }
        }
        let s = tlb.stats();
        prop_assert_eq!(s.l1.hits + s.l1.misses, lookups, "L1 sees every lookup");
        prop_assert_eq!(
            s.l2.hits + s.l2.misses,
            s.l1.misses,
            "L2 consulted exactly on L1 misses"
        );
        prop_assert_eq!(
            tlb.hit_latency().count(),
            lookups,
            "latency histogram records every lookup"
        );
    }

    /// L1 replacement picks a *valid* LRU victim: with the paper's 16-set
    /// 4-way L1, five pages in one set overflow it by exactly one, and the
    /// evicted page must be the least-recently-touched (the most recent
    /// survivors stay free L1 hits).
    #[test]
    fn tlb_lru_victim_is_least_recently_used(
        priorities in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
    ) {
        // Paper L1: 64 entries 4-way = 16 sets, so pages 16 apart collide.
        let set0 = |k: u64| page_va((k * 16) as u16);
        let mut tlb = Tlb::default();
        for k in 0..4u64 {
            tlb.insert(set0(k), Frame::from_number(k));
        }
        // Touch all four resident pages in the generated priority order.
        let p = [priorities.0, priorities.1, priorities.2, priorities.3];
        let mut order: Vec<u64> = (0..4).collect();
        order.sort_by_key(|k| (p[*k as usize], *k));
        for k in &order {
            prop_assert_eq!(
                tlb.lookup(set0(*k)).cycles,
                Cycles::ZERO,
                "resident page must be a free L1 hit"
            );
        }
        // A fifth page in the same set forces one eviction.
        tlb.insert(set0(4), Frame::from_number(4));
        let victim = order[0];
        let survivor = order[3];
        // The least-recently-touched page fell to L2 (7-cycle hit)...
        let out = tlb.lookup(set0(victim));
        prop_assert_eq!(out.frame, Some(Frame::from_number(victim)), "L2 backstop");
        prop_assert_eq!(out.cycles, Cycles::new(7), "victim is the LRU page");
        // ...while the most-recently-touched page and the newcomer stayed
        // resident. (The victim's L2 promotion re-evicted at most the then-
        // LRU entry, never these two.)
        prop_assert_eq!(tlb.lookup(set0(survivor)).cycles, Cycles::ZERO);
        prop_assert_eq!(tlb.lookup(set0(4)).cycles, Cycles::ZERO);
    }

    /// The PWC never resumes a walk from a table the insert/flush history
    /// does not justify: a hit must match the deepest matching entry of a
    /// hash-map model exactly; misses are always allowed (capacity).
    #[test]
    fn pwc_matches_model(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..2, 0u8..3, any::<u8>()), 1..200
        )
    ) {
        let mut pwc = PagingStructureCache::new(PwcConfig::typical());
        let mut model: HashMap<(u64, u8, u64), Frame> = HashMap::new();
        let mut lookups = 0u64;
        let mut next_table = 1_000u64;
        for (kind, root_n, level, win) in ops {
            let root = Frame::from_number(root_n as u64 + 7);
            // Distinct 2 MB windows; upper bits exercise all tag widths.
            let va = VirtAddr::new((win as u64) << 21);
            let tag = |lv: u8| va.raw() >> (12 + 9 * (lv as u32 + 1));
            match kind {
                0 => {
                    let table = Frame::from_number(next_table);
                    next_table += 1;
                    pwc.insert(root, va, level, table);
                    model.insert((root.number(), level, tag(level)), table);
                }
                1 => {
                    pwc.flush();
                    model.clear();
                }
                _ => {
                    lookups += 1;
                    let got = pwc.lookup(root, va);
                    if let Some((lv, table)) = got {
                        // A hit must match what was inserted for exactly
                        // this (root, level, tag); capacity evictions only
                        // ever *remove* entries, so misses and shallower
                        // hits are always allowed.
                        prop_assert_eq!(
                            model.get(&(root.number(), lv, tag(lv))),
                            Some(&table),
                            "PWC returned a table the model disagrees with"
                        );
                    }
                }
            }
        }
        let s = pwc.stats();
        prop_assert_eq!(s.hits + s.misses, lookups, "every lookup accounted");
    }

    /// PWC replacement with a 2-entry level evicts exactly the
    /// least-recently-used entry, whichever entry the history favours.
    #[test]
    fn pwc_lru_victim_is_least_recently_used(favour_first in any::<bool>()) {
        let mut pwc = PagingStructureCache::new(PwcConfig { entries_per_level: 2 });
        let root = Frame::from_number(7);
        let win = |i: u64| VirtAddr::new(i << 21);
        pwc.insert(root, win(1), 0, Frame::from_number(1));
        pwc.insert(root, win(2), 0, Frame::from_number(2));
        let (touched, victim) = if favour_first { (1u64, 2u64) } else { (2, 1) };
        prop_assert!(pwc.lookup(root, win(touched)).is_some());
        pwc.insert(root, win(3), 0, Frame::from_number(3));
        prop_assert_eq!(pwc.lookup(root, win(victim)), None, "LRU entry evicted");
        prop_assert_eq!(
            pwc.lookup(root, win(touched)),
            Some((0, Frame::from_number(touched)))
        );
        prop_assert_eq!(pwc.lookup(root, win(3)), Some((0, Frame::from_number(3))));
    }
}
