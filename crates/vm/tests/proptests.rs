//! Property-based tests of the virtual-memory substrate: page tables under
//! arbitrary map/unmap interleavings, and the TLB against a reference
//! model.

use memento_simcore::addr::{VirtAddr, PAGE_SIZE};
use memento_simcore::physmem::{Frame, PhysMem};
use memento_vm::pagetable::{PageTable, PtePerms};
use memento_vm::tlb::Tlb;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum PtOp {
    Map(u16),
    Unmap(u16),
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(PtOp::Map),
            any::<u16>().prop_map(PtOp::Unmap),
        ],
        1..150,
    )
}

fn page_va(n: u16) -> VirtAddr {
    // Spread pages over several table subtrees.
    VirtAddr::new((n as u64 % 1024) * PAGE_SIZE as u64 + (n as u64 / 1024) * (1 << 30))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The page table agrees with a hash-map model under arbitrary
    /// map/unmap sequences, and table-page accounting never leaks.
    #[test]
    fn page_table_matches_model(ops in pt_ops()) {
        let mut mem = PhysMem::new(256 << 20);
        let mut pt = PageTable::new(&mut mem).unwrap();
        let mut model: HashMap<u64, Frame> = HashMap::new();
        let mut next_frame = 10_000u64;

        for op in ops {
            match op {
                PtOp::Map(n) => {
                    let va = page_va(n);
                    let frame = Frame::from_number(next_frame);
                    next_frame += 1;
                    let res = pt.map_boot(&mut mem, va, frame, PtePerms::rw());
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(va.raw()) {
                        prop_assert!(res.is_ok());
                        e.insert(frame);
                    } else {
                        prop_assert!(res.is_err(), "double map must fail");
                    }
                }
                PtOp::Unmap(n) => {
                    let va = page_va(n);
                    let res = pt.unmap(&mut mem, va);
                    prop_assert_eq!(res.leaf_frame, model.remove(&va.raw()));
                }
            }
            prop_assert!(pt.table_pages() >= 1, "root always allocated");
        }

        // Model equivalence for every address ever seen.
        for (va, frame) in &model {
            let t = pt.translate(&mem, VirtAddr::new(*va)).expect("mapped");
            prop_assert_eq!(t.frame, *frame);
        }
        // Unmapping the rest returns to a root-only table.
        let addrs: Vec<u64> = model.keys().copied().collect();
        for va in addrs {
            pt.unmap(&mut mem, VirtAddr::new(va));
        }
        prop_assert_eq!(pt.table_pages(), 1, "all tables reclaimed");
    }

    /// The TLB never returns a stale or wrong translation relative to the
    /// insert/shootdown/flush history.
    #[test]
    fn tlb_never_lies(ops in proptest::collection::vec((0u8..3, any::<u16>()), 1..300)) {
        let mut tlb = Tlb::default();
        let mut model: HashMap<u64, Frame> = HashMap::new();
        for (kind, n) in ops {
            let va = page_va(n);
            match kind {
                0 => {
                    let frame = Frame::from_number(n as u64 + 5);
                    tlb.insert(va, frame);
                    model.insert(va.page_number(), frame);
                }
                1 => {
                    tlb.shootdown(va);
                    model.remove(&va.page_number());
                }
                _ => {
                    // Lookup: a hit must match the model exactly; a miss is
                    // always allowed (capacity evictions).
                    if let Some(frame) = tlb.lookup(va).frame {
                        prop_assert_eq!(
                            Some(&frame),
                            model.get(&va.page_number()),
                            "TLB returned a translation the model disagrees with"
                        );
                    }
                }
            }
        }
        tlb.flush();
        for key in model.keys() {
            let va = VirtAddr::new(key * PAGE_SIZE as u64);
            prop_assert!(tlb.lookup(va).frame.is_none(), "flush must clear");
        }
    }
}
