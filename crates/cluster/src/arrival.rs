//! Open-loop arrival process: seeded deterministic inter-arrival times and
//! workload-mix sampling.
//!
//! The generator is *open-loop* — arrival times are drawn up front from a
//! Poisson process (exponential inter-arrival gaps) and never react to how
//! the cluster is coping, exactly how production traffic behaves. A slow
//! fleet therefore builds queues and tail latency instead of politely
//! slowing the offered load, which is the failure mode the tail-latency
//! evaluation exists to measure.
//!
//! Everything is a pure function of the seed: the same
//! [`ArrivalConfig`] produces byte-identical arrival sequences on every
//! run, so baseline and Memento fleets can be offered the *same* traffic.

use crate::error::ClusterError;
use memento_workloads::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A weighted set of workloads that arrivals sample from.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    specs: Vec<WorkloadSpec>,
    /// Cumulative weights, normalised to end at 1.0.
    cumulative: Vec<f64>,
}

impl WorkloadMix {
    /// A mix with explicit per-workload weights (relative shares; they
    /// need not sum to one). Zero-weight entries are allowed and simply
    /// never sampled.
    pub fn weighted(entries: Vec<(WorkloadSpec, f64)>) -> Result<Self, ClusterError> {
        let total: f64 = entries.iter().map(|(_, w)| w.max(0.0)).sum();
        if entries.is_empty() || total <= 0.0 {
            return Err(ClusterError::EmptyMix);
        }
        let mut specs = Vec::with_capacity(entries.len());
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for (spec, w) in entries {
            acc += w.max(0.0) / total;
            specs.push(spec);
            cumulative.push(acc);
        }
        // Guard against float drift so the last bucket always catches 1.0.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(WorkloadMix { specs, cumulative })
    }

    /// An equal-share mix over `specs`.
    pub fn uniform(specs: Vec<WorkloadSpec>) -> Result<Self, ClusterError> {
        WorkloadMix::weighted(specs.into_iter().map(|s| (s, 1.0)).collect())
    }

    /// The workloads in the mix, in sampling-index order.
    pub fn specs(&self) -> &[WorkloadSpec] {
        &self.specs
    }

    /// The spec at mix index `idx`.
    pub fn spec(&self, idx: usize) -> &WorkloadSpec {
        &self.specs[idx]
    }

    /// Number of workloads in the mix.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the mix holds no workloads (unreachable via constructors).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen_range(0.0..1.0);
        self.cumulative
            .iter()
            .position(|c| u < *c)
            .unwrap_or(self.specs.len() - 1)
    }
}

/// Parameters of the open-loop arrival process.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalConfig {
    /// Seed for inter-arrival gaps and workload sampling.
    pub seed: u64,
    /// Number of invocations to offer.
    pub count: u64,
    /// Mean inter-arrival gap in simulated cycles (1 / arrival rate). At
    /// 3 GHz, 3_000 cycles = 1 µs between arrivals fleet-wide.
    pub mean_interarrival_cycles: f64,
}

/// One offered invocation: its id (submission order), arrival time in
/// simulated cycles, and the mix index of the workload it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Submission-order id, dense from 0.
    pub id: u64,
    /// Arrival time in simulated cycles.
    pub time: u64,
    /// Index into the [`WorkloadMix`].
    pub workload: usize,
}

/// Draws the full arrival sequence: a pure function of
/// `(cfg.seed, cfg.count, cfg.mean_interarrival_cycles, mix)`, strictly
/// increasing in time (gaps are clamped to ≥ 1 cycle).
pub fn generate_arrivals(
    cfg: &ArrivalConfig,
    mix: &WorkloadMix,
) -> Result<Vec<Arrival>, ClusterError> {
    // Rejects NaN, infinities, zero, and negatives in one test.
    if !cfg.mean_interarrival_cycles.is_finite() || cfg.mean_interarrival_cycles <= 0.0 {
        return Err(ClusterError::InvalidArrivalRate(
            cfg.mean_interarrival_cycles,
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = Vec::with_capacity(cfg.count as usize);
    let mut t = 0u64;
    for id in 0..cfg.count {
        // Exponential gap via inverse transform; u ∈ [0, 1) keeps ln finite.
        let u = rng.gen_range(0.0..1.0);
        let gap = (-cfg.mean_interarrival_cycles * (1.0 - u).ln()).round() as u64;
        t += gap.max(1);
        let workload = mix.sample(&mut rng);
        arrivals.push(Arrival {
            id,
            time: t,
            workload,
        });
    }
    Ok(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_workloads::suite;

    fn two_mix() -> WorkloadMix {
        WorkloadMix::uniform(vec![
            suite::by_name("aes").expect("known workload"),
            suite::by_name("html").expect("known workload"),
        ])
        .expect("non-empty mix")
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let cfg = ArrivalConfig {
            seed: 42,
            count: 500,
            mean_interarrival_cycles: 10_000.0,
        };
        let mix = two_mix();
        let a = generate_arrivals(&cfg, &mix).expect("valid config");
        let b = generate_arrivals(&cfg, &mix).expect("valid config");
        assert_eq!(a, b);
        let c = generate_arrivals(&ArrivalConfig { seed: 43, ..cfg }, &mix).expect("valid config");
        assert_ne!(a, c, "different seeds must produce different traffic");
    }

    #[test]
    fn times_strictly_increase_and_mean_gap_is_plausible() {
        let cfg = ArrivalConfig {
            seed: 7,
            count: 20_000,
            mean_interarrival_cycles: 5_000.0,
        };
        let arrivals = generate_arrivals(&cfg, &two_mix()).expect("valid config");
        assert_eq!(arrivals.len(), 20_000);
        for w in arrivals.windows(2) {
            assert!(
                w[0].time < w[1].time,
                "open-loop times must strictly increase"
            );
        }
        let mean = arrivals.last().expect("non-empty").time as f64 / arrivals.len() as f64;
        assert!(
            (4_500.0..5_500.0).contains(&mean),
            "empirical mean gap {mean} should be near 5000"
        );
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = WorkloadMix::weighted(vec![
            (suite::by_name("aes").expect("known workload"), 3.0),
            (suite::by_name("html").expect("known workload"), 1.0),
        ])
        .expect("non-empty mix");
        let cfg = ArrivalConfig {
            seed: 1,
            count: 40_000,
            mean_interarrival_cycles: 100.0,
        };
        let arrivals = generate_arrivals(&cfg, &mix).expect("valid config");
        let first = arrivals.iter().filter(|a| a.workload == 0).count();
        let share = first as f64 / arrivals.len() as f64;
        assert!((0.72..0.78).contains(&share), "3:1 mix share was {share}");
    }

    #[test]
    fn invalid_inputs_are_typed() {
        assert_eq!(
            WorkloadMix::uniform(vec![]).err(),
            Some(ClusterError::EmptyMix)
        );
        let mix = two_mix();
        let bad = ArrivalConfig {
            seed: 0,
            count: 1,
            mean_interarrival_cycles: 0.0,
        };
        assert!(matches!(
            generate_arrivals(&bad, &mix),
            Err(ClusterError::InvalidArrivalRate(_))
        ));
    }
}
