//! Service profiles: calibrated per-(workload, config) cost tables that
//! let the simulator scale to millions of invocations.
//!
//! The Measured engine runs a real [`WarmContainer`] machine for every
//! container in the fleet — exact, but each invocation simulates the full
//! memory hierarchy. The Profiled engine instead *calibrates once* per
//! (workload, system config): one cold start plus a handful of warm
//! invocations of a real machine yield a [`ServiceProfile`] with the
//! cold/warm service times and the active/idle frame footprints, and the
//! fleet simulation then replays those numbers. Because the underlying
//! machine is deterministic, the profile is a pure function of
//! (spec, config) and the profiled fleet remains byte-deterministic.

use std::collections::BTreeMap;

use memento_system::{SystemConfig, WarmContainer};
use memento_workloads::spec::WorkloadSpec;

/// Calibrated per-(workload, config) service costs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Workload name (suite name).
    pub workload: String,
    /// Cycles for a cold start: container bring-up + first invocation.
    pub cold_cycles: u64,
    /// Cycles for a steady warm invocation.
    pub warm_cycles: u64,
    /// Peak unreclaimable frames while the container actively serves a
    /// request (mapped data + tables; free pool staging excluded).
    pub active_frames: u64,
    /// Unreclaimable frames while the container idles warm and *parked*
    /// (pool reserve shed): page tables + whatever heap the allocator
    /// cannot give back. This is the keep-alive footprint a fleet pays
    /// per warm container.
    pub idle_frames: u64,
    /// Cycles for a REAP-style snapshot restore: a warm invocation plus
    /// the calibrated stable-working-set prefetch, clamped strictly
    /// between `warm_cycles` and `cold_cycles`.
    pub restore_cycles: u64,
    /// Frames a pressure squeeze cannot reclaim from this container while
    /// it idles warm (page tables + kernel metadata; never above
    /// `idle_frames`).
    pub squeeze_floor_frames: u64,
    /// Cycles the next warm start pays to re-fault the squeezed-out
    /// `idle_frames - squeeze_floor_frames` frames. Memento machines
    /// re-grant through the hardware pool; baselines demand-fault — the
    /// cost edge shows up here.
    pub squeeze_refault_cycles: u64,
    /// Cycles a park-to-PM restore costs on top of a warm invocation:
    /// PM recovery plus sealed-image replay (Memento) or whole-working-set
    /// demand refault (baselines persist an empty image). Clamped strictly
    /// between `warm_cycles` and `restore_cycles` — PM is byte-addressable,
    /// so replaying a compact image always undercuts a snapshot's bulk
    /// page-in, but a restored container is never as cheap as one that
    /// never left DRAM.
    pub pm_restore_cycles: u64,
    /// Background cycles one park-to-PM persist costs (checkpoint record
    /// flushes + working-set writeback). Off the latency path — the
    /// container is idle when it parks — but reported so operators can see
    /// the PM write traffic the policy generates.
    pub pm_persist_cycles: u64,
    /// DRAM frames a parked-to-PM container keeps resident. The image
    /// itself lives in PM, so this is 0: park-to-PM's entire point is
    /// that idle containers stop costing DRAM.
    pub pm_idle_frames: u64,
}

/// Calibrates a profile by running a real machine through the cluster's
/// warm lifecycle: one cold start, then `warm_samples` park → invoke
/// rounds (the last invocation is taken as steady state, so its cycles
/// include the post-park pool refill a scheduled warm start pays).
/// `warm_samples` is clamped to ≥ 1.
pub fn calibrate(cfg: &SystemConfig, spec: &WorkloadSpec, warm_samples: usize) -> ServiceProfile {
    let (mut container, cold) = WarmContainer::cold_start(cfg.clone(), spec);
    let mut warm = cold.clone();
    for _ in 0..warm_samples.max(1) {
        container.park();
        warm = container.invoke();
    }
    let active_frames = container.serving_peak_pages();
    container.park();
    let cold_cycles = cold.total_cycles().raw().max(1);
    let warm_cycles = warm.total_cycles().raw().max(1);
    let idle_frames = container.unreclaimable_pages();
    // Snapshot restore replays a warm invocation plus the stable-working-
    // set prefetch, clamped strictly inside the (warm, cold) interval —
    // the same formula `WarmContainer::restore_start` charges.
    let restore_cycles = (warm_cycles + container.snapshot_restore_cycles())
        .clamp(warm_cycles + 1, (cold_cycles - 1).max(warm_cycles + 1));
    let squeeze_floor_frames = container.squeeze_floor_pages().min(idle_frames);
    let squeeze_refault_cycles =
        (idle_frames - squeeze_floor_frames) * container.squeeze_refault_unit_cycles();
    // Park-to-PM round trip on the same machine: the persist is measured
    // directly; the restore premium rides on a warm invocation and is
    // clamped strictly inside (warm, snapshot-restore) — PM image replay
    // must undercut a snapshot's bulk page-in but never beat staying warm.
    let pm_persist_cycles = container.park_to_pm(0);
    let pm_extra = container.restore_from_pm();
    let pm_restore_cycles =
        (warm_cycles + pm_extra).clamp(warm_cycles + 1, (restore_cycles - 1).max(warm_cycles + 1));
    ServiceProfile {
        workload: spec.name.clone(),
        cold_cycles,
        warm_cycles,
        active_frames,
        idle_frames,
        restore_cycles,
        squeeze_floor_frames,
        squeeze_refault_cycles,
        pm_restore_cycles,
        pm_persist_cycles,
        pm_idle_frames: 0,
    }
}

/// A lookup table of profiles keyed by workload name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileTable {
    profiles: BTreeMap<String, ServiceProfile>,
}

impl ProfileTable {
    /// An empty table.
    pub fn new() -> Self {
        ProfileTable::default()
    }

    /// Builds a table from calibrated profiles (last one wins per name).
    pub fn from_profiles(profiles: Vec<ServiceProfile>) -> Self {
        let mut t = ProfileTable::new();
        for p in profiles {
            t.insert(p);
        }
        t
    }

    /// Adds or replaces a profile.
    pub fn insert(&mut self, profile: ServiceProfile) {
        self.profiles.insert(profile.workload.clone(), profile);
    }

    /// The profile for `workload`, if calibrated.
    pub fn get(&self, workload: &str) -> Option<&ServiceProfile> {
        self.profiles.get(workload)
    }

    /// Number of calibrated workloads.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when nothing has been calibrated.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_workloads::suite;

    fn small(name: &str) -> WorkloadSpec {
        let mut s = suite::by_name(name).expect("known workload");
        s.total_instructions = 300_000;
        s
    }

    #[test]
    fn calibration_captures_cold_warm_gap_and_footprints() {
        let spec = small("aes");
        let p = calibrate(&SystemConfig::memento(), &spec, 3);
        assert_eq!(p.workload, "aes");
        assert!(p.cold_cycles > p.warm_cycles, "cold start must cost more");
        assert!(
            p.active_frames >= p.idle_frames,
            "serving needs at least idle frames"
        );
        assert!(p.idle_frames > 0, "a warm container keeps frames resident");
        assert!(
            p.warm_cycles < p.restore_cycles && p.restore_cycles < p.cold_cycles,
            "snapshot restore must land strictly between warm ({}) and cold ({}): {}",
            p.warm_cycles,
            p.cold_cycles,
            p.restore_cycles
        );
        assert!(
            p.squeeze_floor_frames > 0 && p.squeeze_floor_frames <= p.idle_frames,
            "squeeze floor must be a nonzero fraction of the idle footprint"
        );
    }

    #[test]
    fn pm_restore_lands_between_warm_and_snapshot_restore() {
        for cfg in [SystemConfig::memento(), SystemConfig::baseline()] {
            let p = calibrate(&cfg, &small("aes"), 2);
            assert!(
                p.warm_cycles < p.pm_restore_cycles && p.pm_restore_cycles < p.restore_cycles,
                "pm restore must sit strictly inside (warm {}, snapshot {}): {}",
                p.warm_cycles,
                p.restore_cycles,
                p.pm_restore_cycles
            );
            assert!(p.pm_persist_cycles > 0, "persist work is accounted");
            assert_eq!(p.pm_idle_frames, 0, "parked images cost no DRAM");
        }
    }

    #[test]
    fn calibration_is_deterministic() {
        let spec = small("html");
        let a = calibrate(&SystemConfig::baseline(), &spec, 2);
        let b = calibrate(&SystemConfig::baseline(), &spec, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn table_lookup_by_name() {
        let spec = small("aes");
        let p = calibrate(&SystemConfig::memento(), &spec, 1);
        let t = ProfileTable::from_profiles(vec![p.clone()]);
        assert_eq!(t.get("aes"), Some(&p));
        assert!(t.get("html").is_none());
        assert_eq!(t.len(), 1);
    }
}
