//! Cluster-scale serverless traffic simulation over Memento machines.
//!
//! The per-machine simulator answers "how fast is one invocation"; this
//! crate answers the question a platform operator asks: **under real
//! traffic, what are the p99 latency and the fleet memory footprint** —
//! baseline vs. Memento? It adds the missing layer between the paper's
//! single-machine runs and its platform-scale motivation (§2: millions of
//! sub-second invocations re-paying mmap/fault/zeroing costs):
//!
//! ```text
//! arrival process → scheduler (placement) → bounded node queue
//!                 → container (cold | warm via keep-alive pool)
//!                 → memento_system::Machine
//! ```
//!
//! - [`arrival`] — open-loop Poisson arrivals with seeded workload-mix
//!   sampling; a pure function of the seed, shared across the fleets
//!   under comparison.
//! - [`trace`] — non-homogeneous arrival intensity shapes
//!   ([`trace::DiurnalTrace`] day curves, [`trace::FlashCrowd`] burst
//!   overlays) thinned onto the same seeded cursor, so shaped traffic
//!   stays a pure function of the seed too.
//! - [`policy`] — the scheduler policy surface: [`policy::Placement`]
//!   (round-robin / warm-affinity least-loaded), [`policy::KeepAlive`]
//!   (none / fixed / infinite / size-aware), [`policy::ColdStart`]
//!   (boot / snapshot-restore), [`policy::Reclamation`] (pressure-driven
//!   squeeze), [`policy::Autoscaler`] (target-utilization node scaling),
//!   and typed [`policy::RejectReason`]s.
//! - [`profile`] — per-(workload, config) service profiles calibrated
//!   from real [`memento_system::WarmContainer`] runs, letting the
//!   simulator scale to millions of invocations.
//! - [`event_heap`] — the flat `(time, seq)`-ordered binary heap the
//!   engine schedules on; seq stamping makes tie order a total order.
//! - [`sim`] — the deterministic event-driven simulator with incremental
//!   fleet-footprint accounting, per-node metrics, exact tail-latency
//!   quantiles, and drain-time conservation audits from
//!   `memento_sanitizer::fleet`. [`sim::simulate_jobs`] fans node
//!   execution across worker threads when the run decomposes per node,
//!   with byte-identical output to the serial reference.
//! - [`error`] — typed construction/validation errors.
//!
//! # Examples
//!
//! ```
//! use memento_cluster::{
//!     generate_arrivals, simulate, ArrivalConfig, ClusterConfig, Engine, WorkloadMix,
//! };
//! use memento_system::SystemConfig;
//! use memento_workloads::suite;
//!
//! let mut spec = suite::by_name("aes").expect("known workload");
//! spec.total_instructions = 200_000; // keep the doctest quick
//! let mix = WorkloadMix::uniform(vec![spec]).expect("non-empty mix");
//! let arrivals = generate_arrivals(
//!     &ArrivalConfig { seed: 1, count: 6, mean_interarrival_cycles: 300_000.0 },
//!     &mix,
//! )
//! .expect("valid arrival config");
//! let result = simulate(
//!     Engine::Measured(Box::new(SystemConfig::memento())),
//!     &ClusterConfig::default(),
//!     &mix,
//!     &arrivals,
//! )
//! .expect("valid cluster run");
//! assert_eq!(result.completed, 6);
//! assert!(result.is_clean(), "conservation audits hold");
//! let (p50, p95, p99) = result.latency_percentiles();
//! assert!(p50 <= p95 && p95 <= p99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod error;
pub mod event_heap;
pub mod policy;
pub mod profile;
mod shard;
pub mod sim;
pub mod trace;

pub use arrival::{generate_arrivals, Arrival, ArrivalConfig, WorkloadMix};
pub use error::ClusterError;
pub use event_heap::EventHeap;
pub use policy::{
    Autoscaler, AutoscalerConfig, ColdStart, KeepAlive, Placement, Reclamation, RejectReason,
};
pub use profile::{calibrate, ProfileTable, ServiceProfile};
pub use sim::{simulate, simulate_jobs, ClusterConfig, ClusterResult, Engine};
pub use trace::{
    generate_trace, ArrivalTrace, DiurnalTrace, EmpiricalTrace, FlashCrowd, UniformTrace,
};
