//! The event-driven fleet simulator: arrivals → scheduler → bounded node
//! queues → containers → completions, on one simulated clock.
//!
//! # Determinism
//!
//! The simulation is byte-deterministic by construction:
//!
//! - The clock is simulated cycles; nothing reads wall time.
//! - The event heap is keyed `(time, seq)` with a monotonically increasing
//!   sequence number, so ties have one total order.
//! - All keyed state lives in `BTreeMap`s; iteration order is defined.
//! - The arrival sequence is a pure function of its seed and is shared by
//!   every fleet configuration under comparison.
//!
//! # Accounting
//!
//! The scheduler tracks the fleet memory footprint *incrementally*: each
//! container carries a `contrib` (frames currently charged to the fleet),
//! bumped to its serving-window peak while active, dropped to its parked
//! idle level when warm, and zeroed at retirement. Footprint means
//! *unreclaimable* frames — mapped data plus page tables; the hardware
//! pool's free reserve is shed back to the OS when a container parks
//! ([`WarmContainer::park`]) and excluded while serving, because free
//! staging is reclaimable at any instant exactly like the OS free list.
//! The running total drives the footprint timeline and peak. At drain, a
//! [`FleetAuditor`] recounts frames node by node from the engine's ground
//! truth and re-checks invocation conservation — any drift surfaces as a
//! sanitizer violation in [`ClusterResult::audit`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use memento_obs::metrics::{Log2Hist, MetricsRegistry};
use memento_sanitizer::fleet::{FleetAuditor, InvocationCounts};
use memento_sanitizer::SanitizerReport;
use memento_system::{SystemConfig, WarmContainer};

use crate::arrival::{Arrival, WorkloadMix};
use crate::error::ClusterError;
use crate::policy::{KeepAlive, Placement, RejectReason};
use crate::profile::ProfileTable;

/// How the simulator obtains service times and frame footprints.
pub enum Engine {
    /// Every container wraps a live [`WarmContainer`] machine: exact
    /// per-invocation simulation of the full memory hierarchy. Use for
    /// tests and small fleets (boxed: a `SystemConfig` is much larger
    /// than a profile-table handle).
    Measured(Box<SystemConfig>),
    /// Containers replay calibrated [`crate::profile::ServiceProfile`]
    /// costs. Use to scale the same scheduler/keep-alive dynamics to
    /// millions of invocations.
    Profiled(ProfileTable),
}

/// Fleet shape and policy knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of single-container-at-a-time nodes.
    pub nodes: usize,
    /// Bounded per-node queue depth (0 = no queueing: a busy node
    /// rejects).
    pub queue_capacity: usize,
    /// Placement policy.
    pub placement: Placement,
    /// Keep-alive policy.
    pub keep_alive: KeepAlive,
    /// Record the full footprint timeline (disable for very large runs;
    /// peak tracking is unaffected).
    pub record_timeline: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            queue_capacity: 16,
            placement: Placement::LeastLoaded,
            keep_alive: KeepAlive::Fixed(100_000_000),
            record_timeline: true,
        }
    }
}

/// Everything a cluster run produced.
pub struct ClusterResult {
    /// Arrivals offered to the scheduler.
    pub submitted: u64,
    /// Invocations served to completion.
    pub completed: u64,
    /// Arrivals turned away at admission.
    pub rejected: u64,
    /// Rejections broken down by typed reason.
    pub rejected_by: BTreeMap<RejectReason, u64>,
    /// Invocations that paid a container cold start.
    pub cold_starts: u64,
    /// Invocations served by an idle-warm container.
    pub warm_starts: u64,
    /// Containers torn down by keep-alive expiry.
    pub expired: u64,
    /// Containers torn down for any reason (expiry included).
    pub retired: u64,
    /// Containers still idle-warm at drain.
    pub live_containers: u64,
    /// Simulated cycle of the last processed event.
    pub makespan_cycles: u64,
    /// Highest concurrent fleet footprint, in frames.
    pub peak_fleet_frames: u64,
    /// Fleet footprint at drain (idle-warm containers), in frames.
    pub final_fleet_frames: u64,
    /// Footprint timeline as (cycle, frames) change points (empty when
    /// `record_timeline` is off).
    pub timeline: Vec<(u64, u64)>,
    /// End-to-end latencies (queue wait + service) of completed
    /// invocations, in cycles, sorted ascending.
    pub latencies: Vec<u64>,
    /// Per-node counters plus latency/queue-wait histograms.
    pub metrics: MetricsRegistry,
    /// Fleet conservation audits (invocations and frames) run at drain.
    pub audit: SanitizerReport,
}

impl ClusterResult {
    /// Exact latency quantile (nearest-rank over the full sorted latency
    /// vector; 0 when nothing completed).
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let n = self.latencies.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        self.latencies[rank - 1]
    }

    /// (p50, p95, p99) end-to-end latency in cycles.
    pub fn latency_percentiles(&self) -> (u64, u64, u64) {
        (
            self.latency_quantile(0.50),
            self.latency_quantile(0.95),
            self.latency_quantile(0.99),
        )
    }

    /// Mean end-to-end latency in cycles (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// True when the drain-time conservation audits found no violation.
    pub fn is_clean(&self) -> bool {
        self.audit.is_clean()
    }
}

/// Runs the fleet simulation over a pre-drawn arrival sequence and drains
/// it to quiescence. The arrival slice must be time-sorted (as
/// [`crate::arrival::generate_arrivals`] produces).
pub fn simulate(
    engine: Engine,
    cfg: &ClusterConfig,
    mix: &WorkloadMix,
    arrivals: &[Arrival],
) -> Result<ClusterResult, ClusterError> {
    if cfg.nodes == 0 {
        return Err(ClusterError::NoNodes);
    }
    if mix.is_empty() {
        return Err(ClusterError::EmptyMix);
    }
    if let Engine::Profiled(table) = &engine {
        for spec in mix.specs() {
            if table.get(&spec.name).is_none() {
                return Err(ClusterError::MissingProfile(spec.name.clone()));
            }
        }
    }
    let mut sim = Sim::new(engine, cfg, mix);
    sim.run(arrivals);
    Ok(sim.finish())
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrival { index: usize },
    Completion { node: usize, cid: u64 },
    Expiry { cid: u64, token: u64 },
}

#[derive(Clone, Copy, Debug)]
struct Queued {
    time: u64,
    workload: usize,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    arrive_time: u64,
    cid: u64,
    workload: usize,
}

struct Node {
    queue: VecDeque<Queued>,
    serving: Option<InFlight>,
    /// Idle-warm containers by mix index (at most one per workload).
    warm: BTreeMap<usize, u64>,
}

struct Container {
    workload: usize,
    node: usize,
    /// Bumped on every warm reuse; invalidates scheduled expiries.
    token: u64,
    /// Frames currently charged to the fleet footprint.
    contrib: u64,
    /// The live machine (Measured engine only).
    measured: Option<WarmContainer>,
}

struct Sim<'a> {
    engine: Engine,
    cfg: &'a ClusterConfig,
    mix: &'a WorkloadMix,
    heap: BinaryHeap<Reverse<(u64, u64, Event)>>,
    seq: u64,
    now: u64,
    nodes: Vec<Node>,
    node_invocations: Vec<u64>,
    containers: BTreeMap<u64, Container>,
    next_cid: u64,
    rr: usize,
    submitted: u64,
    completed: u64,
    rejected: u64,
    rejected_by: BTreeMap<RejectReason, u64>,
    in_flight: u64,
    cold_starts: u64,
    warm_starts: u64,
    expired: u64,
    retired: u64,
    fleet_now: u64,
    fleet_peak: u64,
    timeline: Vec<(u64, u64)>,
    latencies: Vec<u64>,
    latency_hist: Log2Hist,
    queue_wait_hist: Log2Hist,
}

impl<'a> Sim<'a> {
    fn new(engine: Engine, cfg: &'a ClusterConfig, mix: &'a WorkloadMix) -> Self {
        let nodes = (0..cfg.nodes)
            .map(|_| Node {
                queue: VecDeque::new(),
                serving: None,
                warm: BTreeMap::new(),
            })
            .collect();
        Sim {
            engine,
            cfg,
            mix,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            nodes,
            node_invocations: vec![0; cfg.nodes],
            containers: BTreeMap::new(),
            next_cid: 0,
            rr: 0,
            submitted: 0,
            completed: 0,
            rejected: 0,
            rejected_by: BTreeMap::new(),
            in_flight: 0,
            cold_starts: 0,
            warm_starts: 0,
            expired: 0,
            retired: 0,
            fleet_now: 0,
            fleet_peak: 0,
            timeline: Vec::new(),
            latencies: Vec::new(),
            latency_hist: Log2Hist::new(),
            queue_wait_hist: Log2Hist::new(),
        }
    }

    fn push(&mut self, time: u64, ev: Event) {
        self.heap.push(Reverse((time, self.seq, ev)));
        self.seq += 1;
    }

    fn run(&mut self, arrivals: &[Arrival]) {
        if let Some(first) = arrivals.first() {
            self.push(first.time, Event::Arrival { index: 0 });
        }
        while let Some(Reverse((time, _seq, ev))) = self.heap.pop() {
            debug_assert!(time >= self.now, "simulated time must not run backwards");
            self.now = time;
            match ev {
                Event::Arrival { index } => {
                    if index + 1 < arrivals.len() {
                        self.push(
                            arrivals[index + 1].time,
                            Event::Arrival { index: index + 1 },
                        );
                    }
                    self.on_arrival(&arrivals[index]);
                }
                Event::Completion { node, cid } => self.on_completion(node, cid),
                Event::Expiry { cid, token } => self.on_expiry(cid, token),
            }
        }
    }

    fn on_arrival(&mut self, a: &Arrival) {
        self.submitted += 1;
        match self.place(a.workload) {
            Ok(node) => {
                self.in_flight += 1;
                if self.nodes[node].serving.is_none() {
                    self.start_service(node, a.time, a.workload);
                } else {
                    self.nodes[node].queue.push_back(Queued {
                        time: a.time,
                        workload: a.workload,
                    });
                }
            }
            Err(reason) => {
                self.rejected += 1;
                *self.rejected_by.entry(reason).or_insert(0) += 1;
            }
        }
    }

    fn has_space(&self, node: usize) -> bool {
        let n = &self.nodes[node];
        n.serving.is_none() || n.queue.len() < self.cfg.queue_capacity
    }

    fn place(&mut self, workload: usize) -> Result<usize, RejectReason> {
        match self.cfg.placement {
            Placement::RoundRobin => {
                let node = self.rr % self.nodes.len();
                self.rr += 1;
                if self.has_space(node) {
                    Ok(node)
                } else {
                    Err(RejectReason::QueueFull)
                }
            }
            Placement::LeastLoaded => {
                let mut best: Option<(usize, usize, usize)> = None;
                for i in 0..self.nodes.len() {
                    if !self.has_space(i) {
                        continue;
                    }
                    let n = &self.nodes[i];
                    let cold = usize::from(!n.warm.contains_key(&workload));
                    let load = n.queue.len() + usize::from(n.serving.is_some());
                    let key = (cold, load, i);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.map(|(_, _, i)| i)
                    .ok_or(RejectReason::ClusterSaturated)
            }
        }
    }

    fn start_service(&mut self, node: usize, arrive_time: u64, workload: usize) {
        let (cid, service) = match self.nodes[node].warm.remove(&workload) {
            Some(cid) => {
                self.warm_starts += 1;
                let (cycles, active) = self.invoke_warm(cid);
                self.set_contrib(cid, active);
                (cid, cycles)
            }
            None => {
                self.cold_starts += 1;
                let (cid, cycles, active) = self.cold_start(node, workload);
                self.set_contrib(cid, active);
                (cid, cycles)
            }
        };
        self.nodes[node].serving = Some(InFlight {
            arrive_time,
            cid,
            workload,
        });
        self.node_invocations[node] += 1;
        let done = self.now + service.max(1);
        self.push(done, Event::Completion { node, cid });
    }

    fn cold_start(&mut self, node: usize, workload: usize) -> (u64, u64, u64) {
        let cid = self.next_cid;
        self.next_cid += 1;
        let spec = self.mix.spec(workload);
        let (measured, cycles, active) = match &self.engine {
            Engine::Measured(cfg) => {
                let (c, stats) = WarmContainer::cold_start(cfg.as_ref().clone(), spec);
                let active = c.serving_peak_pages();
                (Some(c), stats.total_cycles().raw(), active)
            }
            Engine::Profiled(table) => {
                let p = table
                    .get(&spec.name)
                    .expect("profiles validated before simulate");
                (None, p.cold_cycles, p.active_frames)
            }
        };
        self.containers.insert(
            cid,
            Container {
                workload,
                node,
                token: 0,
                contrib: 0,
                measured,
            },
        );
        (cid, cycles, active)
    }

    fn invoke_warm(&mut self, cid: u64) -> (u64, u64) {
        let workload = {
            let c = self.containers.get_mut(&cid).expect("warm cid is live");
            c.token += 1; // cancels any scheduled keep-alive expiry
            c.workload
        };
        match &self.engine {
            Engine::Measured(_) => {
                let c = self.containers.get_mut(&cid).expect("warm cid is live");
                let m = c
                    .measured
                    .as_mut()
                    .expect("measured containers carry machines");
                let stats = m.invoke();
                (stats.total_cycles().raw(), m.serving_peak_pages())
            }
            Engine::Profiled(table) => {
                let name = &self.mix.spec(workload).name;
                let p = table.get(name).expect("profiles validated before simulate");
                (p.warm_cycles, p.active_frames)
            }
        }
    }

    /// Parks the container (sheds the pool's free reserve on Measured
    /// machines) and returns its idle-warm unreclaimable footprint.
    fn park_idle(&mut self, cid: u64) -> u64 {
        let c = self.containers.get_mut(&cid).expect("live container");
        match &self.engine {
            Engine::Measured(_) => {
                let m = c
                    .measured
                    .as_mut()
                    .expect("measured containers carry machines");
                m.park();
                m.unreclaimable_pages()
            }
            Engine::Profiled(table) => {
                let name = &self.mix.spec(c.workload).name;
                table
                    .get(name)
                    .expect("profiles validated before simulate")
                    .idle_frames
            }
        }
    }

    /// Non-mutating ground-truth recount for the drain audit. Idle
    /// containers were parked when they went warm, so on Measured machines
    /// this reads the same unreclaimable count `park_idle` charged.
    fn idle_frames(&self, cid: u64) -> u64 {
        let c = self.containers.get(&cid).expect("live container");
        match &self.engine {
            Engine::Measured(_) => c
                .measured
                .as_ref()
                .expect("measured containers carry machines")
                .unreclaimable_pages(),
            Engine::Profiled(table) => {
                let name = &self.mix.spec(c.workload).name;
                table
                    .get(name)
                    .expect("profiles validated before simulate")
                    .idle_frames
            }
        }
    }

    fn set_contrib(&mut self, cid: u64, new: u64) {
        let c = self.containers.get_mut(&cid).expect("live container");
        if new == c.contrib {
            return;
        }
        self.fleet_now = self.fleet_now - c.contrib + new;
        c.contrib = new;
        if self.fleet_now > self.fleet_peak {
            self.fleet_peak = self.fleet_now;
        }
        if self.cfg.record_timeline {
            match self.timeline.last_mut() {
                Some((t, v)) if *t == self.now => *v = self.fleet_now,
                _ => self.timeline.push((self.now, self.fleet_now)),
            }
        }
    }

    fn on_completion(&mut self, node: usize, cid: u64) {
        let inflight = self.nodes[node]
            .serving
            .take()
            .expect("completion fired on an idle node");
        debug_assert_eq!(inflight.cid, cid, "completion for a different container");
        self.completed += 1;
        self.in_flight -= 1;
        let latency = self.now - inflight.arrive_time;
        self.latencies.push(latency);
        self.latency_hist.record(latency);

        // The container goes idle-warm: park it (shed the pool's free
        // reserve back to the OS) and charge only what stays
        // unreclaimable, then let the keep-alive policy decide its fate.
        let idle = self.park_idle(cid);
        self.set_contrib(cid, idle);
        match self.cfg.keep_alive {
            KeepAlive::None => self.retire(cid),
            KeepAlive::Fixed(d) => {
                let token = self.containers.get(&cid).expect("live container").token;
                if let Some(old) = self.nodes[node].warm.insert(inflight.workload, cid) {
                    self.retire(old);
                }
                self.push(self.now + d, Event::Expiry { cid, token });
            }
            KeepAlive::Infinite => {
                if let Some(old) = self.nodes[node].warm.insert(inflight.workload, cid) {
                    self.retire(old);
                }
            }
        }

        // Pull the next queued request, warm-starting on the container we
        // just parked if the workload matches.
        if let Some(q) = self.nodes[node].queue.pop_front() {
            self.queue_wait_hist.record(self.now - q.time);
            self.start_service(node, q.time, q.workload);
        }
    }

    fn on_expiry(&mut self, cid: u64, token: u64) {
        let Some(c) = self.containers.get(&cid) else {
            return; // already retired
        };
        if c.token != token {
            return; // reused since this expiry was scheduled
        }
        let node = c.node;
        let workload = c.workload;
        debug_assert_eq!(
            self.nodes[node].warm.get(&workload),
            Some(&cid),
            "token-valid expiry must find the container idle-warm"
        );
        self.nodes[node].warm.remove(&workload);
        self.expired += 1;
        self.retire(cid);
    }

    fn retire(&mut self, cid: u64) {
        self.set_contrib(cid, 0);
        let c = self.containers.remove(&cid).expect("live container");
        if let Some(m) = c.measured {
            let _ = m.finish();
        }
        self.retired += 1;
    }

    fn finish(mut self) -> ClusterResult {
        debug_assert!(
            self.nodes
                .iter()
                .all(|n| n.serving.is_none() && n.queue.is_empty()),
            "drained fleet must be quiescent"
        );
        let mut auditor = FleetAuditor::new();
        auditor.audit_invocations(
            self.seq,
            InvocationCounts {
                submitted: self.submitted,
                completed: self.completed,
                rejected: self.rejected,
                in_flight: self.in_flight,
            },
            true,
        );
        // Recount from the engine's ground truth, not from `contrib` —
        // this is what catches incremental-accounting drift.
        let cids: Vec<u64> = self.containers.keys().copied().collect();
        let per_node: Vec<(usize, u64)> = cids
            .into_iter()
            .map(|cid| {
                let node = self.containers.get(&cid).expect("live container").node;
                (node, self.idle_frames(cid))
            })
            .collect();
        auditor.audit_fleet_frames(self.seq, self.fleet_now, per_node);

        let mut metrics = MetricsRegistry::new();
        metrics.add("cluster.submitted", self.submitted);
        metrics.add("cluster.completed", self.completed);
        metrics.add("cluster.rejected", self.rejected);
        metrics.add("cluster.cold_starts", self.cold_starts);
        metrics.add("cluster.warm_starts", self.warm_starts);
        metrics.add("cluster.expired", self.expired);
        metrics.set("cluster.peak_fleet_frames", self.fleet_peak);
        metrics.set("cluster.final_fleet_frames", self.fleet_now);
        metrics.set("cluster.makespan_cycles", self.now);
        for (i, count) in self.node_invocations.iter().enumerate() {
            metrics.set(&format!("cluster.node{i:03}.invocations"), *count);
        }
        metrics.set_hist("cluster.latency_cycles", self.latency_hist.clone());
        metrics.set_hist("cluster.queue_wait_cycles", self.queue_wait_hist.clone());

        self.latencies.sort_unstable();
        ClusterResult {
            submitted: self.submitted,
            completed: self.completed,
            rejected: self.rejected,
            rejected_by: self.rejected_by,
            cold_starts: self.cold_starts,
            warm_starts: self.warm_starts,
            expired: self.expired,
            retired: self.retired,
            live_containers: self.containers.len() as u64,
            makespan_cycles: self.now,
            peak_fleet_frames: self.fleet_peak,
            final_fleet_frames: self.fleet_now,
            timeline: self.timeline,
            latencies: self.latencies,
            metrics,
            audit: auditor.into_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{generate_arrivals, ArrivalConfig};
    use crate::profile::ServiceProfile;
    use memento_workloads::suite;

    fn small_spec(name: &str) -> memento_workloads::spec::WorkloadSpec {
        let mut s = suite::by_name(name).expect("known workload");
        s.total_instructions = 200_000;
        s
    }

    fn synthetic_table(mix: &WorkloadMix) -> ProfileTable {
        // Hand-built profiles keep unit tests fast and make the expected
        // dynamics easy to reason about.
        let mut t = ProfileTable::new();
        for (i, spec) in mix.specs().iter().enumerate() {
            t.insert(ServiceProfile {
                workload: spec.name.clone(),
                cold_cycles: 100_000 + 10_000 * i as u64,
                warm_cycles: 10_000 + 1_000 * i as u64,
                active_frames: 200 + 10 * i as u64,
                idle_frames: 40 + 2 * i as u64,
            });
        }
        t
    }

    fn two_mix() -> WorkloadMix {
        WorkloadMix::uniform(vec![small_spec("aes"), small_spec("html")]).expect("non-empty")
    }

    fn run_profiled(
        cfg: &ClusterConfig,
        arrival: &ArrivalConfig,
        mix: &WorkloadMix,
    ) -> ClusterResult {
        let arrivals = generate_arrivals(arrival, mix).expect("valid arrivals");
        simulate(Engine::Profiled(synthetic_table(mix)), cfg, mix, &arrivals)
            .expect("valid cluster run")
    }

    #[test]
    fn drains_conserves_and_audits_clean() {
        let mix = two_mix();
        let cfg = ClusterConfig {
            nodes: 4,
            queue_capacity: 8,
            ..ClusterConfig::default()
        };
        let arrival = ArrivalConfig {
            seed: 11,
            count: 2_000,
            mean_interarrival_cycles: 4_000.0,
        };
        let r = run_profiled(&cfg, &arrival, &mix);
        assert_eq!(r.submitted, 2_000);
        assert_eq!(r.submitted, r.completed + r.rejected);
        assert!(r.is_clean(), "fleet audits must pass: {}", r.audit);
        assert_eq!(r.latencies.len() as u64, r.completed);
        assert_eq!(r.cold_starts + r.warm_starts, r.completed);
        assert!(r.peak_fleet_frames >= r.final_fleet_frames);
        assert!(r.metrics.counter("cluster.completed") == r.completed);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let mix = two_mix();
        let cfg = ClusterConfig::default();
        let arrival = ArrivalConfig {
            seed: 5,
            count: 1_500,
            mean_interarrival_cycles: 3_000.0,
        };
        let a = run_profiled(&cfg, &arrival, &mix);
        let b = run_profiled(&cfg, &arrival, &mix);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.peak_fleet_frames, b.peak_fleet_frames);
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.metrics.render(), b.metrics.render());
    }

    #[test]
    fn keep_alive_none_always_cold_starts() {
        let mix = two_mix();
        let cfg = ClusterConfig {
            keep_alive: KeepAlive::None,
            ..ClusterConfig::default()
        };
        let arrival = ArrivalConfig {
            seed: 9,
            count: 400,
            mean_interarrival_cycles: 50_000.0,
        };
        let r = run_profiled(&cfg, &arrival, &mix);
        assert_eq!(r.warm_starts, 0, "no warm pool, no warm starts");
        assert_eq!(r.cold_starts, r.completed);
        assert_eq!(r.final_fleet_frames, 0, "every container torn down");
        assert_eq!(r.live_containers, 0);
        assert!(r.is_clean());
    }

    #[test]
    fn infinite_keep_alive_maximises_warm_starts_and_footprint() {
        let mix = two_mix();
        let sparse = ArrivalConfig {
            seed: 9,
            count: 400,
            mean_interarrival_cycles: 50_000.0,
        };
        let infinite = run_profiled(
            &ClusterConfig {
                keep_alive: KeepAlive::Infinite,
                ..ClusterConfig::default()
            },
            &sparse,
            &mix,
        );
        let short = run_profiled(
            &ClusterConfig {
                keep_alive: KeepAlive::Fixed(10_000),
                ..ClusterConfig::default()
            },
            &sparse,
            &mix,
        );
        assert!(
            infinite.warm_starts > short.warm_starts,
            "infinite keep-alive must reuse more: {} vs {}",
            infinite.warm_starts,
            short.warm_starts
        );
        assert!(infinite.final_fleet_frames >= short.final_fleet_frames);
        assert_eq!(
            short.expired, short.retired,
            "short keep-alive retires only via expiry"
        );
        assert!(infinite.is_clean() && short.is_clean());
    }

    #[test]
    fn bounded_queues_reject_under_overload() {
        let mix = two_mix();
        let cfg = ClusterConfig {
            nodes: 2,
            queue_capacity: 2,
            ..ClusterConfig::default()
        };
        // Offered load far beyond 2 nodes' service capacity.
        let arrival = ArrivalConfig {
            seed: 3,
            count: 3_000,
            mean_interarrival_cycles: 100.0,
        };
        let r = run_profiled(&cfg, &arrival, &mix);
        assert!(r.rejected > 0, "overload must produce rejections");
        assert_eq!(
            r.rejected,
            r.rejected_by.values().sum::<u64>(),
            "every rejection carries a typed reason"
        );
        assert!(r.rejected_by.contains_key(&RejectReason::ClusterSaturated));
        assert!(r.is_clean());
    }

    #[test]
    fn round_robin_rejects_locally_and_spreads_load() {
        let mix = two_mix();
        let cfg = ClusterConfig {
            nodes: 3,
            queue_capacity: 1,
            placement: Placement::RoundRobin,
            ..ClusterConfig::default()
        };
        let arrival = ArrivalConfig {
            seed: 21,
            count: 2_000,
            mean_interarrival_cycles: 200.0,
        };
        let r = run_profiled(&cfg, &arrival, &mix);
        if r.rejected > 0 {
            assert!(r.rejected_by.contains_key(&RejectReason::QueueFull));
        }
        let counts: Vec<u64> = (0..3)
            .map(|i| {
                r.metrics
                    .counter(&format!("cluster.node{i:03}.invocations"))
            })
            .collect();
        assert!(counts.iter().all(|c| *c > 0), "round robin uses every node");
        assert!(r.is_clean());
    }

    #[test]
    fn measured_engine_small_fleet_is_exact_and_clean() {
        let mix = WorkloadMix::uniform(vec![small_spec("aes")]).expect("non-empty");
        let cfg = ClusterConfig {
            nodes: 2,
            queue_capacity: 4,
            keep_alive: KeepAlive::Infinite,
            ..ClusterConfig::default()
        };
        let arrival = ArrivalConfig {
            seed: 17,
            count: 12,
            mean_interarrival_cycles: 200_000.0,
        };
        let arrivals = generate_arrivals(&arrival, &mix).expect("valid arrivals");
        let r = simulate(
            Engine::Measured(Box::new(SystemConfig::memento())),
            &cfg,
            &mix,
            &arrivals,
        )
        .expect("valid cluster run");
        assert_eq!(r.completed, 12);
        assert!(
            r.warm_starts > 0,
            "infinite keep-alive on a tiny fleet must reuse"
        );
        assert!(
            r.final_fleet_frames > 0,
            "warm containers keep frames resident"
        );
        assert!(
            r.is_clean(),
            "measured-engine audits must pass: {}",
            r.audit
        );
    }

    #[test]
    fn missing_profile_is_a_typed_error() {
        let mix = two_mix();
        let arrivals = generate_arrivals(
            &ArrivalConfig {
                seed: 1,
                count: 10,
                mean_interarrival_cycles: 1_000.0,
            },
            &mix,
        )
        .expect("valid arrivals");
        let err = simulate(
            Engine::Profiled(ProfileTable::new()),
            &ClusterConfig::default(),
            &mix,
            &arrivals,
        )
        .err()
        .expect("must fail");
        assert!(matches!(err, ClusterError::MissingProfile(_)));
        let err = simulate(
            Engine::Profiled(ProfileTable::new()),
            &ClusterConfig {
                nodes: 0,
                ..ClusterConfig::default()
            },
            &mix,
            &arrivals,
        )
        .err()
        .expect("must fail");
        assert_eq!(err, ClusterError::NoNodes);
    }
}
